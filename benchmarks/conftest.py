"""Shared fixtures for the benchmark suite.

Every benchmark module regenerates one table or figure of the paper (see
DESIGN.md's per-experiment index).  They all aggregate the same underlying
measurement sweep, which is produced once per session here.

Scale is controlled by ``REPRO_BENCH_SCALE``:

* ``quick`` (default) — all ten datasets, ~20k-row test tables; the whole
  suite runs in a few minutes and reproduces the paper's *shapes*,
* ``default`` — the library's default experiment scale (~40k rows),
* ``paper``  — >1M-row tables and full training sizes, as in the paper.

Parallelism is controlled by ``REPRO_JOBS`` (e.g. ``REPRO_JOBS=4`` or
``REPRO_JOBS=auto``): the sweep's independent (dataset, model-family)
tasks run across that many worker processes and merge deterministically.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.config import (
    DEFAULT_CONFIG,
    PAPER_SCALE,
    ExperimentConfig,
    default_jobs,
)
from repro.experiments.harness import run_all

QUICK_CONFIG = ExperimentConfig(
    rows_target=20_000,
    train_cap=8_000,
    nb_bins=8,
    cluster_bins=8,
    max_nodes=300,
)

_SCALES = {
    "quick": QUICK_CONFIG,
    "default": DEFAULT_CONFIG,
    "paper": PAPER_SCALE,
}


def bench_config() -> ExperimentConfig:
    scale = os.environ.get("REPRO_BENCH_SCALE", "quick")
    try:
        return _SCALES[scale]
    except KeyError:
        raise RuntimeError(
            f"REPRO_BENCH_SCALE must be one of {sorted(_SCALES)}, "
            f"got {scale!r}"
        ) from None


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    return bench_config()


@pytest.fixture(scope="session")
def jobs() -> int:
    """Sweep worker count (``REPRO_JOBS``, default 1 = serial)."""
    return default_jobs()


@pytest.fixture(scope="session")
def sweep(config, jobs):
    """The full measurement sweep (one run per session, then cached)."""
    return run_all(config, jobs=jobs)
