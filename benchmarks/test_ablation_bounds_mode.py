"""A4 — ablation: pairwise-difference bounds versus the paper's bounds.

The pairwise bounds generalize Lemma 3.2's two-class exactness to every
opponent pair (see DESIGN.md).  At an equal node budget on multi-class
datasets they must never be looser than the paper's separate
minProb/maxProb bounds — per-region they are provably at least as tight —
and in practice they are what makes rare-class envelopes usable.
"""

from repro.experiments.ablation import bounds_mode_comparison
from repro.workload.report import format_table


def test_a4_pairwise_bounds_tighter(config, benchmark):
    rows = benchmark.pedantic(
        bounds_mode_comparison,
        kwargs=dict(datasets=("shuttle", "anneal_u"), config=config),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_table(
            ["Data set", "Bounds", "Mean env sel", "Mean orig sel", "s"],
            [
                (
                    r.dataset,
                    r.mode,
                    f"{r.mean_envelope_selectivity:.4f}",
                    f"{r.mean_original_selectivity:.4f}",
                    f"{r.derive_seconds:.2f}",
                )
                for r in rows
            ],
        )
    )
    by_dataset: dict[str, dict[str, object]] = {}
    for row in rows:
        by_dataset.setdefault(row.dataset, {})[row.mode] = row
    for dataset, modes in by_dataset.items():
        assert (
            modes["pairwise"].mean_envelope_selectivity
            <= modes["separate"].mean_envelope_selectivity + 0.05
        ), dataset
    # And on at least one dataset the gain is substantial.
    gains = [
        modes["separate"].mean_envelope_selectivity
        - modes["pairwise"].mean_envelope_selectivity
        for modes in by_dataset.values()
    ]
    assert max(gains) > 0.05
