"""A3 — baseline: naive enumerate-and-cover versus Algorithm 1.

Paper Section 3.2.2: "it is impractically slow to enumerate all
``prod n_d`` member combinations.  A medium sized data set in our
experiments took more than 24 hours for just enumerating the
combinations."  The ablation grows the attribute space and compares the
two algorithms; past the enumeration guard the baseline is refused
outright while the top-down algorithm keeps answering in milliseconds —
the ">24 hours" cliff in miniature.
"""

from repro.experiments.ablation import enumeration_comparison
from repro.workload.report import format_table


def test_a3_enumeration_cliff(benchmark):
    rows = benchmark.pedantic(
        enumeration_comparison,
        kwargs=dict(
            dims_range=(3, 4, 5, 7),
            members_per_dim=8,
            enumeration_cell_limit=40_000,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_table(
            ["Dims", "Cells", "Enumerate s", "Top-down s", "Coverage gap"],
            [
                (
                    r.n_dims,
                    r.cells,
                    "refused" if r.enumeration_seconds is None
                    else f"{r.enumeration_seconds:.3f}",
                    f"{r.top_down_seconds:.3f}",
                    "-" if r.selectivity_gap is None
                    else f"{r.selectivity_gap:.4f}",
                )
                for r in rows
            ],
        )
    )
    small = [r for r in rows if r.enumeration_seconds is not None]
    large = [r for r in rows if r.enumeration_seconds is None]
    assert small, "no space was small enough to enumerate"
    assert large, "no space exceeded the enumeration guard"
    # Where both run, the top-down result is sound (non-negative coverage
    # gap versus the exact enumeration).
    for row in small:
        assert row.selectivity_gap is not None
        assert row.selectivity_gap >= -1e-9
    # The top-down algorithm keeps working where enumeration is refused.
    for row in large:
        assert row.top_down_seconds < 30.0
