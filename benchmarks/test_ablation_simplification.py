"""A5 — ablation: envelope coarsening and weak-constraint pruning.

Both transformations implement the paper's Section 4.2 complexity
thresholds soundly — by loosening the envelope instead of dropping it.
The sweep measures the trade: predicate size must drop sharply while the
envelope's data selectivity dilutes only moderately.
"""

from repro.experiments.ablation import simplification_comparison
from repro.workload.report import format_table


def test_a5_simplification_trade(config, benchmark):
    rows = benchmark.pedantic(
        simplification_comparison,
        kwargs=dict(dataset_name="shuttle", config=config),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_table(
            ["Variant", "Mean env sel", "Mean atoms", "Mean disjuncts"],
            [
                (
                    r.variant,
                    f"{r.mean_envelope_selectivity:.4f}",
                    f"{r.mean_atoms:.0f}",
                    f"{r.mean_disjuncts:.0f}",
                )
                for r in rows
            ],
        )
    )
    by_variant = {r.variant: r for r in rows}
    raw = by_variant["raw"]
    simplified = by_variant["coarsened+pruned"]
    # Soundness direction: simplification can only widen the envelope.
    assert (
        simplified.mean_envelope_selectivity
        >= raw.mean_envelope_selectivity - 1e-9
    )
    # The point of the exercise: a large reduction in predicate size...
    assert simplified.mean_atoms < 0.7 * max(raw.mean_atoms, 1.0)
    # ...for a bounded loss of selectivity.
    assert (
        simplified.mean_envelope_selectivity
        <= raw.mean_envelope_selectivity + 0.3
    )
