"""A1 — ablation: the node-budget threshold of Algorithm 1.

The paper's Threshold input trades derivation time for envelope tightness
(Section 3.2.2; Section 4.2 discusses the disjunct-complexity side).  The
sweep derives naive-Bayes envelopes under growing budgets and verifies the
trade-off: more budget never loosens the mean envelope selectivity, and
derivation time grows with the budget.
"""

from repro.experiments.ablation import threshold_sweep
from repro.workload.report import format_table


def test_a1_threshold_tradeoff(config, benchmark):
    rows = benchmark.pedantic(
        threshold_sweep,
        kwargs=dict(
            datasets=("diabetes", "anneal_u"),
            budgets=(25, 100, 400),
            config=config,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_table(
            ["Data set", "max_nodes", "Mean disjuncts", "Mean env sel", "s"],
            [
                (
                    r.dataset,
                    r.max_nodes,
                    r.mean_disjuncts,
                    f"{r.mean_envelope_selectivity:.4f}",
                    f"{r.derive_seconds:.2f}",
                )
                for r in rows
            ],
        )
    )
    by_dataset: dict[str, list] = {}
    for row in rows:
        by_dataset.setdefault(row.dataset, []).append(row)
    for dataset, series in by_dataset.items():
        series.sort(key=lambda r: r.max_nodes)
        # Tightness is monotone (with slack for coarsening noise): the
        # largest budget is at least as tight as the smallest.
        assert (
            series[-1].mean_envelope_selectivity
            <= series[0].mean_envelope_selectivity + 0.05
        ), dataset
