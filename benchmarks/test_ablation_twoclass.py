"""A2 — ablation: Lemma 3.2 exact two-class bounds.

For K=2 the paper replaces the generic Lemma 3.1 bounds with probability
*ratios*, making MUST-WIN/MUST-LOSE exact.  The ablation derives envelopes
for the three two-class datasets with and without the transform and checks
the exact bounds never lose (and typically gain) tightness at the same
node budget.
"""

from repro.experiments.ablation import two_class_comparison
from repro.workload.report import format_table


def test_a2_exact_bounds_help(config, benchmark):
    rows = benchmark.pedantic(
        two_class_comparison,
        kwargs=dict(
            datasets=("diabetes", "hypothyroid", "chess"),
            config=config,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_table(
            ["Data set", "Bounds", "Mean env sel", "# exact", "s"],
            [
                (
                    r.dataset,
                    r.mode,
                    f"{r.mean_envelope_selectivity:.4f}",
                    r.exact_count,
                    f"{r.derive_seconds:.2f}",
                )
                for r in rows
            ],
        )
    )
    by_dataset: dict[str, dict[str, object]] = {}
    for row in rows:
        by_dataset.setdefault(row.dataset, {})[row.mode] = row
    # The exact bounds make individual region verdicts strictly tighter;
    # the end-to-end envelope also depends on heuristic splitting and
    # coarsening, so the comparison is made across datasets, with a small
    # noise allowance, rather than per dataset.
    deltas = [
        modes["exact-2class"].mean_envelope_selectivity
        - modes["generic"].mean_envelope_selectivity
        for modes in by_dataset.values()
    ]
    assert sum(deltas) / len(deltas) <= 0.05
