"""E8 — Section 5(iii): envelope precompute and lookup overheads.

The paper reports (without a table) that "in almost all data sets the time
to precompute the upper envelope predicate for each class was a negligible
fraction of the model training time" and that atomic-envelope lookup "was
insignificant compared to the time for optimizing the query".

Decision-tree envelope extraction is indeed negligible next to training;
the top-down search for naive Bayes/clustering is heavier relative to
their (very cheap) counting-based training, so the benchmark reports
absolute derivation times and asserts they stay within interactive bounds,
plus the lookup-vs-optimize claim which holds directly.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.overhead import overhead_rows, print_overheads


def _config(config) -> ExperimentConfig:
    # The overhead experiment retrains per family; keep it to a subset.
    return ExperimentConfig(
        rows_target=config.rows_target,
        train_cap=config.train_cap,
        nb_bins=config.nb_bins,
        cluster_bins=config.cluster_bins,
        max_nodes=config.max_nodes,
        datasets=("diabetes", "hypothyroid", "anneal_u", "shuttle"),
    )


def test_exp8_overheads(config, benchmark):
    rows = benchmark.pedantic(
        overhead_rows, args=(_config(config),), rounds=1, iterations=1
    )
    assert rows
    for row in rows:
        # Lookup of a precomputed atomic envelope is a dictionary access:
        # a negligible share of query optimization.
        assert row.lookup_fraction < 0.5
        # Derivation stays a one-time, training-side cost measured in
        # seconds per model (the paper's "little overhead").
        assert row.derive_seconds < 120.0
    tree_rows = [r for r in rows if r.family == "decision_tree"]
    assert tree_rows
    for row in tree_rows:
        # Tree path extraction stays within a small multiple of (fast,
        # vectorized) tree training.
        assert row.derive_seconds <= max(2.0 * row.train_seconds, 0.5)


def test_exp8_prints(config, capsys):
    print_overheads(_config(config))
