"""F3 — Figure 3: per-dataset % plan change, decision-tree models.

The paper's bar chart shows large plan-change percentages for many-class
datasets (kddcup, letter, shuttle) and small ones for near-balanced
two-class datasets (Diabetes, Parity).  The benchmark regenerates the
series and asserts that ordering.
"""

from repro.experiments.figures import (
    figure_plan_change,
    print_figure_plan_change,
)

MANY_CLASS = ("kdd_cup_99", "letter", "shuttle")
TWO_CLASS_BALANCED = ("diabetes", "parity5_5", "chess")


def test_fig3_regenerates(config, sweep, benchmark):
    series = benchmark(
        figure_plan_change, 3, config, measurements=sweep
    )
    assert set(series) == set(config.datasets)
    many = [series[d] for d in MANY_CLASS if d in series]
    balanced = [series[d] for d in TWO_CLASS_BALANCED if d in series]
    if many and balanced:
        assert max(many) >= max(balanced)
        assert sum(many) / len(many) >= sum(balanced) / len(balanced)


def test_fig3_prints(config, capsys):
    text = print_figure_plan_change(3, config)
    assert "decision_tree" in text
