"""F4 — Figure 4: per-dataset % plan change, naive Bayes models.

Same reading as Figure 3: impact concentrates on datasets with many (and
hence individually selective) classes; loose envelopes on hard datasets
(Parity — NB cannot represent parity at all) show no impact, which the
paper's bars reflect as well.
"""

from repro.experiments.figures import (
    figure_plan_change,
    print_figure_plan_change,
)


def test_fig4_regenerates(config, sweep, benchmark):
    series = benchmark(
        figure_plan_change, 4, config, measurements=sweep
    )
    assert set(series) == set(config.datasets)
    for value in series.values():
        assert 0.0 <= value <= 100.0
    # Parity5+5: naive Bayes sees two identical marginal distributions, so
    # its envelopes cannot separate the classes — no plan change, as in the
    # paper's near-zero Parity bar.
    if "parity5_5" in series:
        assert series["parity5_5"] <= 50.0


def test_fig4_prints(config, capsys):
    text = print_figure_plan_change(4, config)
    assert "naive_bayes" in text
