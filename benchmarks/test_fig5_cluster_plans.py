"""F5 — Figure 5: per-dataset % plan change, clustering models.

The paper's bars again favour many-cluster datasets (kddcup, letter,
shuttle have #clusters = #classes, each cluster small).  Cluster models
here are centroid-based k-means deployed over discretized attributes (the
Analysis Server DISCRETIZED setting, Section 2.2), with envelopes from the
Section 3.3 reduction.
"""

from repro.experiments.figures import (
    figure_plan_change,
    print_figure_plan_change,
)


def test_fig5_regenerates(config, sweep, benchmark):
    series = benchmark(
        figure_plan_change, 5, config, measurements=sweep
    )
    assert set(series) == set(config.datasets)
    for value in series.values():
        assert 0.0 <= value <= 100.0
    assert any(value > 0.0 for value in series.values())


def test_fig5_prints(config, capsys):
    text = print_figure_plan_change(5, config)
    assert "clustering" in text
