"""F6 — Figure 6: running-time improvement versus selectivity.

The paper buckets every query by its class's original selectivity (and,
as the second bar, by the upper envelope's selectivity) and shows that
"the reduction in running time is most significant when the selectivity is
below 10%", with little to gain above that even for exact envelopes.
"""

from repro.experiments.figures import figure6_selectivity, print_figure6


def test_fig6_regenerates(config, sweep, benchmark):
    rows = benchmark(figure6_selectivity, config, measurements=sweep)
    assert [r.bucket for r in rows] == ["<1%", "1-10%", "10-50%", ">50%"]
    by_bucket = {r.bucket: r for r in rows}
    # The paper's headline shape: the biggest average reductions live in
    # the sub-10% selectivity buckets.
    low = max(
        by_bucket["<1%"].original_reduction_pct,
        by_bucket["1-10%"].original_reduction_pct,
    )
    assert low > by_bucket[">50%"].original_reduction_pct
    assert low > 30.0
    # Every measurement falls in exactly one original-selectivity bucket.
    assert sum(r.original_count for r in rows) == len(sweep)


def test_fig6_prints(config, capsys):
    text = print_figure6(config)
    assert "Figure 6" in text
