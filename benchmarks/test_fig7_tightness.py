"""F7 — Figure 7: tightness of approximation (naive Bayes and clustering).

The paper's scatter plots original selectivity against upper-envelope
selectivity per class (log scale) and reads it as: "a significant fraction
of the upper envelope predicates either have selectivities close to the
original selectivity or have selectivity small enough that use of indexes
... is attractive.  Most cases where the algorithm failed to find a tight
upper envelope correspond to cases where the original selectivity is large
to start with."  The benchmark regenerates the scatter and asserts both
halves of that reading.
"""

from repro.experiments.figures import figure7_tightness, print_figure7
from repro.workload.report import tightness_summary


def test_fig7_regenerates(config, sweep, benchmark):
    points = benchmark(figure7_tightness, config, measurements=sweep)
    assert points
    # Soundness shows up in the scatter: no point below the diagonal.
    for point in points:
        assert (
            point.envelope_selectivity
            >= point.original_selectivity - 1e-9
        )
    summary = tightness_summary(points)
    # "A significant fraction ... close to the original selectivity or
    # small enough that use of indexes ... is attractive."
    assert summary["useful_fraction"] > 0.35
    assert summary["tight_fraction"] > 0.2


def test_fig7_prints(config, capsys):
    text = print_figure7(config)
    assert "Figure 7" in text
