"""T2 — Table 2: summary of the evaluation datasets.

Paper values (Table 2): ten datasets, training sizes from 100 (Parity5+5)
to 100,000 (KDD-Cup-99), test sets doubled past 1M rows (1.04M-4.72M), 2-26
classes, 5-26 clusters.  At bench scale the doubling targets a smaller row
count; at ``REPRO_BENCH_SCALE=paper`` the sizes land above 1M as published.
"""

from repro.experiments.tables import print_table2, table2_rows


def test_table2_regenerates(config, benchmark):
    rows = benchmark(table2_rows, config)
    assert len(rows) == len(config.datasets)
    for row in rows:
        assert row.test_size >= config.rows_target
        # The doubling construction: test size is train size times a power
        # of two (paper Section 5.1).
        factor = row.test_size // row.train_size
        assert factor & (factor - 1) == 0


def test_print_table2(config, capsys):
    text = print_table2(config)
    assert "Data Set" in text
    for name in config.datasets:
        assert name in text
