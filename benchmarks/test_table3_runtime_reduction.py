"""T3 — Section 5.2.1 table: average % reduction in running time.

Paper values: decision tree 73.7%, naive Bayes 63.5%, clustering 79.0%
(average over every class of every dataset, versus ``SELECT * FROM T``).

The reproduction checks the *shape*: every family shows a clear positive
average reduction, driven by selective classes whose envelopes flip the
plan to indexed access or cut the rows fetched.
"""

from repro.experiments.tables import (
    PAPER_RUNTIME_REDUCTION,
    table3_runtime_reduction,
)
from repro.workload.report import format_table


def test_table3_regenerates(config, sweep, benchmark):
    result = benchmark(
        table3_runtime_reduction, config, measurements=sweep
    )
    print()
    print(
        format_table(
            ["Family", "Measured %", "Paper %"],
            [
                (family, result.get(family, 0.0), paper)
                for family, paper in PAPER_RUNTIME_REDUCTION.items()
            ],
        )
    )
    assert set(result) == set(PAPER_RUNTIME_REDUCTION)
    # Shape assertions: reductions are positive on average for every
    # family, and the decision-tree family (exact envelopes) is solidly so.
    assert result["decision_tree"] > 20.0
    for family, value in result.items():
        assert value > -5.0, (family, value)
