"""T4 — Section 5.2.1 table: % of queries whose physical plan changed.

Paper values: decision tree 72.7%, naive Bayes 75.3%, clustering 76.6%.
A plan counts as changed when the optimizer picked an index (or a constant
scan for a FALSE envelope) instead of the baseline full scan.

The paper's drill-down (Figures 3-5) shows the percentage is driven by
datasets with many classes — small-selectivity classes get indexed plans;
near-balanced two-class datasets rarely change.  At bench scale we assert
that structure rather than the absolute percentages.
"""

from repro.experiments.tables import PAPER_PLAN_CHANGE, table4_plan_change
from repro.workload.report import format_table


def test_table4_regenerates(config, sweep, benchmark):
    result = benchmark(table4_plan_change, config, measurements=sweep)
    print()
    print(
        format_table(
            ["Family", "Measured %", "Paper %"],
            [
                (family, result.get(family, 0.0), paper)
                for family, paper in PAPER_PLAN_CHANGE.items()
            ],
        )
    )
    assert set(result) == set(PAPER_PLAN_CHANGE)
    for family, value in result.items():
        assert 0.0 <= value <= 100.0
    # Plans do change for a meaningful share of decision-tree queries.
    assert result["decision_tree"] > 10.0


def test_plan_changes_concentrate_on_selective_classes(sweep):
    """The mechanism behind the table: changed plans belong to classes
    with small selectivity (paper Section 5.2.1's analysis)."""
    changed = [m for m in sweep if m.plan_changed]
    unchanged = [m for m in sweep if not m.plan_changed]
    assert changed, "no plans changed at all"
    mean = lambda xs: sum(xs) / len(xs)
    assert mean(
        [m.original_selectivity for m in changed]
    ) < mean([m.original_selectivity for m in unchanged])
