"""Clustering envelopes: centroid, model-based, and boundary-based.

Paper Section 3.3 covers three clustering variants; this example exercises
all of them on a customer-segmentation scenario:

* k-means (centroid-based, weighted Euclidean) deployed over discretized
  attributes (the Analysis Server DISCRETIZED setting) — exact reduction to
  the naive-Bayes envelope algorithm,
* a diagonal Gaussian mixture (model-based) — same reduction,
* grid-density clustering (boundary-based) — exact rectangle covering of
  the cluster's explicit cell region.

Run:  python examples/cluster_segments.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    Database,
    DensityClusterLearner,
    GaussianMixtureLearner,
    KMeansLearner,
    MiningQuery,
    ModelCatalog,
    PredictionEquals,
    PredictionJoinExecutor,
    clustering_space,
    load_table,
    tune_for_workload,
)
from repro.mining.discretized_cluster import DiscretizedClusterModel


def make_customers(n: int = 25_000, seed: int = 41) -> list[dict]:
    """Three well-separated behavioural segments plus background noise."""
    rng = np.random.default_rng(seed)
    segments = [
        (200.0, 2.0),    # low spend, rare visits
        (1500.0, 12.0),  # mid spend, frequent visits
        (4000.0, 5.0),   # high spend, moderate visits
    ]
    rows = []
    for _ in range(n):
        draw = rng.random()
        if draw < 0.94:
            spend, visits = segments[int(rng.choice(3, p=[0.6, 0.3, 0.1]))]
            spend = rng.normal(spend, spend * 0.15)
            visits = rng.normal(visits, 1.2)
        else:  # scattered background
            spend = rng.uniform(0, 6000)
            visits = rng.uniform(0, 20)
        rows.append(
            {
                "monthly_spend": float(np.round(max(spend, 0.0), 2)),
                "visits_per_month": float(np.round(max(visits, 0.0), 1)),
            }
        )
    return rows


def run_query(executor, model_name, label):
    query = MiningQuery(
        "customers",
        mining_predicates=(PredictionEquals(model_name, label),),
    )
    naive = executor.execute_naive(query)
    optimized = executor.execute_optimized(query)
    assert optimized.rows_returned == naive.rows_returned
    print(f"  {model_name}.{label}: {optimized.rows_returned:>6} rows | "
          f"fetched {optimized.rows_fetched:>6} vs {naive.rows_fetched} | "
          f"{optimized.total_seconds * 1000:6.1f} ms vs "
          f"{naive.total_seconds * 1000:6.1f} ms | "
          f"plan={optimized.plan.access_path.value}")


def main() -> None:
    rows = make_customers()
    features = ("monthly_spend", "visits_per_month")
    catalog = ModelCatalog()

    kmeans = KMeansLearner(features, 3, name="kmeans_segments").fit(rows)
    space = clustering_space(kmeans, rows, bins=10)
    kmeans_model = DiscretizedClusterModel(
        kmeans, space, name="kmeans_segments"
    )
    catalog.register(kmeans_model)

    gmm = GaussianMixtureLearner(features, 3, name="gmm_segments").fit(rows)
    gmm_model = DiscretizedClusterModel(
        gmm, clustering_space(gmm, rows, bins=10), name="gmm_segments"
    )
    catalog.register(gmm_model)

    density = DensityClusterLearner(
        features, bins=12, density_threshold=25, name="density_segments"
    ).fit(rows)
    catalog.register(density)
    print(f"density clustering found {len(density.cluster_labels)} clusters "
          f"(+ noise)")

    db = Database()
    load_table(db, "customers", rows)
    workload = []
    for name in ("kmeans_segments", "gmm_segments", "density_segments"):
        for label in catalog.class_labels(name):
            workload.append(catalog.envelope(name, label).predicate)
    tune_for_workload(db, "customers", workload)
    executor = PredictionJoinExecutor(db, catalog)

    print("\ncentroid-based (k-means over discretized attributes):")
    for label in kmeans_model.class_labels:
        run_query(executor, "kmeans_segments", label)

    print("\nmodel-based (diagonal Gaussian mixture):")
    for label in gmm_model.class_labels:
        run_query(executor, "gmm_segments", label)

    print("\nboundary-based (grid density; exact rectangle covers):")
    for label in density.cluster_labels:
        run_query(executor, "density_segments", label)

    # -- the paper's "ongoing work": hierarchical and fuzzy clusters -------
    from repro import AgglomerativeClusterLearner, FuzzyCMeansLearner

    for learner, name in (
        (AgglomerativeClusterLearner(features, 3, name="hier_segments"),
         "hier_segments"),
        (FuzzyCMeansLearner(features, 3, name="fuzzy_segments"),
         "fuzzy_segments"),
    ):
        base = learner.fit(rows)
        model = DiscretizedClusterModel(
            base, clustering_space(base, rows, bins=10), name=name
        )
        catalog.register(model)
        for label in model.class_labels:
            workload.append(catalog.envelope(name, label).predicate)
    print("\nhierarchical (agglomerative, cut at 3) and fuzzy (c-means, "
          "hardened) — both reduce to the centroid envelope path:")
    for name in ("hier_segments", "fuzzy_segments"):
        for label in catalog.class_labels(name):
            run_query(executor, name, label)
    db.close()


if __name__ == "__main__":
    main()
