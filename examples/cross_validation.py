"""Join between a predicted column and a data column (paper Section 4.1).

"Find all customers for whom predicted age is of the same category as the
actual age" — the cross-validation query.  The envelope enumerates the
model's (few) class labels: ``OR_c (env_c AND T.age_group = c)``.

The second query adds the paper's transitivity twist: the relational
predicate restricts ``age_group IN ('middle-aged', 'senior')``, so the
optimizer only expands those two labels.

Run:  python examples/cross_validation.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    Database,
    MiningQuery,
    ModelCatalog,
    NaiveBayesLearner,
    PredictionJoinColumn,
    PredictionJoinExecutor,
    in_set,
    load_table,
    tune_for_workload,
)

AGE_GROUPS = ("young", "middle-aged", "senior")


def make_customers(n: int = 20_000, seed: int = 31) -> list[dict]:
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(n):
        group = AGE_GROUPS[int(rng.choice(3, p=[0.5, 0.35, 0.15]))]
        income = {
            "young": rng.normal(30_000, 9_000),
            "middle-aged": rng.normal(65_000, 15_000),
            "senior": rng.normal(48_000, 12_000),
        }[group]
        tenure = {
            "young": rng.gamma(1.5, 2),
            "middle-aged": rng.gamma(5, 2),
            "senior": rng.gamma(9, 2),
        }[group]
        rows.append(
            {
                "income": float(np.round(max(income, 5_000), 2)),
                "tenure_years": float(np.round(min(tenure, 40), 1)),
                "channel": str(rng.choice(["web", "branch", "phone"])),
                "age_group": group,
            }
        )
    return rows


def main() -> None:
    rows = make_customers()
    features = ("income", "tenure_years", "channel")

    model = NaiveBayesLearner(
        features, "age_group", bins=8, name="age_model"
    ).fit(rows)
    catalog = ModelCatalog()
    catalog.register(model)

    db = Database()
    load_table(db, "customers", rows)  # includes the actual age_group
    tune_for_workload(
        db,
        "customers",
        [catalog.envelope("age_model", g).predicate for g in AGE_GROUPS],
    )
    executor = PredictionJoinExecutor(db, catalog)

    print("=== predicted age group = stored age group ===")
    query = MiningQuery(
        "customers",
        mining_predicates=(PredictionJoinColumn("age_model", "age_group"),),
    )
    naive = executor.execute_naive(query)
    optimized = executor.execute_optimized(query)
    agreement = optimized.rows_returned / naive.rows_fetched
    print(f"  naive:     fetched {naive.rows_fetched:>6}  "
          f"{naive.total_seconds * 1000:7.1f} ms")
    print(f"  optimized: fetched {optimized.rows_fetched:>6}  "
          f"{optimized.total_seconds * 1000:7.1f} ms")
    print(f"  model/label agreement: {agreement:.1%}")
    assert optimized.rows_returned == naive.rows_returned

    print("\n=== ... AND age_group IN ('middle-aged', 'senior')  "
          "(transitivity) ===")
    query = MiningQuery(
        "customers",
        relational_predicate=in_set(
            "age_group", ["middle-aged", "senior"]
        ),
        mining_predicates=(PredictionJoinColumn("age_model", "age_group"),),
    )
    naive = executor.execute_naive(query)
    optimized = executor.execute_optimized(query)
    predicate = query.mining_predicates[0]
    labels = predicate.restricted_labels(
        catalog, query.relational_predicate
    )
    print(f"  transitivity restricted the label expansion to: {labels}")
    print(f"  naive:     fetched {naive.rows_fetched:>6}  "
          f"{naive.total_seconds * 1000:7.1f} ms")
    print(f"  optimized: fetched {optimized.rows_fetched:>6}  "
          f"{optimized.total_seconds * 1000:7.1f} ms  "
          f"plan={optimized.plan.access_path.value}")
    assert optimized.rows_returned == naive.rows_returned
    db.close()


if __name__ == "__main__":
    main()
