"""DMX-style queries: the paper's Section 2.2 surface syntax.

The paper's Analysis Server examples express mining predicates in DMX —
``SELECT ... FROM model PREDICTION JOIN data WHERE model.column = value``.
This example runs the same queries through the library's DMX parser, plus
the future-work extension: range predicates over a regression tree's
real-valued prediction.

Run:  python examples/dmx_queries.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    Database,
    DecisionTreeLearner,
    MiningQuery,
    ModelCatalog,
    PredictionBetween,
    PredictionJoinExecutor,
    RegressionTreeLearner,
    load_table,
    parse_dmx,
    register_regression_model,
    tune_for_workload,
)


def make_customers(n: int = 15_000, seed: int = 77) -> list[dict]:
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(n):
        age = int(rng.integers(18, 85))
        purchases = float(np.round(rng.gamma(2.0, 700.0), 2))
        gender = str(rng.choice(["female", "male"]))
        if age > 60 and purchases > 2200:
            risk = "low"
        elif age < 30 and purchases < 500:
            risk = "high"
        else:
            risk = "medium"
        # Real-valued target for the regression extension: expected
        # customer lifetime value.
        clv = 50.0 * purchases / (1.0 + abs(age - 45) / 20.0)
        rows.append(
            {
                "age": age,
                "purchases": purchases,
                "gender": gender,
                "risk": risk,
                "clv": float(np.round(clv, 2)),
            }
        )
    return rows


def main() -> None:
    rows = make_customers()
    features = ("age", "purchases", "gender")

    catalog = ModelCatalog()
    catalog.register(
        DecisionTreeLearner(
            features, "risk", max_depth=6, name="Risk_Class"
        ).fit(rows)
    )

    db = Database()
    load_table(db, "customers", [{c: r[c] for c in features} for r in rows])
    tune_for_workload(
        db,
        "customers",
        [
            catalog.envelope("Risk_Class", label).predicate
            for label in catalog.class_labels("Risk_Class")
        ],
    )
    executor = PredictionJoinExecutor(db, catalog)

    dmx = (
        "SELECT * FROM customers D "
        "PREDICTION JOIN [Risk_Class] M "
        "WHERE M.Risk = 'low' AND D.age > 60"
    )
    print("DMX:", dmx)
    query = parse_dmx(dmx, catalog)
    report = executor.execute_optimized(query)
    print(f"  -> {report.rows_returned} rows, plan="
          f"{report.plan.access_path.value}, fetched {report.rows_fetched}")

    dmx = (
        "SELECT * FROM customers "
        "PREDICTION JOIN Risk_Class M "
        "WHERE M.Risk IN ('low', 'high') AND purchases BETWEEN 100 AND 4000"
    )
    print("\nDMX:", dmx)
    query = parse_dmx(dmx, catalog)
    report = executor.execute_optimized(query)
    print(f"  -> {report.rows_returned} rows, plan="
          f"{report.plan.access_path.value}, fetched {report.rows_fetched}")

    # -- the future-work extension: real-valued predictions ----------------
    regression = RegressionTreeLearner(
        features, "clv", max_depth=7, name="clv_model"
    ).fit(rows)
    register_regression_model(catalog, regression)
    query = MiningQuery(
        "customers",
        mining_predicates=(
            PredictionBetween("clv_model", 100_000.0, None),
        ),
    )
    naive = executor.execute_naive(query)
    optimized = executor.execute_optimized(query)
    print("\nregression range predicate: predicted CLV >= 100000")
    print(f"  naive:     fetched {naive.rows_fetched:>6}  "
          f"{naive.total_seconds * 1000:7.1f} ms")
    print(f"  optimized: fetched {optimized.rows_fetched:>6}  "
          f"{optimized.total_seconds * 1000:7.1f} ms  "
          f"plan={optimized.plan.access_path.value}")
    assert optimized.rows_returned == naive.rows_returned
    db.close()


if __name__ == "__main__":
    main()
