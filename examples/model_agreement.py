"""Join predicates between two predicted columns (paper Section 4.1).

"Find all microsoft.com visitors who are predicted to be web developers by
two mining models SAS_customer_model and SPSS_customer_model."

The envelope of ``M1.pred = M2.pred`` is the disjunction over common labels
of the conjunction of both atomic envelopes.  The example also demonstrates
the two special cases the paper calls out:

* identical models -> the envelope is a tautology (nothing to optimize),
* label-disjoint models -> the envelope is FALSE and the query is answered
  with a constant scan, never touching the data.

Run:  python examples/model_agreement.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    Database,
    DecisionTreeLearner,
    MiningQuery,
    ModelCatalog,
    NaiveBayesLearner,
    PredictionEquals,
    PredictionJoinExecutor,
    PredictionJoinPrediction,
    load_table,
    tune_for_workload,
)

SEGMENTS = ("developer", "designer", "manager")


def make_profiles(n: int = 25_000, seed: int = 23) -> list[dict]:
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(n):
        segment = SEGMENTS[int(rng.choice(3, p=[0.15, 0.25, 0.60]))]
        downloads = {
            "developer": rng.gamma(10, 3),
            "designer": rng.gamma(4, 3),
            "manager": rng.gamma(1.5, 3),
        }[segment]
        forum_posts = {
            "developer": rng.gamma(6, 2),
            "designer": rng.gamma(3, 2),
            "manager": rng.gamma(1, 2),
        }[segment]
        rows.append(
            {
                "downloads": float(np.round(downloads, 1)),
                "forum_posts": float(np.round(forum_posts, 1)),
                "account_years": int(rng.integers(0, 15)),
                "segment": segment,
            }
        )
    return rows


def main() -> None:
    rows = make_profiles()
    features = ("downloads", "forum_posts", "account_years")

    # Two independently trained models (the paper's SAS vs SPSS example).
    sas = DecisionTreeLearner(
        features, "segment", max_depth=5, name="SAS_customer_model"
    ).fit(rows[: len(rows) // 2])
    spss = NaiveBayesLearner(
        features, "segment", bins=8, name="SPSS_customer_model"
    ).fit(rows[len(rows) // 2:])

    catalog = ModelCatalog()
    catalog.register(sas)
    catalog.register(spss)

    db = Database()
    load_table(db, "visitors", [{c: r[c] for c in features} for r in rows])
    tune_for_workload(
        db,
        "visitors",
        [catalog.envelope("SAS_customer_model", s).predicate for s in SEGMENTS]
        + [catalog.envelope("SPSS_customer_model", s).predicate for s in SEGMENTS],
    )
    executor = PredictionJoinExecutor(db, catalog)

    print("=== both models predict the SAME segment, and it is 'developer' ===")
    query = MiningQuery(
        "visitors",
        mining_predicates=(
            PredictionJoinPrediction(
                "SAS_customer_model", "SPSS_customer_model"
            ),
            PredictionEquals("SAS_customer_model", "developer"),
        ),
    )
    naive = executor.execute_naive(query)
    optimized = executor.execute_optimized(query)
    print(f"  naive:     fetched {naive.rows_fetched:>6}  "
          f"{naive.total_seconds * 1000:7.1f} ms")
    print(f"  optimized: fetched {optimized.rows_fetched:>6}  "
          f"{optimized.total_seconds * 1000:7.1f} ms  "
          f"plan={optimized.plan.access_path.value}")
    print(f"  both-model developers: {optimized.rows_returned}")
    for note in optimized.optimized.notes:
        print(f"  optimizer note: {note}")
    assert optimized.rows_returned == naive.rows_returned

    print("\n=== join of a model with itself (tautology case) ===")
    query = MiningQuery(
        "visitors",
        mining_predicates=(
            PredictionJoinPrediction(
                "SAS_customer_model", "SAS_customer_model"
            ),
        ),
    )
    optimized = executor.execute_optimized(query)
    print(f"  envelope is TRUE; every row agrees with itself: "
          f"{optimized.rows_returned} rows")

    print("\n=== contradictory models (no common labels) ===")
    other = DecisionTreeLearner(
        features, "segment", max_depth=3, name="other_model",
        prediction_column="tier",
    ).fit(
        [dict(r, segment="tier_" + r["segment"]) for r in rows[:2000]]
    )
    catalog.register(other)
    query = MiningQuery(
        "visitors",
        mining_predicates=(
            PredictionJoinPrediction("SAS_customer_model", "other_model"),
        ),
    )
    optimized = executor.execute_optimized(query)
    print(f"  plan={optimized.plan.access_path.value}, "
          f"rows fetched={optimized.rows_fetched} "
          f"(the engine never touched the table)")
    db.close()


if __name__ == "__main__":
    main()
