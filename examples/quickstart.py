"""Quickstart: derive an upper envelope and run an optimized mining query.

Recreates the paper's running example (Section 2.2): a decision-tree model
``Risk_Class`` predicting customer risk from profile columns, queried with
the mining predicate ``Risk = 'low'``.  The script shows the three things
the paper is about:

1. the *derived upper envelope* — an ordinary WHERE clause extracted from
   the tree (Section 3.1),
2. the *rewritten query* the relational engine actually runs (Section 4),
3. the effect: fewer rows cross the SQL boundary, and with a tuned index
   the plan changes from a full scan to an index search (Section 5).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    Database,
    DecisionTreeLearner,
    MiningQuery,
    ModelCatalog,
    PredictionEquals,
    PredictionJoinExecutor,
    compile_predicate,
    load_table,
    select_statement,
    tune_for_workload,
)


def make_customers(n: int = 20_000, seed: int = 11) -> list[dict]:
    """Synthetic customer profiles with a learnable risk label."""
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(n):
        age = int(rng.integers(18, 85))
        purchases = float(np.round(rng.gamma(2.0, 900.0), 2))
        gender = str(rng.choice(["female", "male"]))
        if age > 60 and purchases > 2500:
            risk = "low"
        elif age < 30 and purchases < 600:
            risk = "high"
        else:
            risk = "medium"
        if rng.random() < 0.02:
            risk = str(rng.choice(["low", "medium", "high"]))
        rows.append(
            {"age": age, "purchases": purchases, "gender": gender, "risk": risk}
        )
    return rows


def main() -> None:
    rows = make_customers()
    features = ("age", "purchases", "gender")

    # -- train the mining model (CREATE MINING MODEL ... USING Decision_Trees)
    tree = DecisionTreeLearner(
        features, "risk", max_depth=6, name="Risk_Class"
    ).fit(rows)
    print(f"trained {tree.name}: depth={tree.depth()}, leaves={tree.leaf_count()}")

    # -- register it: per-class envelopes are precomputed here (Section 4.2)
    catalog = ModelCatalog()
    entry = catalog.register(tree)
    print(f"derived {len(entry.envelopes)} atomic envelopes "
          f"in {entry.derivation_seconds * 1000:.1f} ms")

    envelope = catalog.envelope("Risk_Class", "low")
    print("\nupper envelope for Risk = 'low':")
    print(" ", compile_predicate(envelope.predicate))
    print(f"  exact={envelope.exact}, disjuncts={envelope.n_disjuncts}")

    # -- load the data (customers table holds profile columns only)
    db = Database()
    load_table(db, "customers", [{c: r[c] for c in features} for r in rows])

    # -- the mining query: SELECT * FROM customers WHERE Risk_Class = 'low'
    query = MiningQuery(
        "customers",
        mining_predicates=(PredictionEquals("Risk_Class", "low"),),
    )

    # Let the Index Tuning Wizard stand-in pick indexes for the workload.
    recommendation = tune_for_workload(
        db,
        "customers",
        [catalog.envelope("Risk_Class", label).predicate
         for label in tree.class_labels],
    )
    print("\nindex advisor chose:", recommendation.column_sets)

    executor = PredictionJoinExecutor(db, catalog)
    naive = executor.execute_naive(query)
    optimized = executor.execute_optimized(query)

    print("\nextract-and-mine (Section 2.1):")
    print(f"  fetched {naive.rows_fetched} rows, "
          f"returned {naive.rows_returned}, "
          f"plan={naive.plan.access_path.value}, "
          f"{naive.total_seconds * 1000:.1f} ms")
    print("optimized with upper envelope (Section 4):")
    print(f"  fetched {optimized.rows_fetched} rows, "
          f"returned {optimized.rows_returned}, "
          f"plan={optimized.plan.access_path.value}, "
          f"{optimized.total_seconds * 1000:.1f} ms")
    assert sorted(map(str, optimized.rows)) == sorted(map(str, naive.rows))
    print("\nresults identical; the rewritten SQL was:")
    print(" ", select_statement(
        "customers", optimized.optimized.pushable_predicate)[:160], "...")
    db.close()


if __name__ == "__main__":
    main()
