"""Streaming segment matching: which segments does each event belong to?

The inverse of the paper's workload: instead of one mining predicate
filtering a big table, a *stream* of row batches is matched against a
whole catalog of named segment definitions — some hand-written in
predicate IR, some derived as upper envelopes of a trained model (the
Section 3 machinery powering a serving feature).  The catalog interns
every predicate, so the evaluator computes each distinct subtree's mask
once per batch and shares it across all segments.

Run:  python examples/streaming_segments.py
"""

from __future__ import annotations

import numpy as np

from repro import Comparison, Database, DecisionTreeLearner, Op, load_table
from repro.core.predicates import And, Interval, Or
from repro.segments import SegmentCatalog
from repro.serve import ModelRegistry, QueryService

FEATURES = ("age", "income", "visits")


def make_events(n: int, seed: int) -> list[dict]:
    """Synthetic customer events with a learnable churn label."""
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(n):
        age = int(rng.integers(18, 80))
        income = float(rng.uniform(10_000, 120_000))
        visits = int(rng.integers(0, 30))
        churn = (
            "yes" if visits < 5 and income < 40_000 or age > 70 else "no"
        )
        if rng.random() < 0.05:
            churn = "yes" if churn == "no" else "no"
        rows.append(
            {"age": age, "income": income, "visits": visits, "churn": churn}
        )
    return rows


def main() -> None:
    training = make_events(2_000, seed=3)

    # Hand-written segments, assembled from a shared atom vocabulary —
    # the catalog interns them, so overlapping subtrees are evaluated
    # once per batch no matter how many segments reuse them.
    young = Comparison("age", Op.LT, 30)
    affluent = Comparison("income", Op.GE, 75_000.0)
    frequent = Comparison("visits", Op.GE, 10)
    mid_income = Interval("income", 40_000.0, 75_000.0, True, False)

    catalog = SegmentCatalog()
    catalog.register("young-affluent", And((young, affluent)))
    catalog.register("engaged", Or((frequent, And((young, mid_income)))))
    catalog.register("upsell-pool", And((affluent, frequent)))

    # Model-backed segments: one upper envelope per predicted class.
    tree = DecisionTreeLearner(
        FEATURES, "churn", max_depth=5, name="churn_tree"
    ).fit(training)
    for definition in catalog.register_model(tree):
        print(
            f"registered {definition.name!r} from model "
            f"{definition.model_name!r} ({definition.n_atoms} atoms, "
            f"exact={definition.exact})"
        )
    print(
        f"catalog: {len(catalog)} segments, version {catalog.version}"
    )

    # Matching runs through the query service: same admission control,
    # collapsing, and batching the prediction-join traffic uses.
    db = Database()
    load_table(db, "events", [dict(row) for row in training[:1]])
    with QueryService(
        db, ModelRegistry(), workers=2, segment_catalog=catalog
    ) as service:
        total = np.zeros(len(catalog.names()), dtype=int)
        stream = make_events(4_096, seed=11)
        for start in range(0, len(stream), 512):
            batch = [
                {k: row[k] for k in FEATURES}
                for row in stream[start : start + 512]
            ]
            result = service.match_segments(batch)
            for i, name in enumerate(result.segment_names):
                total[i] += sum(
                    1 for row in result.memberships if name in row
                )
            stats = result.mask_stats
            print(
                f"batch {start // 512}: {len(batch)} rows, "
                f"{result.rows_matched} matched >=1 segment "
                f"(masks: {stats.computed} computed, "
                f"{stats.shared} shared)"
            )
        print()
        print("segment totals over the stream:")
        for name, count in zip(catalog.names(), total):
            print(f"  {name:<18} {int(count):>5} rows")
    db.close()


if __name__ == "__main__":
    main()
