"""Targeted marketing: the paper's introduction scenario.

"Find customers who visited the MSNBC site last week and who are
*predicted* to belong to the category of baseball fans."  (Section 1)

A naive Bayes model classifies visitors into interest categories from
profile columns; the query combines an ordinary relational predicate
(visited last week) with a mining predicate — first the atomic form
(``= 'baseball'``), then the IN form of Section 4.1
(``IN ('baseball', 'football')``), whose envelope is the disjunction of
the atomic envelopes.

Run:  python examples/targeted_marketing.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    Comparison,
    Database,
    MiningQuery,
    ModelCatalog,
    NaiveBayesLearner,
    Op,
    PredictionEquals,
    PredictionIn,
    PredictionJoinExecutor,
    load_table,
    tune_for_workload,
)

CATEGORIES = ("baseball", "football", "cooking", "finance", "travel")


def make_visitors(n: int = 30_000, seed: int = 5) -> list[dict]:
    """Synthetic site visitors; interests correlate with profile columns."""
    rng = np.random.default_rng(seed)
    priors = np.array([0.04, 0.06, 0.25, 0.30, 0.35])
    rows = []
    for _ in range(n):
        interest = CATEGORIES[int(rng.choice(len(CATEGORIES), p=priors))]
        age = {
            "baseball": rng.normal(24, 5),
            "football": rng.normal(30, 6),
            "cooking": rng.normal(46, 12),
            "finance": rng.normal(52, 10),
            "travel": rng.normal(40, 14),
        }[interest]
        pages = {
            "baseball": rng.gamma(9.0, 4.0),
            "football": rng.gamma(8.0, 4.0),
            "cooking": rng.gamma(3.0, 4.0),
            "finance": rng.gamma(2.0, 4.0),
            "travel": rng.gamma(4.0, 4.0),
        }[interest]
        rows.append(
            {
                "age": int(np.clip(age, 13, 90)),
                "pages_per_visit": float(np.round(np.clip(pages, 1, 99), 1)),
                "referrer": str(
                    rng.choice(["search", "social", "direct", "email"])
                ),
                "days_since_visit": int(rng.integers(0, 30)),
                "interest": interest,
            }
        )
    return rows


def main() -> None:
    rows = make_visitors()
    features = ("age", "pages_per_visit", "referrer")

    model = NaiveBayesLearner(
        features, "interest", bins=8, name="interest_model"
    ).fit(rows)
    catalog = ModelCatalog()
    catalog.register(model)

    table_rows = [
        {c: r[c] for c in features + ("days_since_visit",)} for r in rows
    ]
    db = Database()
    load_table(db, "visitors", table_rows)
    tune_for_workload(
        db,
        "visitors",
        [catalog.envelope("interest_model", c).predicate for c in CATEGORIES],
    )
    executor = PredictionJoinExecutor(db, catalog)

    visited_last_week = Comparison("days_since_visit", Op.LE, 7)

    print("=== atomic mining predicate: interest = 'baseball' ===")
    query = MiningQuery(
        "visitors",
        relational_predicate=visited_last_week,
        mining_predicates=(
            PredictionEquals("interest_model", "baseball"),
        ),
    )
    naive = executor.execute_naive(query)
    optimized = executor.execute_optimized(query)
    print(f"  naive:     fetched {naive.rows_fetched:>6} rows  "
          f"{naive.total_seconds * 1000:7.1f} ms  ({naive.plan.access_path.value})")
    print(f"  optimized: fetched {optimized.rows_fetched:>6} rows  "
          f"{optimized.total_seconds * 1000:7.1f} ms  "
          f"({optimized.plan.access_path.value})")
    print(f"  campaign recipients: {optimized.rows_returned}")
    assert optimized.rows_returned == naive.rows_returned

    print("\n=== IN mining predicate: interest IN ('baseball','football') ===")
    query = MiningQuery(
        "visitors",
        relational_predicate=visited_last_week,
        mining_predicates=(
            PredictionIn("interest_model", ("baseball", "football")),
        ),
    )
    naive = executor.execute_naive(query)
    optimized = executor.execute_optimized(query)
    print(f"  naive:     fetched {naive.rows_fetched:>6} rows  "
          f"{naive.total_seconds * 1000:7.1f} ms")
    print(f"  optimized: fetched {optimized.rows_fetched:>6} rows  "
          f"{optimized.total_seconds * 1000:7.1f} ms  "
          f"({optimized.plan.access_path.value})")
    print(f"  campaign recipients: {optimized.rows_returned}")
    assert optimized.rows_returned == naive.rows_returned

    envelope = catalog.envelope("interest_model", "baseball")
    print(f"\nbaseball envelope: {envelope.n_disjuncts} disjuncts, "
          f"{envelope.n_atoms} atoms, exact={envelope.exact}")
    db.close()


if __name__ == "__main__":
    main()
