"""Reproduction of *Efficient Evaluation of Queries with Mining Predicates*
(Chaudhuri, Narasayya, Sarawagi — ICDE 2002).

The library derives **upper envelopes** — ordinary AND/OR predicates over
data columns — from the internal structure of mining models (decision
trees, rule sets, naive Bayes, and clustering), and uses them to rewrite
queries with mining predicates so a relational engine can pick indexed
access paths.

Quickstart::

    from repro import (
        DecisionTreeLearner, ModelCatalog, MiningQuery, PredictionEquals,
        Database, load_table, PredictionJoinExecutor,
    )

    tree = DecisionTreeLearner(features, "risk").fit(rows)
    catalog = ModelCatalog()
    catalog.register(tree)

    db = Database()
    load_table(db, "customers", rows)

    query = MiningQuery(
        "customers", mining_predicates=(PredictionEquals(tree.name, "low"),)
    )
    report = PredictionJoinExecutor(db, catalog).execute(query)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from repro.core import (
    FALSE,
    TRUE,
    And,
    AttributeSpace,
    BinnedDimension,
    CategoricalDimension,
    Comparison,
    Dimension,
    EnvelopeResult,
    InSet,
    Interval,
    Not,
    Op,
    Or,
    OrdinalDimension,
    Predicate,
    Region,
    RegionBounds,
    RegionStatus,
    ScoreTable,
    Value,
    allowed_values,
    conjunction,
    cover_cells,
    derive_all_envelopes,
    derive_envelope,
    disjunction,
    enumerate_envelope,
    enumerate_envelope_for_table,
    equals,
    in_set,
    merge_regions,
    regions_to_predicate,
    simplify,
    to_dnf,
    to_nnf,
)
from repro.core.catalog import CatalogEntry, ModelCatalog
from repro.core.cluster_envelope import (
    clustering_envelopes,
    clustering_space,
    density_envelopes,
    gmm_score_table,
    kmeans_score_table,
)
from repro.core.derive import (
    derive_envelopes,
    naive_bayes_envelopes,
    score_table_from_naive_bayes,
)
from repro.core.envelope import UpperEnvelope
from repro.core.optimizer import (
    DEFAULT_MAX_DISJUNCTS,
    MiningQuery,
    OptimizedQuery,
    execute_reference,
    optimize,
)
from repro.core.regression_envelope import (
    PredictionBetween,
    register_regression_model,
    regression_range_envelope,
)
from repro.core.rewrite import (
    MiningPredicate,
    PredictionEquals,
    PredictionIn,
    PredictionJoinColumn,
    PredictionJoinPrediction,
)
from repro.core.rule_envelope import rule_envelope, rule_envelopes
from repro.core.tree_envelope import tree_envelope, tree_envelopes
from repro.ir import (
    PassPipeline,
    PredicateTransformer,
    PredicateVisitor,
    default_pipeline,
    fingerprint,
    intern,
    intern_stats,
    simplify_pipeline,
)
from repro.data import (
    DATASETS,
    Dataset,
    DatasetSpec,
    dataset_spec,
    expand_rows,
    generate,
    generate_all,
)
from repro.mining.regression_tree import (
    RegressionTreeLearner,
    RegressionTreeModel,
)
from repro.mining import (
    AgglomerativeClusterLearner,
    FuzzyCMeansLearner,
    DecisionTreeLearner,
    DecisionTreeModel,
    DensityClusterLearner,
    DensityClusterModel,
    GaussianMixtureLearner,
    GaussianMixtureModel,
    KMeansLearner,
    KMeansModel,
    MiningModel,
    ModelKind,
    NaiveBayesLearner,
    NaiveBayesModel,
    RuleLearner,
    RuleSetModel,
    load_model,
    model_from_dict,
    naive_bayes_from_tables,
    save_model,
)
from repro.sql.dmx import parse_dmx
from repro.sql import (
    Database,
    PlanCache,
    ExecutionReport,
    Plan,
    PredictionJoinExecutor,
    TableSchema,
    baseline_full_scan,
    capture_plan,
    compile_predicate,
    load_table,
    select_statement,
    tune_for_workload,
)

__version__ = "1.1.0"

__all__ = [
    "AgglomerativeClusterLearner",
    "And",
    "AttributeSpace",
    "BinnedDimension",
    "CatalogEntry",
    "CategoricalDimension",
    "Comparison",
    "DATASETS",
    "DEFAULT_MAX_DISJUNCTS",
    "Database",
    "Dataset",
    "DatasetSpec",
    "DecisionTreeLearner",
    "DecisionTreeModel",
    "DensityClusterLearner",
    "DensityClusterModel",
    "Dimension",
    "EnvelopeResult",
    "ExecutionReport",
    "FALSE",
    "FuzzyCMeansLearner",
    "GaussianMixtureLearner",
    "GaussianMixtureModel",
    "InSet",
    "Interval",
    "KMeansLearner",
    "KMeansModel",
    "MiningModel",
    "MiningPredicate",
    "MiningQuery",
    "ModelCatalog",
    "ModelKind",
    "NaiveBayesLearner",
    "NaiveBayesModel",
    "Not",
    "Op",
    "OptimizedQuery",
    "Or",
    "OrdinalDimension",
    "PassPipeline",
    "Plan",
    "PlanCache",
    "PredictionBetween",
    "Predicate",
    "PredictionEquals",
    "PredictionIn",
    "PredictionJoinColumn",
    "PredictionJoinExecutor",
    "PredictionJoinPrediction",
    "PredicateTransformer",
    "PredicateVisitor",
    "Region",
    "RegressionTreeLearner",
    "RegressionTreeModel",
    "RegionBounds",
    "RegionStatus",
    "RuleLearner",
    "RuleSetModel",
    "ScoreTable",
    "TRUE",
    "TableSchema",
    "UpperEnvelope",
    "Value",
    "allowed_values",
    "baseline_full_scan",
    "capture_plan",
    "clustering_envelopes",
    "clustering_space",
    "compile_predicate",
    "conjunction",
    "cover_cells",
    "dataset_spec",
    "default_pipeline",
    "density_envelopes",
    "derive_all_envelopes",
    "derive_envelope",
    "derive_envelopes",
    "disjunction",
    "enumerate_envelope",
    "enumerate_envelope_for_table",
    "equals",
    "execute_reference",
    "expand_rows",
    "fingerprint",
    "generate",
    "generate_all",
    "gmm_score_table",
    "in_set",
    "intern",
    "intern_stats",
    "kmeans_score_table",
    "load_model",
    "load_table",
    "merge_regions",
    "model_from_dict",
    "naive_bayes_envelopes",
    "naive_bayes_from_tables",
    "optimize",
    "parse_dmx",
    "regions_to_predicate",
    "register_regression_model",
    "regression_range_envelope",
    "rule_envelope",
    "rule_envelopes",
    "save_model",
    "score_table_from_naive_bayes",
    "select_statement",
    "simplify",
    "simplify_pipeline",
    "to_dnf",
    "to_nnf",
    "tree_envelope",
    "tree_envelopes",
    "tune_for_workload",
]
