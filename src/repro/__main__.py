"""Command-line entry point: run the paper's experiments.

Usage::

    python -m repro tables              # Table 2 + the two §5.2.1 tables
    python -m repro figures             # Figures 3-7 series
    python -m repro overhead            # §5(iii) overheads
    python -m repro ablations           # A1-A3 ablations
    python -m repro all                 # everything above
    python -m repro tables --scale smoke|default|paper
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.config import (
    DEFAULT_CONFIG,
    PAPER_SCALE,
    SMOKE_CONFIG,
    ExperimentConfig,
)

_SCALES: dict[str, ExperimentConfig] = {
    "smoke": SMOKE_CONFIG,
    "default": DEFAULT_CONFIG,
    "paper": PAPER_SCALE,
}


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and run the selected experiment group."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument(
        "artifact",
        choices=(
            "tables",
            "figures",
            "overhead",
            "ablations",
            "report",
            "all",
        ),
        help="which experiment group to run",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default="default",
        help="experiment scale (default: default)",
    )
    arguments = parser.parse_args(argv)
    config = _SCALES[arguments.scale]

    if arguments.artifact in ("tables", "all"):
        from repro.experiments import tables

        tables.print_table2(config)
        print()
        tables.print_summary_tables(config)
        print()
    if arguments.artifact in ("figures", "all"):
        from repro.experiments import figures

        for figure in (3, 4, 5):
            figures.print_figure_plan_change(figure, config)
            print()
        figures.print_figure6(config)
        print()
        figures.print_figure7(config)
        print()
    if arguments.artifact in ("overhead", "all"):
        from repro.experiments import overhead

        overhead.print_overheads(config)
        print()
    if arguments.artifact in ("ablations", "all"):
        from repro.experiments import ablation

        ablation.print_ablations()
    if arguments.artifact == "report":
        from repro.experiments import report_doc

        target = report_doc.write_experiments_md(config=config)
        print(f"wrote {target}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
