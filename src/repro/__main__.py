"""Command-line entry point: run the paper's experiments.

Usage::

    python -m repro tables              # Table 2 + the two §5.2.1 tables
    python -m repro figures             # Figures 3-7 series
    python -m repro overhead            # §5(iii) overheads
    python -m repro ablations           # A1-A3 ablations
    python -m repro all                 # everything above
    python -m repro tables --scale smoke|default|paper
    python -m repro tables --jobs 4     # parallel sweep (or REPRO_JOBS=4)
    python -m repro run                 # one (dataset, family) lifecycle
    python -m repro sweep               # the full measurement sweep
    python -m repro bench-parallel      # serial-vs-parallel sweep timings
    python -m repro bench-vectorized    # scalar-vs-vectorized scoring
    python -m repro serve-bench --workers 4   # concurrent serving bench
    python -m repro serve-bench --transport tcp --processes 2
    python -m repro serve --port 7653 --duration 5   # TCP serving front-end
    python -m repro load-bench --arrivals poisson --transport inproc
    python -m repro load-bench --arrivals burst --rate 200 --trace DIR
    python -m repro segment-bench --segments 1000  # shared-mask matching
    python -m repro disjunction-bench   # cached vs naive OR evaluation
    python -m repro calibration-bench   # estimator feedback convergence
    python -m repro run --trace DIR     # write JSON-lines traces to DIR
    python -m repro trace-report --trace DIR   # summarize a trace dir
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.experiments.config import (
    DEFAULT_CONFIG,
    PAPER_SCALE,
    SMOKE_CONFIG,
    ExperimentConfig,
)

_SCALES: dict[str, ExperimentConfig] = {
    "smoke": SMOKE_CONFIG,
    "default": DEFAULT_CONFIG,
    "paper": PAPER_SCALE,
}


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and run the selected experiment group."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument(
        "artifact",
        choices=(
            "tables",
            "figures",
            "overhead",
            "ablations",
            "report",
            "run",
            "sweep",
            "trace-report",
            "bench-parallel",
            "bench-vectorized",
            "serve-bench",
            "serve",
            "load-bench",
            "segment-bench",
            "disjunction-bench",
            "calibration-bench",
            "all",
        ),
        help="which experiment group to run",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default="default",
        help="experiment scale (default: default)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the measurement sweep "
        "(default: REPRO_JOBS, else 1; 0 = all cores)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=2048,
        metavar="N",
        help="rows per columnar batch for bench-vectorized (default: 2048)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        metavar="N",
        help="serve-bench: maximum service worker count (default: 4)",
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=400,
        metavar="N",
        help="serve-bench: requests per run (default: 400)",
    )
    parser.add_argument(
        "--transport",
        choices=("inproc", "socketpair", "tcp", "router", "all"),
        default="all",
        help="serve-bench: which transport adapters to replay the "
        "schedule through (default: all); load-bench: the transport "
        "for the determinism section ('all' means inproc; 'router' is "
        "load-bench only)",
    )
    parser.add_argument(
        "--arrivals",
        choices=("constant", "poisson", "burst", "ramp"),
        default="poisson",
        help="load-bench: arrival process shape (default: poisson)",
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=None,
        metavar="RPS",
        help="load-bench: offered overload rate in requests/second "
        "(default: auto-calibrated to 3x measured capacity)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="load-bench: per-request deadline "
        "(default: auto-calibrated from the serial probe)",
    )
    parser.add_argument(
        "--batch-window",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="serve: micro-batch accumulation window (default: 0 = "
        "dispatch immediately)",
    )
    parser.add_argument(
        "--result-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="serve/serve-bench/load-bench: cache identical results "
        "for this long (default: off)",
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=0,
        metavar="N",
        help="serve-bench: also run the multi-process router at "
        "1/2/N worker processes (default: 0 = skip the router)",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        metavar="HOST",
        help="serve: interface to bind (default: 127.0.0.1)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        metavar="N",
        help="serve: TCP port to bind (default: 0 = ephemeral)",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        metavar="SECONDS",
        help="serve: stop after this many seconds "
        "(default: run until interrupted)",
    )
    parser.add_argument(
        "--segments",
        type=int,
        default=1000,
        metavar="N",
        help="segment-bench: catalog size (default: 1000)",
    )
    parser.add_argument(
        "--rows",
        type=int,
        default=8192,
        metavar="N",
        help="segment-bench/disjunction-bench: rows streamed through "
        "evaluation (default: 8192)",
    )
    parser.add_argument(
        "--passes",
        type=int,
        default=4,
        metavar="N",
        help="calibration-bench: workload passes through the calibrated "
        "executor (default: 4)",
    )
    parser.add_argument(
        "--trace",
        metavar="DIR",
        default=None,
        help="write JSON-lines traces to DIR (for trace-report: the "
        "directory to summarize; default: REPRO_TRACE_DIR)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="trace-report: fail on malformed trace lines",
    )
    arguments = parser.parse_args(argv)
    config = _SCALES[arguments.scale]
    if arguments.artifact == "trace-report":
        return _trace_report(parser, arguments)
    if arguments.trace is not None:
        from repro import obs

        obs.configure(arguments.trace)
    if arguments.jobs is not None:
        from repro.experiments.config import set_default_jobs

        if arguments.jobs < 0:
            parser.error(f"--jobs must be >= 0, got {arguments.jobs}")
        jobs = arguments.jobs
        if jobs == 0:
            import os

            jobs = os.cpu_count() or 1
        set_default_jobs(jobs)

    if arguments.artifact in ("tables", "all"):
        from repro.experiments import tables

        tables.print_table2(config)
        print()
        tables.print_summary_tables(config)
        print()
    if arguments.artifact in ("figures", "all"):
        from repro.experiments import figures

        for figure in (3, 4, 5):
            figures.print_figure_plan_change(figure, config)
            print()
        figures.print_figure6(config)
        print()
        figures.print_figure7(config)
        print()
    if arguments.artifact in ("overhead", "all"):
        from repro.experiments import overhead

        overhead.print_overheads(config)
        print()
    if arguments.artifact in ("ablations", "all"):
        from repro.experiments import ablation

        ablation.print_ablations()
    if arguments.artifact == "report":
        from repro.experiments import report_doc

        target = report_doc.write_experiments_md(config=config)
        print(f"wrote {target}")
    if arguments.artifact == "run":
        _run_lifecycle(config)
    if arguments.artifact == "sweep":
        from repro.experiments import harness

        measurements = harness.run_all(config)
        changed = sum(1 for m in measurements if m.plan_changed)
        print(
            f"{len(measurements)} measurements across "
            f"{len(config.datasets)} datasets x "
            f"{len(config.families)} families "
            f"({changed} plan changes)"
        )
    if arguments.artifact == "bench-parallel":
        import os

        from repro.experiments.config import default_jobs
        from repro.experiments.parallel import benchmark_parallel_sweep

        parallel_jobs = default_jobs()
        if parallel_jobs <= 1:
            parallel_jobs = os.cpu_count() or 1
        report = benchmark_parallel_sweep(
            config,
            jobs=(1, parallel_jobs),
            scale=arguments.scale,
        )
        for run in report["runs"]:
            print(
                f"jobs={run['jobs']}: {run['seconds']:.2f}s "
                f"({run['measurements']} measurements, "
                f"speedup {run['speedup_vs_first']:.2f}x)"
            )
        print(
            "identical measurement sets: "
            f"{report['identical_measurements']}"
        )
        print("wrote BENCH_parallel_sweep.json")
    if arguments.artifact == "bench-vectorized":
        from repro.experiments.bench_vectorized import (
            benchmark_vectorized_scoring,
        )

        if arguments.batch_size < 1:
            parser.error(
                f"--batch-size must be >= 1, got {arguments.batch_size}"
            )
        report = benchmark_vectorized_scoring(
            config,
            scale=arguments.scale,
            batch_size=arguments.batch_size,
        )
        for entry in report["families"]:
            speedup = entry["speedup"]
            shown = f"{speedup:.2f}x" if speedup is not None else "n/a"
            print(
                f"{entry['family']}: scalar "
                f"{entry['scalar_model_seconds']:.3f}s, vectorized "
                f"{entry['vectorized_model_seconds']:.3f}s "
                f"(speedup {shown}, rows identical: "
                f"{entry['rows_identical']})"
            )
        overall = report["overall_speedup"]
        shown = f"{overall:.2f}x" if overall is not None else "n/a"
        print(
            f"overall speedup {shown}; all rows identical: "
            f"{report['all_rows_identical']}"
        )
        print("wrote BENCH_vectorized_scoring.json")
    if arguments.artifact == "serve-bench":
        import json

        from repro.serve.bench import run_serving_bench

        if arguments.workers < 1:
            parser.error(
                f"--workers must be >= 1, got {arguments.workers}"
            )
        if arguments.requests < 1:
            parser.error(
                f"--requests must be >= 1, got {arguments.requests}"
            )
        if arguments.processes < 0:
            parser.error(
                f"--processes must be >= 0, got {arguments.processes}"
            )
        if arguments.transport == "router":
            parser.error(
                "serve-bench: --transport router is load-bench only "
                "(use --processes N for the router matrix)"
            )
        worker_counts = tuple(
            sorted({1, 2, arguments.workers} - {0})
        )
        worker_counts = tuple(
            w for w in worker_counts if w <= arguments.workers
        )
        transports = (
            ("inproc", "socketpair", "tcp")
            if arguments.transport == "all"
            else (arguments.transport,)
        )
        report = run_serving_bench(
            config,
            workers=worker_counts,
            requests=arguments.requests,
            transports=transports,
            processes=arguments.processes,
            result_ttl=arguments.result_ttl,
        )
        serial = report["serial"]
        print(
            f"serial: {serial['seconds']:.2f}s "
            f"({serial['throughput_rps']:.1f} req/s, "
            f"p50 {serial['p50_ms']:.1f}ms)"
        )
        for run in report["runs"]:
            print(
                f"workers={run['workers']}: {run['seconds']:.2f}s "
                f"({run['throughput_rps']:.1f} req/s, "
                f"speedup {run['speedup_vs_serial']:.2f}x, "
                f"collapsed {run['collapsed']}, "
                f"coalesced {run['batch_coalesced']}, "
                f"identical: {run['identical_to_serial']})"
            )
        print(
            f"best speedup vs serial: "
            f"{report['best_speedup_vs_serial']:.2f}x"
        )
        for entry in report["transports"]:
            print(
                f"transport={entry['transport']}: "
                f"{entry['seconds']:.2f}s "
                f"({entry['throughput_rps']:.1f} req/s, "
                f"identical: {entry['identical_to_serial']})"
            )
        for entry in report["router"]:
            print(
                f"router processes={entry['processes']}: "
                f"{entry['seconds']:.2f}s "
                f"({entry['throughput_rps']:.1f} req/s, "
                f"identical: {entry['identical_to_serial']})"
            )
        if report["transport_matrix"]:
            identical = all(report["transport_matrix"].values())
            print(
                "transport matrix byte-identical: "
                f"{identical} ({', '.join(sorted(report['transport_matrix']))})"
            )
        with open("BENCH_serving.json", "w", encoding="utf-8") as stream:
            json.dump(report, stream, indent=2, sort_keys=True)
            stream.write("\n")
        print("wrote BENCH_serving.json")
    if arguments.artifact == "serve":
        if arguments.duration is not None and arguments.duration <= 0:
            parser.error(
                f"--duration must be > 0, got {arguments.duration}"
            )
        _serve_tcp(config, arguments)
    if arguments.artifact == "load-bench":
        import json

        from repro.load.bench import run_load_bench

        if arguments.workers < 1:
            parser.error(
                f"--workers must be >= 1, got {arguments.workers}"
            )
        if arguments.requests < 1:
            parser.error(
                f"--requests must be >= 1, got {arguments.requests}"
            )
        if arguments.rate is not None and arguments.rate <= 0:
            parser.error(f"--rate must be > 0, got {arguments.rate}")
        if arguments.deadline is not None and arguments.deadline <= 0:
            parser.error(
                f"--deadline must be > 0, got {arguments.deadline}"
            )
        transport = (
            "inproc"
            if arguments.transport == "all"
            else arguments.transport
        )
        report = run_load_bench(
            config,
            arrivals=arguments.arrivals,
            rate=arguments.rate,
            requests=arguments.requests,
            workers=arguments.workers,
            deadline=arguments.deadline,
            transport=transport,
            result_ttl=arguments.result_ttl,
        )
        calibration = report["calibration"]
        print(
            f"calibration: service mean "
            f"{calibration['service_mean_ms']:.2f}ms, capacity "
            f"{calibration['capacity_rps']:.0f} req/s, deadline "
            f"{calibration['deadline_ms']:.1f}ms"
        )
        determinism = report["determinism"]
        print(
            f"determinism[{determinism['transport']}] at "
            f"{determinism['rate_rps']:.0f} req/s: offsets identical "
            f"{determinism['offsets_identical']}, rows identical "
            f"{determinism['rows_identical']}"
        )
        overload = report["overload"]
        for policy in ("static", "adaptive"):
            row = overload[policy]
            print(
                f"overload[{policy}] at {overload['rate_rps']:.0f} "
                f"req/s: goodput {row['goodput']:.1f} req/s, p99 "
                f"{row['latency_ms']['p99']:.1f}ms, shed "
                f"{row['shed']}, queued timeouts "
                f"{row['queued_timeout']}, late {row['late']}"
            )
        passed = sorted(
            name for name, ok in overload["gates"].items() if ok
        )
        missed = sorted(
            name for name, ok in overload["gates"].items() if not ok
        )
        print("gates passed: " + (", ".join(passed) or "none"))
        if missed:
            print(
                "gates informational (bursty arrivals, not enforced): "
                + ", ".join(missed)
            )
        for entry in report["batch_window_frontier"]:
            print(
                f"batch window {entry['window_ms']:.1f}ms: goodput "
                f"{entry['goodput_rps']:.1f} req/s, p50 "
                f"{entry['p50_ms']:.1f}ms, p99 {entry['p99_ms']:.1f}ms, "
                f"coalesced {entry['batch_coalesced']}"
            )
        with open("BENCH_load.json", "w", encoding="utf-8") as stream:
            json.dump(report, stream, indent=2, sort_keys=True)
            stream.write("\n")
        print("wrote BENCH_load.json")
    if arguments.artifact == "segment-bench":
        import json

        from repro.segments.bench import run_segment_bench

        if arguments.segments < 1:
            parser.error(
                f"--segments must be >= 1, got {arguments.segments}"
            )
        if arguments.rows < 1:
            parser.error(f"--rows must be >= 1, got {arguments.rows}")
        report = run_segment_bench(
            config,
            segments=arguments.segments,
            rows=arguments.rows,
        )
        print(
            f"catalog: {report['segments']} segments "
            f"({report['model_segments']} model-backed, "
            f"{report['hand_written_segments']} hand-written), "
            f"{report['rows']} rows in {report['batches']} batches"
        )
        print(
            f"naive:  {report['naive']['seconds']:.2f}s "
            f"({report['naive']['rows_per_second']:.0f} rows/s)"
        )
        shared = report["shared"]
        print(
            f"shared: {shared['seconds']:.2f}s "
            f"({shared['rows_per_second']:.0f} rows/s, "
            f"{shared['masks_computed']} masks computed, "
            f"{shared['masks_shared']} shared, "
            f"share ratio {shared['share_ratio']:.2f})"
        )
        print(
            f"speedup {report['speedup']:.2f}x; memberships identical: "
            f"{report['memberships_identical']}"
        )
        target = "BENCH_segment_matching.json"
        with open(target, "w", encoding="utf-8") as stream:
            json.dump(report, stream, indent=2, sort_keys=True)
            stream.write("\n")
        print(f"wrote {target}")
    if arguments.artifact == "disjunction-bench":
        import json

        from repro.experiments.bench_disjunction import (
            run_disjunction_bench,
        )

        if arguments.rows < 1:
            parser.error(f"--rows must be >= 1, got {arguments.rows}")
        report = run_disjunction_bench(config, rows=arguments.rows)
        for envelope in report["envelopes"]:
            print(
                f"{envelope['family']}/{envelope['label']}: "
                f"{envelope['disjuncts']} disjuncts, "
                f"naive {envelope['naive_seconds']:.3f}s, "
                f"cached {envelope['cached_seconds']:.3f}s "
                f"({envelope['speedup']:.2f}x, share ratio "
                f"{envelope['share_ratio']:.2f})"
            )
        union = report["union_lowering"]
        print(
            f"union lowering: flat {union['flat_access_path']} -> "
            f"{union['branches']} branches {union['union_access_path']} "
            f"(rows identical: {union['rows_identical']})"
        )
        print(f"overall speedup {report['overall']['speedup']:.2f}x")
        target = "BENCH_disjunction.json"
        with open(target, "w", encoding="utf-8") as stream:
            json.dump(report, stream, indent=2, sort_keys=True)
            stream.write("\n")
        print(f"wrote {target}")
    if arguments.artifact == "calibration-bench":
        import json

        from repro.experiments.bench_calibration import (
            run_calibration_bench,
        )

        if arguments.passes < 2:
            parser.error(f"--passes must be >= 2, got {arguments.passes}")
        report = run_calibration_bench(config, passes=arguments.passes)
        for entry in report["pass_reports"]:
            error = entry["abs_error"]
            print(
                f"pass {entry['pass']}: |est-actual| "
                f"p50={error['p50']:.4f} p90={error['p90']:.4f} "
                f"max={error['max']:.4f} "
                f"(overlay hits {entry['overlay_hits']}/"
                f"{entry['overlay_lookups']}, "
                f"recalibrations {entry['recalibrations']})"
            )
        print(
            "error quantiles strictly shrunk: "
            f"{report['first_vs_last']['strictly_shrunk']}; rows identical "
            f"across passes: {report['rows_identical_across_passes']}, "
            f"vs uncalibrated: {report['rows_identical_to_uncalibrated']}"
        )
        target = "BENCH_calibration.json"
        with open(target, "w", encoding="utf-8") as stream:
            json.dump(report, stream, indent=2, sort_keys=True)
            stream.write("\n")
        print(f"wrote {target}")
    if arguments.trace is not None:
        from repro import obs

        obs.flush()
        print(f"traces written to {arguments.trace}")
    return 0


def _serve_tcp(
    config: ExperimentConfig, arguments: argparse.Namespace
) -> None:
    """Stand up the TCP serving front-end over trained smoke models.

    Trains and deploys the first dataset's decision-tree and naive-Bayes
    models, loads the table, and serves framed-protocol requests on
    ``--host``/``--port`` until ``--duration`` elapses (or forever).
    """
    import time

    from repro.experiments import harness
    from repro.serve.engine import ServeEngine
    from repro.serve.registry import ModelRegistry
    from repro.serve.transport import TCPServer
    from repro.workload.measurement import (
        FAMILY_DECISION_TREE,
        FAMILY_NAIVE_BAYES,
    )
    from repro.workload.runner import load_dataset

    name = config.datasets[0]
    dataset = harness.dataset_for(config, name)
    loaded = load_dataset(dataset, config.rows_target)
    registry = ModelRegistry(max_nodes=config.max_nodes)
    for family in (FAMILY_DECISION_TREE, FAMILY_NAIVE_BAYES):
        trained = harness.train_family(dataset, family, config)
        registry.register(trained.model, deploy=True)
    engine = ServeEngine(
        loaded.db,
        registry,
        workers=arguments.workers,
        selectivity_gate=config.selectivity_gate,
        batch_window=arguments.batch_window,
        result_ttl=arguments.result_ttl,
    )
    server = TCPServer(engine, host=arguments.host, port=arguments.port)
    host, port = server.address
    print(
        f"serving {dataset.name} ({loaded.rows_total} rows, models: "
        f"{', '.join(registry.deployed_names())}) on {host}:{port}"
    )
    try:
        if arguments.duration is not None:
            time.sleep(arguments.duration)
        else:  # pragma: no cover - interactive mode
            while True:
                time.sleep(3600)
    except KeyboardInterrupt:  # pragma: no cover - interactive mode
        pass
    finally:
        server.close()
        engine.shutdown()
        loaded.db.close()
        print("serve: shut down cleanly")


def _run_lifecycle(config: ExperimentConfig) -> None:
    """One full query lifecycle: train, derive, load, optimize, execute.

    Runs every class of the first (dataset, family) cell through both
    execution strategies — the smallest demo that exercises each phase
    the tracer instruments (derivation, optimization, plan capture,
    statistics, SQL fetch, residual model application).
    """
    from repro.core.catalog import ModelCatalog
    from repro.core.optimizer import MiningQuery
    from repro.core.rewrite import PredictionEquals
    from repro.experiments import harness
    from repro.sql.miningext import PredictionJoinExecutor
    from repro.sql.plancache import PlanCache
    from repro.workload.runner import load_dataset

    name, family = config.datasets[0], config.families[0]
    dataset = harness.dataset_for(config, name)
    trained = harness.train_family(dataset, family, config)
    loaded = load_dataset(dataset, config.rows_target)
    try:
        catalog = ModelCatalog()
        catalog.register(trained.model, envelopes=trained.envelopes)
        executor = PredictionJoinExecutor(
            loaded.db,
            catalog,
            selectivity_gate=config.selectivity_gate,
            plan_cache=PlanCache(),
        )
        for label in trained.model.class_labels:
            query = MiningQuery(
                loaded.table,
                mining_predicates=(
                    PredictionEquals(trained.model.name, label),
                ),
            )
            optimized = executor.execute_optimized(query)
            naive = executor.execute_naive(query)
            print(
                f"{name}/{family} class={label!r}: "
                f"{optimized.rows_returned}/{loaded.rows_total} rows, "
                f"path={optimized.plan.access_path.value}, "
                f"fetched {optimized.rows_fetched} "
                f"(naive {naive.rows_fetched}), optimized "
                f"{optimized.total_seconds:.4f}s vs naive "
                f"{naive.total_seconds:.4f}s"
            )
            if optimized.rows_returned != naive.rows_returned:
                raise SystemExit(
                    f"strategy mismatch for class {label!r}: "
                    f"{optimized.rows_returned} != {naive.rows_returned}"
                )
        print(
            f"{len(trained.model.class_labels)} queries executed; "
            "strategies agree"
        )
    finally:
        loaded.db.close()


def _trace_report(
    parser: argparse.ArgumentParser, arguments: argparse.Namespace
) -> int:
    """Summarize a trace directory; nonzero exit on malformed lines."""
    from repro import obs

    directory = arguments.trace or os.environ.get(obs.ENV_TRACE_DIR)
    if directory is None:
        parser.error("trace-report needs --trace DIR (or REPRO_TRACE_DIR)")
    try:
        summary = obs.summarize(directory, strict=arguments.strict)
    except obs.TraceError as error:
        print(f"trace-report: {error}", file=sys.stderr)
        return 1
    print(obs.format_report(summary))
    if summary.malformed:
        print(
            f"trace-report: {len(summary.malformed)} malformed line(s)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
