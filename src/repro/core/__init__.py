"""Core contribution: predicate algebra, regions, and envelope search.

Only the foundation modules — the ones with no dependency on
:mod:`repro.mining` — are re-exported here, so that mining models can import
the predicate/region algebra without creating an import cycle.  The complete
public API (including model-specific envelope derivation, the catalog, and
the optimizer) is re-exported at the top level: ``import repro``.
"""

from repro.core.covering import cover_cells
from repro.core.nb_bounds import RegionBounds, RegionStatus
from repro.core.nb_envelope import (
    DEFAULT_MAX_NODES,
    EnvelopeResult,
    derive_all_envelopes,
    derive_envelope,
    enumerate_envelope,
    enumerate_envelope_for_table,
)
from repro.core.normalize import allowed_values, simplify, to_dnf, to_nnf
from repro.core.predicates import (
    FALSE,
    TRUE,
    And,
    Comparison,
    InSet,
    Interval,
    Not,
    Op,
    Or,
    Predicate,
    Value,
    atom_count,
    conjunction,
    disjunct_count,
    disjunction,
    equals,
    in_set,
    negate,
)
from repro.core.regions import (
    AttributeSpace,
    BinnedDimension,
    CategoricalDimension,
    Dimension,
    OrdinalDimension,
    Region,
    coarsen_regions,
    merge_regions,
    regions_to_predicate,
)
from repro.core.score_model import ScoreTable

__all__ = [
    "And",
    "AttributeSpace",
    "BinnedDimension",
    "CategoricalDimension",
    "Comparison",
    "DEFAULT_MAX_NODES",
    "Dimension",
    "EnvelopeResult",
    "FALSE",
    "InSet",
    "Interval",
    "Not",
    "Op",
    "Or",
    "OrdinalDimension",
    "Predicate",
    "Region",
    "RegionBounds",
    "RegionStatus",
    "ScoreTable",
    "TRUE",
    "Value",
    "allowed_values",
    "atom_count",
    "coarsen_regions",
    "conjunction",
    "cover_cells",
    "derive_all_envelopes",
    "derive_envelope",
    "disjunct_count",
    "disjunction",
    "enumerate_envelope",
    "enumerate_envelope_for_table",
    "equals",
    "in_set",
    "merge_regions",
    "negate",
    "regions_to_predicate",
    "simplify",
    "to_dnf",
    "to_nnf",
]
