"""Catalog of models and their precomputed atomic envelopes.

Paper Section 4.2: "during training of the mining models, upper envelopes
for mining predicates of the form Model.Prediction_column = class_label have
to be precomputed ... Precomputation of such 'atomic' upper envelopes
reduces overhead during query optimization."  The catalog is that store:
models register together with their per-class envelopes; the optimizer looks
envelopes up by ``(model name, class label)`` at rewrite time.

The paper also notes correctness depends on model identity ("we need to
invalidate an execution plan ... in case it had exploited upper envelopes"
when the model changes): re-registering a model under an existing name bumps
a version counter and drops the stale envelopes.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.derive import derive_envelopes
from repro.core.envelope import UpperEnvelope
from repro.core.nb_envelope import DEFAULT_MAX_NODES
from repro.core.predicates import Value
from repro.exceptions import CatalogError
from repro.mining.base import MiningModel, Row


@dataclass
class CatalogEntry:
    """One registered model with its envelopes and version."""

    model: MiningModel
    envelopes: dict[Value, UpperEnvelope]
    version: int = 1
    derivation_seconds: float = 0.0


@dataclass
class ModelCatalog:
    """Registry mapping model names to models and atomic envelopes."""

    _entries: dict[str, CatalogEntry] = field(default_factory=dict)

    def register(
        self,
        model: MiningModel,
        rows: Sequence[Row] | None = None,
        max_nodes: int = DEFAULT_MAX_NODES,
        bins: int = 8,
        envelopes: dict[Value, UpperEnvelope] | None = None,
    ) -> CatalogEntry:
        """Register a model, deriving its atomic envelopes if not supplied.

        Re-registering under the same name replaces the entry and increments
        its version, signalling that plans built against the old envelopes
        are stale.
        """
        if envelopes is None:
            envelopes = derive_envelopes(
                model, rows=rows, max_nodes=max_nodes, bins=bins
            )
        derivation_seconds = sum(e.seconds for e in envelopes.values())
        version = 1
        existing = self._entries.get(model.name)
        if existing is not None:
            version = existing.version + 1
        entry = CatalogEntry(
            model=model,
            envelopes=dict(envelopes),
            version=version,
            derivation_seconds=derivation_seconds,
        )
        self._entries[model.name] = entry
        return entry

    def unregister(self, name: str) -> CatalogEntry:
        """Remove a model; later lookups raise :class:`CatalogError`.

        The serving registry uses this to *retire* a deployment.  Cached
        plans referencing the model become unusable by construction: the
        plan cache re-reads the catalog entry on every lookup, and a
        missing entry raises rather than replaying a stale plan.
        """
        try:
            return self._entries.pop(name)
        except KeyError:
            raise CatalogError(
                f"no model named {name!r} in the catalog; "
                f"registered: {self.model_names()}"
            ) from None

    def model(self, name: str) -> MiningModel:
        return self._entry(name).model

    def entry(self, name: str) -> CatalogEntry:
        return self._entry(name)

    def envelope(self, name: str, class_label: Value) -> UpperEnvelope:
        """Atomic envelope lookup — the step 2(b) lookup of Section 4.2."""
        entry = self._entry(name)
        try:
            return entry.envelopes[class_label]
        except KeyError:
            raise CatalogError(
                f"model {name!r} has no envelope for class {class_label!r}; "
                f"known labels: {sorted(entry.envelopes, key=str)}"
            ) from None

    def class_labels(self, name: str) -> tuple[Value, ...]:
        """Class labels of a model (the Section 4.1 label enumeration)."""
        return self._entry(name).model.class_labels

    def model_names(self) -> list[str]:
        return sorted(self._entries)

    def _entry(self, name: str) -> CatalogEntry:
        try:
            return self._entries[name]
        except KeyError:
            raise CatalogError(
                f"no model named {name!r} in the catalog; "
                f"registered: {self.model_names()}"
            ) from None
