"""Upper envelopes for clustering models (paper Section 3.3).

*Centroid-based* and *model-based* clustering are reduced to additive
per-dimension score tables (the naive-Bayes shape), so envelope derivation
reuses the top-down algorithm of :mod:`repro.core.nb_envelope`.  Because the
clustering attributes are continuous, each table entry is an *interval*: the
range a raw value inside the bin can contribute.  The resulting MUST-WIN /
MUST-LOSE decisions are therefore sound with respect to the model's
assignment of raw (undiscretized) points, not merely bin representatives.

*Boundary-based* clusters (grid-density) define their region explicitly, so
the envelope is an exact rectangle cover of the cluster's cells
(:func:`repro.core.covering.cover_cells`), as the paper prescribes.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

import numpy as np

from repro.core.covering import cover_cells
from repro.core.envelope import UpperEnvelope
from repro.core.nb_bounds import BoundsMode
from repro.core.nb_envelope import DEFAULT_MAX_NODES, derive_envelope
from repro.core.predicates import TRUE, Value
from repro.core.regions import AttributeSpace, BinnedDimension, regions_to_predicate
from repro.core.score_model import (
    ScoreTable,
    _squared_distance_range,
    quadratic_range,
)
from repro.exceptions import EnvelopeError
from repro.ir import intern
from repro.mining.base import Row
from repro.mining.density import NOISE_LABEL, DensityClusterModel
from repro.mining.discretize import BinningMethod, make_binned_dimension
from repro.mining.discretized_cluster import DiscretizedClusterModel
from repro.mining.gmm import GaussianMixtureModel
from repro.mining.kmeans import KMeansModel


def clustering_space(
    model: KMeansModel | GaussianMixtureModel,
    rows: Sequence[Row],
    bins: int = 8,
    method: BinningMethod = BinningMethod.EQUAL_FREQUENCY,
) -> AttributeSpace:
    """Discretize the model's feature columns into a binned space.

    The outer bins are left unbounded: a raw value beyond the training range
    still lands in an outer bin, and that bin's score interval (which then
    extends to ``-inf``) prevents the bin from ever being provably dropped.
    This keeps the derived envelopes sound for out-of-range values at the
    cost of never excluding the two outer bins of a dimension.
    """
    dims = []
    for column in model.feature_columns:
        values = [float(row[column]) for row in rows]
        dims.append(
            make_binned_dimension(column, values, bins, method=method, bounded=False)
        )
    return AttributeSpace(tuple(dims))


def _check_space(
    model: KMeansModel | GaussianMixtureModel, space: AttributeSpace
) -> None:
    names = tuple(d.name for d in space.dimensions)
    if names != model.feature_columns:
        raise EnvelopeError(
            f"space dimensions {names} do not match model features "
            f"{model.feature_columns}"
        )
    for dim in space.dimensions:
        if not isinstance(dim, BinnedDimension):
            raise EnvelopeError(
                f"clustering envelopes need binned dimensions; "
                f"{dim.name!r} is {type(dim).__name__}"
            )


def kmeans_score_table(
    model: KMeansModel, space: AttributeSpace
) -> ScoreTable:
    """Score table of a centroid model: ``score = -w_dk (x_d - c_dk)^2``.

    Maximizing the summed score is exactly minimizing the paper's weighted
    Euclidean distance; ties go to the lowest cluster index, matching
    :meth:`KMeansModel.assign`.

    Besides the per-bin score intervals, the table carries *exact* pairwise
    difference bounds: the per-dimension score difference between two
    clusters is a quadratic in the raw value, whose range over each bin is
    closed-form (:func:`~repro.core.score_model.quadratic_range`).  These
    are what let the envelope search prune regions even through unbounded
    outer bins.
    """
    _check_space(model, space)
    n_clusters = model.n_clusters
    lo: list[np.ndarray] = []
    hi: list[np.ndarray] = []
    diff_lo: list[np.ndarray] = []
    diff_hi: list[np.ndarray] = []
    for d, dim in enumerate(space.dimensions):
        assert isinstance(dim, BinnedDimension)
        lo_d = np.empty((n_clusters, dim.size))
        hi_d = np.empty((n_clusters, dim.size))
        diff_lo_d = np.zeros((n_clusters, n_clusters, dim.size))
        diff_hi_d = np.zeros((n_clusters, n_clusters, dim.size))
        for m in range(dim.size):
            low, high = dim.bounds(m)
            for k in range(n_clusters):
                center_k = float(model.centroids[k, d])
                weight_k = float(model.weights[k, d])
                d_min, d_max = _squared_distance_range(low, high, center_k)
                lo_d[k, m] = -weight_k * d_max
                hi_d[k, m] = -weight_k * d_min
                for j in range(n_clusters):
                    if j == k:
                        continue
                    center_j = float(model.centroids[j, d])
                    weight_j = float(model.weights[j, d])
                    # s_k - s_j = (w_j - w_k) x^2
                    #           + 2 (w_k c_k - w_j c_j) x
                    #           + (w_j c_j^2 - w_k c_k^2)
                    a = weight_j - weight_k
                    b = 2.0 * (weight_k * center_k - weight_j * center_j)
                    c = (
                        weight_j * center_j * center_j
                        - weight_k * center_k * center_k
                    )
                    d_lo, d_hi = quadratic_range(a, b, c, low, high)
                    diff_lo_d[k, j, m] = d_lo
                    diff_hi_d[k, j, m] = d_hi
        lo.append(lo_d)
        hi.append(hi_d)
        diff_lo.append(diff_lo_d)
        diff_hi.append(diff_hi_d)
    biases = np.zeros(n_clusters)
    return ScoreTable(
        space,
        model.class_labels,
        biases,
        lo,
        hi,
        diff_lo=diff_lo,
        diff_hi=diff_hi,
    )


def gmm_score_table(
    model: GaussianMixtureModel, space: AttributeSpace
) -> ScoreTable:
    """Score table of a diagonal Gaussian mixture.

    ``bias = log tau_k``; the per-bin score interval bounds
    ``log N(x; mu, var)`` over the bin (max where the bin is closest to the
    mean, min at the farthest endpoint, ``-inf`` for unbounded bins).
    """
    _check_space(model, space)
    n_components = model.n_components
    lo: list[np.ndarray] = []
    hi: list[np.ndarray] = []
    diff_lo: list[np.ndarray] = []
    diff_hi: list[np.ndarray] = []
    for d, dim in enumerate(space.dimensions):
        assert isinstance(dim, BinnedDimension)
        lo_d = np.empty((n_components, dim.size))
        hi_d = np.empty((n_components, dim.size))
        diff_lo_d = np.zeros((n_components, n_components, dim.size))
        diff_hi_d = np.zeros((n_components, n_components, dim.size))
        for m in range(dim.size):
            low, high = dim.bounds(m)
            for k in range(n_components):
                mean_k = float(model.means[k, d])
                variance_k = float(model.variances[k, d])
                d_min, d_max = _squared_distance_range(low, high, mean_k)
                norm_k = -0.5 * np.log(2.0 * np.pi * variance_k)
                u_k = 1.0 / (2.0 * variance_k)
                lo_d[k, m] = norm_k - d_max * u_k
                hi_d[k, m] = norm_k - d_min * u_k
                for j in range(n_components):
                    if j == k:
                        continue
                    mean_j = float(model.means[j, d])
                    variance_j = float(model.variances[j, d])
                    norm_j = -0.5 * np.log(2.0 * np.pi * variance_j)
                    u_j = 1.0 / (2.0 * variance_j)
                    # s_k - s_j = (u_j - u_k) x^2
                    #           + 2 (u_k mu_k - u_j mu_j) x
                    #           + (n_k - n_j + u_j mu_j^2 - u_k mu_k^2)
                    a = u_j - u_k
                    b = 2.0 * (u_k * mean_k - u_j * mean_j)
                    c = (
                        norm_k
                        - norm_j
                        + u_j * mean_j * mean_j
                        - u_k * mean_k * mean_k
                    )
                    d_lo, d_hi = quadratic_range(a, b, c, low, high)
                    diff_lo_d[k, j, m] = d_lo
                    diff_hi_d[k, j, m] = d_hi
        lo.append(lo_d)
        hi.append(hi_d)
        diff_lo.append(diff_lo_d)
        diff_hi.append(diff_hi_d)
    biases = np.log(model.mixing)
    return ScoreTable(
        space,
        model.class_labels,
        biases,
        lo,
        hi,
        diff_lo=diff_lo,
        diff_hi=diff_hi,
    )


def discretized_score_table(model: "DiscretizedClusterModel") -> ScoreTable:
    """Exact score table of a cluster model over discretized attributes.

    Each member contributes the score of its representative value — the
    paper's Section 3.3 reduction ("both distance based and model-based
    clusters can be expressed exactly as naive Bayes classifiers for the
    purposes of finding the upper envelopes"), valid because the deployed
    model (Analysis Server's DISCRETIZED columns) scores representatives.
    """
    base = model.base
    space = model.space
    n = len(base.class_labels)
    lo: list[np.ndarray] = []
    if isinstance(base, KMeansModel):
        biases = np.zeros(n)
    elif isinstance(base, GaussianMixtureModel):
        biases = np.log(base.mixing)
    else:
        raise EnvelopeError(
            f"unsupported base model {type(base).__name__}"
        )
    for d, dim in enumerate(space.dimensions):
        assert isinstance(dim, BinnedDimension)
        scores = np.empty((n, dim.size))
        for m in range(dim.size):
            value = dim.representative(m)
            for k in range(n):
                if isinstance(base, KMeansModel):
                    delta = value - float(base.centroids[k, d])
                    scores[k, m] = -float(base.weights[k, d]) * delta * delta
                else:
                    mean = float(base.means[k, d])
                    variance = float(base.variances[k, d])
                    scores[k, m] = -0.5 * (
                        np.log(2.0 * np.pi * variance)
                        + (value - mean) ** 2 / variance
                    )
        lo.append(scores)
    hi = [table.copy() for table in lo]
    return ScoreTable(space, base.class_labels, biases, lo, hi)


def discretized_cluster_envelopes(
    model: "DiscretizedClusterModel",
    max_nodes: int = DEFAULT_MAX_NODES,
) -> dict[Value, UpperEnvelope]:
    """Envelopes for a discretized cluster model (exact score reduction)."""
    table = discretized_score_table(model)
    envelopes: dict[Value, UpperEnvelope] = {}
    for label in model.class_labels:
        result = derive_envelope(
            table,
            label,
            max_nodes=max_nodes,
            bounds_mode=BoundsMode.PAIRWISE,
        )
        envelopes[label] = UpperEnvelope(
            model_name=model.name,
            model_kind=model.kind,
            class_label=label,
            predicate=result.predicate,
            exact=result.exact,
            seconds=result.seconds,
            derivation="top-down",
        )
    return envelopes


def clustering_envelopes(
    model: KMeansModel | GaussianMixtureModel,
    space: AttributeSpace | None = None,
    rows: Sequence[Row] | None = None,
    bins: int = 8,
    max_nodes: int = DEFAULT_MAX_NODES,
) -> dict[Value, UpperEnvelope]:
    """Envelopes for every cluster of a centroid/model-based model.

    Provide either an explicit binned ``space`` or training ``rows`` from
    which one is derived (``bins`` bins per feature).
    """
    if space is None:
        if rows is None:
            raise EnvelopeError(
                "clustering envelopes need either a space or training rows"
            )
        space = clustering_space(model, rows, bins=bins)
    if isinstance(model, KMeansModel):
        table = kmeans_score_table(model, space)
    elif isinstance(model, GaussianMixtureModel):
        table = gmm_score_table(model, space)
    else:
        raise EnvelopeError(
            f"unsupported clustering model {type(model).__name__}"
        )
    envelopes: dict[Value, UpperEnvelope] = {}
    for label in model.class_labels:
        result = derive_envelope(
            table,
            label,
            max_nodes=max_nodes,
            bounds_mode=BoundsMode.PAIRWISE,
        )
        envelopes[label] = UpperEnvelope(
            model_name=model.name,
            model_kind=model.kind,
            class_label=label,
            predicate=result.predicate,
            exact=result.exact,
            seconds=result.seconds,
            derivation="top-down",
        )
    return envelopes


#: Guard for enumerating the noise complement of a density model.
_NOISE_CELL_LIMIT = 250_000


def density_envelopes(
    model: DensityClusterModel,
    include_noise: bool = True,
) -> dict[Value, UpperEnvelope]:
    """Exact rectangle-cover envelopes for a boundary-based model.

    Each cluster's explicit cell set is covered exactly; the noise label's
    envelope covers the complement (falling back to TRUE if the complement
    is too large to enumerate — TRUE is always a sound envelope).
    """
    envelopes: dict[Value, UpperEnvelope] = {}
    for label in model.cluster_labels:
        started = time.perf_counter()
        cells = model.cells_for(label)
        regions = cover_cells(model.space, cells)
        predicate = intern(regions_to_predicate(regions, model.space))
        envelopes[label] = UpperEnvelope(
            model_name=model.name,
            model_kind=model.kind,
            class_label=label,
            predicate=predicate,
            exact=True,
            seconds=time.perf_counter() - started,
            derivation="rectangle-cover",
        )
    if include_noise:
        envelopes[NOISE_LABEL] = _noise_envelope(model)
    return envelopes


def _noise_envelope(model: DensityClusterModel) -> UpperEnvelope:
    started = time.perf_counter()
    clustered: set[tuple[int, ...]] = set()
    for cells in model.cluster_cells:
        clustered |= cells
    total = model.space.cell_count()
    if total > _NOISE_CELL_LIMIT:
        predicate = TRUE
        exact = False
    else:
        noise_cells = [
            cell
            for cell in model.space.iter_cells(limit=_NOISE_CELL_LIMIT)
            if cell not in clustered
        ]
        regions = cover_cells(model.space, noise_cells)
        predicate = intern(regions_to_predicate(regions, model.space))
        exact = True
    return UpperEnvelope(
        model_name=model.name,
        model_kind=model.kind,
        class_label=NOISE_LABEL,
        predicate=predicate,
        exact=exact,
        seconds=time.perf_counter() - started,
        derivation="rectangle-cover",
    )
