"""Columnar batch representation of fetched rows.

The paper's central cost observation is that *model application* dominates
mining-query execution, and our residual filter used to pay that cost
row-at-a-time in pure Python.  :class:`ColumnBatch` turns a sequence of
fetched rows into per-column NumPy arrays **once per batch**, so that

* the predicate algebra (:meth:`repro.core.predicates.Predicate.evaluate_batch`)
  can evaluate comparisons as whole-array operations producing boolean
  masks, and
* every model family's ``predict_batch`` can score all rows with matrix
  arithmetic instead of a Python loop.

Columns materialize lazily: only columns a predicate or model actually
touches are converted, and each is converted at most once per batch.  Two
views of a column exist — the *object* view (original Python values,
exact for equality tests and label joins) and the *numeric* view (a
``float64`` cast for ordered comparisons and distance math).  Row
identity is preserved throughout: filtering selects the original row
mappings, so a vectorized execution returns byte-identical rows to the
scalar path.

The numeric view is strict: a column holding a value that is neither
``int`` nor ``float`` (a string, a ``None``) refuses to cast with
:class:`~repro.exceptions.PredicateError`, mirroring the scalar
algebra's raise on ordered comparison against such values.  NumPy would
happily cast ``None`` to NaN, which silently *changes the answer* — a
NULL-bearing batch must fail exactly where a loop of scalar
``evaluate`` calls fails.  :meth:`matrix` keeps the lenient
``float()``-style cast the model kernels documented (numeric strings
convert), caching per column so predicate evaluation and model scoring
share one conversion per column per batch.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Mapping

import numpy as np

from repro.exceptions import PredicateError

#: A data row: column name -> value (matches :data:`repro.mining.base.Row`).
Row = Mapping[str, object]


class ColumnBatch:
    """A read-only columnar view over a sequence of rows.

    Construction is O(1): no column is touched until requested.  Use
    :meth:`take` to restrict the batch to a subset of rows — already
    materialized columns are sliced with NumPy fancy indexing rather than
    rebuilt, which is what makes short-circuit masking cheap.
    """

    __slots__ = (
        "_rows",
        "_objects",
        "_numeric_cache",
        "_lenient_cache",
        "_kinds",
    )

    def __init__(self, rows: Sequence[Row]) -> None:
        self._rows: Sequence[Row] = rows
        self._objects: dict[str, np.ndarray] = {}
        self._numeric_cache: dict[str, np.ndarray] = {}
        self._lenient_cache: dict[str, np.ndarray] = {}
        self._kinds: dict[str, str] = {}

    def __len__(self) -> int:
        return len(self._rows)

    def rows(self) -> Sequence[Row]:
        """The underlying row mappings, in batch order."""
        return self._rows

    def has_column(self, name: str) -> bool:
        """Whether the batch's rows carry ``name`` (vacuously true if empty)."""
        if not self._rows:
            return True
        return name in self._rows[0]

    def column(self, name: str) -> np.ndarray:
        """Object-dtype array of the raw column values.

        Raises :class:`~repro.exceptions.PredicateError` for a missing
        column, mirroring scalar :func:`repro.core.predicates._lookup`.
        """
        cached = self._objects.get(name)
        if cached is not None:
            return cached
        values = np.empty(len(self._rows), dtype=object)
        try:
            for i, row in enumerate(self._rows):
                values[i] = row[name]
        except KeyError:
            raise PredicateError(f"row has no column {name!r}") from None
        self._objects[name] = values
        return values

    def kind(self, name: str) -> str:
        """Value kind of a column: ``numeric``, ``string`` or ``mixed``.

        ``numeric`` means *every* value is an ``int`` or ``float`` (bools
        included — they are ints to the scalar algebra too); ``string``
        means every value is a ``str``.  A column holding anything else —
        a ``None``, a mix of strings and numbers — is ``mixed``, and any
        attempt to use it as one uniform type fails loudly.  An empty
        batch reports ``numeric`` (there is nothing to contradict it, and
        every mask over it is empty anyway).
        """
        kind = self._kinds.get(name)
        if kind is None:
            has_str = has_num = has_other = False
            for value in self.column(name):
                if isinstance(value, str):
                    has_str = True
                elif isinstance(value, (int, float)):
                    has_num = True
                else:
                    has_other = True
            if has_other or (has_str and has_num):
                kind = "mixed"
            elif has_str:
                kind = "string"
            else:
                kind = "numeric"
            self._kinds[name] = kind
        return kind

    def is_numeric(self, name: str) -> bool:
        """True when every value in the column is an ``int`` or ``float``."""
        return self.kind(name) == "numeric"

    def numeric(self, name: str) -> np.ndarray:
        """``float64`` view of a numeric column.

        Raises :class:`~repro.exceptions.PredicateError` when the column
        holds a string or a non-numeric value such as ``None`` — an
        ordered comparison against it would raise in the scalar algebra,
        and casting ``None`` to NaN would silently answer ``False``
        where the scalar path raises.
        """
        cached = self._numeric_cache.get(name)
        if cached is not None:
            return cached
        if not self.is_numeric(name):
            raise PredicateError(
                f"column {name!r} holds non-numeric values; "
                "cannot use it numerically"
            )
        converted = self.column(name).astype(np.float64)
        self._numeric_cache[name] = converted
        return converted

    def matrix(self, names: Sequence[str]) -> np.ndarray:
        """``(len(batch), len(names))`` float matrix of feature columns.

        Values are converted with ``float()`` semantics (the same cast the
        scalar ``predict`` implementations apply per row), so numeric
        strings convert and non-numeric ones raise.  Pure numeric columns
        share the :meth:`numeric` cache — one conversion per column per
        batch whether a column is touched by predicate evaluation, model
        scoring, or both; columns needing the lenient cast (numeric
        strings) are cached separately so repeated :meth:`matrix` calls
        never re-convert either way.
        """
        if not names:
            return np.zeros((len(self._rows), 0), dtype=float)
        stacked = np.empty((len(self._rows), len(names)), dtype=float)
        for j, name in enumerate(names):
            stacked[:, j] = self._feature_column(name)
        return stacked

    def _feature_column(self, name: str) -> np.ndarray:
        """One feature column as float64, cached (strict or lenient)."""
        if self.is_numeric(name):
            return self.numeric(name)
        cached = self._lenient_cache.get(name)
        if cached is not None:
            return cached
        converted = self.column(name).astype(np.float64)
        self._lenient_cache[name] = converted
        return converted

    def take(self, indices: np.ndarray) -> "ColumnBatch":
        """A sub-batch of the given row positions (in the given order).

        Materialized column caches carry over as NumPy slices, so
        narrowing an already-scored batch costs O(selected) per touched
        column instead of a rebuild.
        """
        rows = self._rows
        child = ColumnBatch([rows[i] for i in indices])
        child._objects = {
            name: values[indices] for name, values in self._objects.items()
        }
        child._numeric_cache = {
            name: values[indices]
            for name, values in self._numeric_cache.items()
        }
        child._lenient_cache = {
            name: values[indices]
            for name, values in self._lenient_cache.items()
        }
        # Pure kinds carry over; a subset of a mixed column may shed one of
        # its kinds, so "mixed" verdicts are recomputed on demand.
        child._kinds = {
            name: kind
            for name, kind in self._kinds.items()
            if kind != "mixed"
        }
        return child

    def select(self, mask: np.ndarray) -> list[Row]:
        """The original row mappings where ``mask`` is true."""
        rows = self._rows
        return [rows[i] for i in np.flatnonzero(mask)]
