"""Columnar batch representation of fetched rows.

The paper's central cost observation is that *model application* dominates
mining-query execution, and our residual filter used to pay that cost
row-at-a-time in pure Python.  :class:`ColumnBatch` turns a sequence of
fetched rows into per-column NumPy arrays **once per batch**, so that

* the predicate algebra (:meth:`repro.core.predicates.Predicate.evaluate_batch`)
  can evaluate comparisons as whole-array operations producing boolean
  masks, and
* every model family's ``predict_batch`` can score all rows with matrix
  arithmetic instead of a Python loop.

Columns materialize lazily: only columns a predicate or model actually
touches are converted, and each is converted at most once per batch.  Two
views of a column exist — the *object* view (original Python values,
exact for equality tests and label joins) and the *numeric* view (a
``float64`` cast for ordered comparisons and distance math).  Row
identity is preserved throughout: filtering selects the original row
mappings, so a vectorized execution returns byte-identical rows to the
scalar path.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Mapping

import numpy as np

from repro.exceptions import PredicateError

#: A data row: column name -> value (matches :data:`repro.mining.base.Row`).
Row = Mapping[str, object]


class ColumnBatch:
    """A read-only columnar view over a sequence of rows.

    Construction is O(1): no column is touched until requested.  Use
    :meth:`take` to restrict the batch to a subset of rows — already
    materialized columns are sliced with NumPy fancy indexing rather than
    rebuilt, which is what makes short-circuit masking cheap.
    """

    __slots__ = ("_rows", "_objects", "_numeric_cache", "_kinds")

    def __init__(self, rows: Sequence[Row]) -> None:
        self._rows: Sequence[Row] = rows
        self._objects: dict[str, np.ndarray] = {}
        self._numeric_cache: dict[str, np.ndarray] = {}
        self._kinds: dict[str, str] = {}

    def __len__(self) -> int:
        return len(self._rows)

    def rows(self) -> Sequence[Row]:
        """The underlying row mappings, in batch order."""
        return self._rows

    def has_column(self, name: str) -> bool:
        """Whether the batch's rows carry ``name`` (vacuously true if empty)."""
        if not self._rows:
            return True
        return name in self._rows[0]

    def column(self, name: str) -> np.ndarray:
        """Object-dtype array of the raw column values.

        Raises :class:`~repro.exceptions.PredicateError` for a missing
        column, mirroring scalar :func:`repro.core.predicates._lookup`.
        """
        cached = self._objects.get(name)
        if cached is not None:
            return cached
        values = np.empty(len(self._rows), dtype=object)
        try:
            for i, row in enumerate(self._rows):
                values[i] = row[name]
        except KeyError:
            raise PredicateError(f"row has no column {name!r}") from None
        self._objects[name] = values
        return values

    def kind(self, name: str) -> str:
        """Value kind of a column: ``numeric``, ``string`` or ``mixed``.

        An empty batch reports ``numeric`` (there is nothing to contradict
        it, and every mask over it is empty anyway).
        """
        kind = self._kinds.get(name)
        if kind is None:
            has_str = has_num = False
            for value in self.column(name):
                if isinstance(value, str):
                    has_str = True
                else:
                    has_num = True
            if has_str:
                kind = "mixed" if has_num else "string"
            else:
                kind = "numeric"
            self._kinds[name] = kind
        return kind

    def is_numeric(self, name: str) -> bool:
        """True when no value in the column is a string."""
        return self.kind(name) == "numeric"

    def numeric(self, name: str) -> np.ndarray:
        """``float64`` view of a numeric column.

        Raises :class:`~repro.exceptions.PredicateError` when the column
        holds strings — an ordered comparison against it would be a schema
        mismatch, exactly as in the scalar algebra.
        """
        cached = self._numeric_cache.get(name)
        if cached is not None:
            return cached
        if not self.is_numeric(name):
            raise PredicateError(
                f"column {name!r} holds strings; cannot use it numerically"
            )
        converted = self.column(name).astype(np.float64)
        self._numeric_cache[name] = converted
        return converted

    def matrix(self, names: Sequence[str]) -> np.ndarray:
        """``(len(batch), len(names))`` float matrix of feature columns.

        Values are converted with ``float()`` semantics (the same cast the
        scalar ``predict`` implementations apply per row), so numeric
        strings convert and non-numeric ones raise.
        """
        if not names:
            return np.zeros((len(self._rows), 0), dtype=float)
        stacked = np.empty((len(self._rows), len(names)), dtype=float)
        for j, name in enumerate(names):
            stacked[:, j] = self.column(name).astype(np.float64)
        return stacked

    def take(self, indices: np.ndarray) -> "ColumnBatch":
        """A sub-batch of the given row positions (in the given order).

        Materialized column caches carry over as NumPy slices, so
        narrowing an already-scored batch costs O(selected) per touched
        column instead of a rebuild.
        """
        rows = self._rows
        child = ColumnBatch([rows[i] for i in indices])
        child._objects = {
            name: values[indices] for name, values in self._objects.items()
        }
        child._numeric_cache = {
            name: values[indices]
            for name, values in self._numeric_cache.items()
        }
        # Pure kinds carry over; a subset of a mixed column may shed one of
        # its kinds, so "mixed" verdicts are recomputed on demand.
        child._kinds = {
            name: kind
            for name, kind in self._kinds.items()
            if kind != "mixed"
        }
        return child

    def select(self, mask: np.ndarray) -> list[Row]:
        """The original row mappings where ``mask`` is true."""
        rows = self._rows
        return [rows[i] for i in np.flatnonzero(mask)]
