"""Greedy hyper-rectangle covering of explicit cell sets.

Two places in the paper need to cover an explicitly enumerated point set
with few axis-aligned rectangles:

* the *naive* envelope algorithm (Section 3.2.2) — enumerate the class of
  every member combination, then cover the winning cells "using any of the
  known multidimensional covering algorithms",
* *boundary-based clusters* (Section 3.3) — the cluster's region boundary is
  explicit, and "deriving upper envelopes is equivalent to covering a
  geometric region with a small number of rectangles".

We implement the classical greedy grow heuristic: pick an uncovered cell,
expand it along each dimension while every cell inside the grown box belongs
to the target set, emit the box, repeat.  The result is a set of rectangles
whose union is *exactly* the input cell set (an exact cover, hence also a
valid — and tight — upper envelope).
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Sequence

from repro.core.regions import AttributeSpace, Region, merge_regions
from repro.exceptions import RegionError


def cover_cells(
    space: AttributeSpace,
    cells: Iterable[tuple[int, ...]],
    merge: bool = True,
) -> list[Region]:
    """Cover ``cells`` exactly with greedy axis-aligned regions.

    ``cells`` are grid points (one member index per dimension of ``space``).
    Returns regions whose union equals the input set exactly (regions may
    overlap, which is harmless for an upper envelope); with ``merge`` a
    final pairwise-merge pass is applied (see
    :func:`repro.core.regions.merge_regions`).
    """
    remaining = set(cells)
    for cell in remaining:
        if len(cell) != space.n_dims:
            raise RegionError(
                f"cell {cell} has wrong dimensionality for the space"
            )
    target = frozenset(remaining)
    covered: list[Region] = []
    while remaining:
        seed = min(remaining)
        box = _grow(space, seed, target, remaining)
        covered.append(box)
        remaining.difference_update(box.iter_cells())
    if merge:
        covered = merge_regions(covered)
    return covered


def _grow(
    space: AttributeSpace,
    seed: tuple[int, ...],
    target: frozenset[tuple[int, ...]],
    remaining: set[tuple[int, ...]],
) -> Region:
    """Grow a box from ``seed`` greedily along each dimension in turn.

    Growth along a dimension adds one adjacent member (for ordered
    dimensions, only members adjacent to the current run; for unordered
    dimensions, any member) provided every new cell lies in ``target``.
    Preference is given to extensions that consume not-yet-covered cells.
    """
    members: list[list[int]] = [[m] for m in seed]
    progress = True
    while progress:
        progress = False
        for axis, dim in enumerate(space.dimensions):
            for candidate in _extension_candidates(dim.size, members[axis], dim.ordered):
                new_cells = list(_slice_cells(members, axis, candidate))
                if all(cell in target for cell in new_cells):
                    # Only extend when the slice adds at least one uncovered
                    # cell; otherwise growth just duplicates earlier boxes.
                    if any(cell in remaining for cell in new_cells):
                        members[axis].append(candidate)
                        members[axis].sort()
                        progress = True
    return Region(tuple(tuple(m) for m in members))


def _extension_candidates(
    size: int, current: Sequence[int], ordered: bool
) -> list[int]:
    present = set(current)
    if ordered:
        candidates = []
        low, high = current[0], current[-1]
        if low > 0:
            candidates.append(low - 1)
        if high < size - 1:
            candidates.append(high + 1)
        return [c for c in candidates if c not in present]
    return [m for m in range(size) if m not in present]


def _slice_cells(
    members: Sequence[Sequence[int]], axis: int, new_member: int
) -> Iterable[tuple[int, ...]]:
    """Cells added by extending dimension ``axis`` with ``new_member``."""
    ranges = [
        [new_member] if i == axis else list(dim_members)
        for i, dim_members in enumerate(members)
    ]
    return itertools.product(*ranges)
