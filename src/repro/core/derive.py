"""Unified envelope derivation: one entry point for every model family.

``derive_envelopes(model, ...)`` dispatches to the model-specific algorithm
(Section 3.1 for trees and rules, Section 3.2 for naive Bayes, Section 3.3
for clustering) and returns the per-class atomic envelopes that the paper
precomputes at training time (Section 4.2).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro import obs
from repro.core.cluster_envelope import (
    clustering_envelopes,
    density_envelopes,
    discretized_cluster_envelopes,
)
from repro.core.envelope import UpperEnvelope
from repro.core.nb_bounds import BoundsMode
from repro.core.nb_envelope import DEFAULT_MAX_NODES, derive_envelope
from repro.core.predicates import Value, atom_count, disjunct_count
from repro.core.rule_envelope import rule_envelopes
from repro.core.score_model import ScoreTable
from repro.core.tree_envelope import tree_envelopes
from repro.exceptions import EnvelopeError
from repro.mining.base import MiningModel, Row
from repro.mining.decision_tree import DecisionTreeModel
from repro.mining.density import DensityClusterModel
from repro.mining.discretized_cluster import DiscretizedClusterModel
from repro.mining.gmm import GaussianMixtureModel
from repro.mining.kmeans import KMeansModel
from repro.mining.naive_bayes import NaiveBayesModel
from repro.mining.rules import RuleSetModel


def score_table_from_naive_bayes(model: NaiveBayesModel) -> ScoreTable:
    """Exact score table of a trained naive Bayes model."""
    lo = [table.copy() for table in model.log_conditionals]
    hi = [table.copy() for table in model.log_conditionals]
    tie_ranks = [model.tie_rank(k) for k in range(model.n_classes)]
    return ScoreTable(
        model.space,
        model.class_labels,
        model.log_priors.copy(),
        lo,
        hi,
        tie_ranks=tie_ranks,
    )


def naive_bayes_envelopes(
    model: NaiveBayesModel,
    max_nodes: int = DEFAULT_MAX_NODES,
    bounds_mode: BoundsMode = BoundsMode.PAIRWISE,
) -> dict[Value, UpperEnvelope]:
    """Top-down envelopes (Algorithm 1) for every class of an NB model.

    ``bounds_mode`` defaults to the pairwise-difference bounds — the
    K-class generalization of the paper's Lemma 3.2, which is exact per
    opponent and markedly tighter on skewed multi-attribute models; pass
    ``BoundsMode.SEPARATE`` for the paper's original minProb/maxProb bounds
    (the A2 ablation benchmark compares the two).
    """
    table = score_table_from_naive_bayes(model)
    envelopes: dict[Value, UpperEnvelope] = {}
    for label in model.class_labels:
        result = derive_envelope(
            table,
            label,
            max_nodes=max_nodes,
            bounds_mode=bounds_mode,
        )
        envelopes[label] = UpperEnvelope(
            model_name=model.name,
            model_kind=model.kind,
            class_label=label,
            predicate=result.predicate,
            exact=result.exact,
            seconds=result.seconds,
            derivation="top-down",
        )
    return envelopes


def derive_envelopes(
    model: MiningModel,
    rows: Sequence[Row] | None = None,
    max_nodes: int = DEFAULT_MAX_NODES,
    bins: int = 8,
    tighten_rules: bool = False,
) -> dict[Value, UpperEnvelope]:
    """Per-class atomic upper envelopes for any supported model.

    ``rows`` (training data) are required only for centroid/model-based
    clustering, whose continuous features must be discretized to define the
    region grid; every other family derives straight from model content.
    """
    with obs.span(
        "derive.envelopes",
        model=model.name,
        family=model.kind.value,
        max_nodes=max_nodes,
    ) as sp:
        envelopes = _dispatch_derivation(
            model,
            rows=rows,
            max_nodes=max_nodes,
            bins=bins,
            tighten_rules=tighten_rules,
        )
        if obs.enabled():
            predicates = [e.predicate for e in envelopes.values()]
            sp.update(
                classes=len(envelopes),
                atoms_total=sum(atom_count(p) for p in predicates),
                clauses_total=sum(disjunct_count(p) for p in predicates),
                exact=sum(1 for e in envelopes.values() if e.exact),
                false_envelopes=sum(
                    1 for e in envelopes.values() if e.is_false
                ),
            )
        return envelopes


def _dispatch_derivation(
    model: MiningModel,
    rows: Sequence[Row] | None,
    max_nodes: int,
    bins: int,
    tighten_rules: bool,
) -> dict[Value, UpperEnvelope]:
    """Family dispatch for :func:`derive_envelopes`."""
    if isinstance(model, DecisionTreeModel):
        return tree_envelopes(model)
    if isinstance(model, RuleSetModel):
        return rule_envelopes(model, tighten=tighten_rules)
    if isinstance(model, NaiveBayesModel):
        return naive_bayes_envelopes(model, max_nodes=max_nodes)
    if isinstance(model, DiscretizedClusterModel):
        return discretized_cluster_envelopes(model, max_nodes=max_nodes)
    if isinstance(model, (KMeansModel, GaussianMixtureModel)):
        return clustering_envelopes(
            model, rows=rows, bins=bins, max_nodes=max_nodes
        )
    if isinstance(model, DensityClusterModel):
        return density_envelopes(model)
    raise EnvelopeError(
        f"no envelope derivation registered for {type(model).__name__}"
    )
