"""The :class:`UpperEnvelope` value object.

An upper envelope of class ``c`` under model ``M`` is a propositional
predicate ``M_c(x)`` over data columns such that ``predict(x) = c`` implies
``M_c(x)`` (paper Section 1).  This module defines the common result type
produced by every model-specific derivation in this package, independent of
whether the derivation went through path extraction (trees, rules) or
region refinement (naive Bayes, clustering).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.predicates import (
    FalsePredicate,
    Predicate,
    Value,
    atom_count,
    disjunct_count,
)
from repro.mining.base import ModelKind, Row


@dataclass(frozen=True)
class UpperEnvelope:
    """A derived upper envelope for one class of one model.

    * ``exact`` — whether the envelope accepts *only* rows predicted as the
      class (always true for decision trees, Section 3.1),
    * ``seconds`` — derivation wall-clock time (the Section 5 overhead
      experiment shows this is negligible next to training),
    * ``derivation`` — short tag of the algorithm used (``"tree-paths"``,
      ``"top-down"``, ``"enumeration"``, ``"rule-bodies"``,
      ``"rectangle-cover"``).
    """

    model_name: str
    model_kind: ModelKind
    class_label: Value
    predicate: Predicate
    exact: bool
    seconds: float
    derivation: str

    @property
    def is_false(self) -> bool:
        """True when the class is unreachable — the constant-scan case."""
        return isinstance(self.predicate, FalsePredicate)

    @property
    def n_disjuncts(self) -> int:
        """Top-level disjunct count (the paper's complexity concern)."""
        return disjunct_count(self.predicate)

    @property
    def n_atoms(self) -> int:
        """Total atom count of the predicate."""
        return atom_count(self.predicate)

    def admits(self, row: Row) -> bool:
        """Whether the envelope accepts ``row``."""
        return self.predicate.evaluate(row)
