"""Region probability bounds for the top-down envelope search.

Implements the ``minProb`` / ``maxProb`` machinery of paper Section 3.2.2 in
log space, plus a strictly tighter *pairwise-difference* variant that
generalizes the paper's Lemma 3.2 from two classes to any K.

**Separate bounds** (the paper's formulation): for a region ``r`` and class
``j``,

    minScore(j) = bias_j + sum_d  min over allowed members of lo_j(d, m)
    maxScore(j) = bias_j + sum_d  max over allowed members of hi_j(d, m)

* MUST_WIN  — ``minScore(k)`` beats ``maxScore(j)`` for every ``j != k``
  (Lemma 3.1: every cell in the region is predicted ``k``),
* MUST_LOSE — some ``j`` has ``minScore(j)`` beating ``maxScore(k)``,
* AMBIGUOUS — neither.

**Pairwise bounds**: for each opponent ``j`` bound the score *difference*

    maxDiff(k, j) = bias_k - bias_j + sum_d max over members of
                    (score_k - score_j)(d, m)

(and symmetrically minDiff).  Because a difference of additive scores is
itself additive, these per-opponent tests are exact given exact per-member
difference bounds — this is what Lemma 3.2 achieves for K=2 via the ratio
transform, extended to every pair.  Clustering adapters supply closed-form
per-bin difference bounds (quadratics in the raw value), which remain
informative even on unbounded outer bins where both absolute scores diverge.

Soundness under floating point: discarding a region that contains a winning
cell would break the upper-envelope contract, so the MUST_LOSE test demands
a margin (:data:`LOSE_MARGIN`).  A mistaken MUST_WIN or AMBIGUOUS outcome
only costs tightness, never correctness.

Tie handling follows Section 3.2.1: equal totals go to the class with the
better tie rank (higher prior for naive Bayes).
"""

from __future__ import annotations

import enum

import numpy as np

from repro.core.regions import Region
from repro.core.score_model import ScoreTable
from repro.exceptions import EnvelopeError

#: Conservative slack for the MUST_LOSE comparison (see module docstring).
LOSE_MARGIN = 1e-9


class RegionStatus(enum.Enum):
    """Three-way outcome of the bound tests for a region."""

    MUST_WIN = "must-win"
    MUST_LOSE = "must-lose"
    AMBIGUOUS = "ambiguous"


class BoundsMode(enum.Enum):
    """Which bound family drives the MUST-WIN / MUST-LOSE tests."""

    #: The paper's Section 3.2.2 minProb/maxProb bounds.
    SEPARATE = "separate"
    #: Per-opponent difference bounds (Lemma 3.2 generalized to K classes).
    PAIRWISE = "pairwise"


def _masked_sum(matrix: np.ndarray, exclude: int) -> np.ndarray:
    """Row sums of ``matrix`` with one column excluded (NaN/inf safe)."""
    return np.delete(matrix, exclude, axis=-1).sum(axis=-1)


class RegionBounds:
    """Per-class score bounds of one region, with per-dimension detail.

    Exposes the whole-region status and the member-conditional status used
    by the shrink step (the ``maxProb(c_j, d, m)`` bounds of the paper).
    """

    def __init__(
        self,
        table: ScoreTable,
        region: Region,
        target: int,
        mode: BoundsMode = BoundsMode.SEPARATE,
    ) -> None:
        if len(region.members) != table.space.n_dims:
            raise EnvelopeError(
                "region does not match the score table's space"
            )
        if not 0 <= target < table.n_classes:
            raise EnvelopeError(f"target class {target} out of range")
        self.table = table
        self.region = region
        self.target = target
        self.mode = mode
        n_classes = table.n_classes
        n_dims = table.space.n_dims
        self._indices = [
            np.asarray(members, dtype=int) for members in region.members
        ]
        if mode is BoundsMode.SEPARATE:
            #: Per-class, per-dimension extreme contributions.
            self.dim_min = np.empty((n_classes, n_dims))
            self.dim_max = np.empty((n_classes, n_dims))
            for d, index in enumerate(self._indices):
                self.dim_min[:, d] = table.lo[d][:, index].min(axis=1)
                self.dim_max[:, d] = table.hi[d][:, index].max(axis=1)
            self.min_score = table.biases + self.dim_min.sum(axis=1)
            self.max_score = table.biases + self.dim_max.sum(axis=1)
        else:
            #: Per-opponent, per-dimension extreme difference contributions
            #: of the target class: shape (K, n_dims).
            self.diff_dim_min = np.empty((n_classes, n_dims))
            self.diff_dim_max = np.empty((n_classes, n_dims))
            for d, index in enumerate(self._indices):
                diff_lo, diff_hi = table.diff_bounds(d)
                self.diff_dim_min[:, d] = (
                    diff_lo[target][:, index].min(axis=1)
                )
                self.diff_dim_max[:, d] = (
                    diff_hi[target][:, index].max(axis=1)
                )
            bias_diff = table.biases[target] - table.biases
            self.diff_min = bias_diff + self.diff_dim_min.sum(axis=1)
            self.diff_max = bias_diff + self.diff_dim_max.sum(axis=1)

    # -- whole-region tests -------------------------------------------------

    def status(self) -> RegionStatus:
        if self.mode is BoundsMode.SEPARATE:
            min_score = self.min_score
            max_score = self.max_score
            if self._must_lose_separate(min_score, max_score):
                return RegionStatus.MUST_LOSE
            if self._must_win_separate(min_score, max_score):
                return RegionStatus.MUST_WIN
            return RegionStatus.AMBIGUOUS
        if self._must_lose_pairwise(self.diff_max):
            return RegionStatus.MUST_LOSE
        if self._must_win_pairwise(self.diff_min):
            return RegionStatus.MUST_WIN
        return RegionStatus.AMBIGUOUS

    def _must_win_separate(
        self, min_score: np.ndarray, max_score: np.ndarray
    ) -> bool:
        ranks = self.table.tie_ranks
        target = self.target
        for j in range(self.table.n_classes):
            if j == target:
                continue
            if min_score[target] > max_score[j]:
                continue
            if (
                min_score[target] == max_score[j]
                and ranks[target] < ranks[j]
            ):
                continue
            return False
        return True

    def _must_lose_separate(
        self, min_score: np.ndarray, max_score: np.ndarray
    ) -> bool:
        ranks = self.table.tie_ranks
        target = self.target
        for j in range(self.table.n_classes):
            if j == target:
                continue
            if max_score[target] + LOSE_MARGIN < min_score[j]:
                return True
            if (
                max_score[target] == min_score[j]
                and ranks[j] < ranks[target]
            ):
                return True
        return False

    def _must_win_pairwise(self, diff_min: np.ndarray) -> bool:
        ranks = self.table.tie_ranks
        target = self.target
        for j in range(self.table.n_classes):
            if j == target:
                continue
            if diff_min[j] > 0.0:
                continue
            if diff_min[j] == 0.0 and ranks[target] < ranks[j]:
                continue
            return False
        return True

    def _must_lose_pairwise(self, diff_max: np.ndarray) -> bool:
        ranks = self.table.tie_ranks
        target = self.target
        for j in range(self.table.n_classes):
            if j == target:
                continue
            if diff_max[j] + LOSE_MARGIN < 0.0:
                return True
            if diff_max[j] == 0.0 and ranks[j] < ranks[target]:
                return True
        return False

    # -- member-conditional tests (shrink step) -----------------------------

    def member_must_lose(self, dim: int, member: int) -> bool:
        """MUST_LOSE test restricted to cells with ``x_dim = member``."""
        verdicts = self.members_must_lose(dim, np.array([member]))
        return bool(verdicts[0])

    def members_must_lose(
        self, dim: int, members: np.ndarray
    ) -> np.ndarray:
        """Vectorized MUST_LOSE verdicts for several members of one dim.

        Uses the revised bounds of the paper's Shrink step: the chosen
        dimension contributes exactly each member's bound; the remaining
        dimensions keep their regional extremes.  Exclusion sums are
        computed by dropping the dimension's column (never by subtraction),
        so infinite contributions cannot produce NaN.

        Returns a boolean array aligned with ``members``.
        """
        ranks = np.asarray(self.table.tie_ranks)
        target = self.target
        if self.mode is BoundsMode.SEPARATE:
            # Conditional scores: shape (K, len(members)).
            min_score = (
                self.table.biases[:, None]
                + _masked_sum(self.dim_min, dim)[:, None]
                + self.table.lo[dim][:, members]
            )
            max_score = (
                self.table.biases[:, None]
                + _masked_sum(self.dim_max, dim)[:, None]
                + self.table.hi[dim][:, members]
            )
            strict = max_score[target][None, :] + LOSE_MARGIN < min_score
            ties = (max_score[target][None, :] == min_score) & (
                ranks[:, None] < ranks[target]
            )
            lose = strict | ties
            lose[target, :] = False
            return lose.any(axis=0)
        diff_lo, diff_hi = self.table.diff_bounds(dim)
        bias_diff = self.table.biases[target] - self.table.biases
        diff_max = (
            bias_diff[:, None]
            + _masked_sum(self.diff_dim_max, dim)[:, None]
            + diff_hi[target][:, members]
        )
        strict = diff_max + LOSE_MARGIN < 0.0
        ties = (diff_max == 0.0) & (ranks[:, None] < ranks[target])
        lose = strict | ties
        lose[target, :] = False
        return lose.any(axis=0)


def classify_region(
    table: ScoreTable,
    region: Region,
    target: int,
    mode: BoundsMode = BoundsMode.SEPARATE,
) -> RegionStatus:
    """Convenience wrapper: the status of ``region`` for class ``target``."""
    return RegionBounds(table, region, target, mode=mode).status()


def shrink_region(
    table: ScoreTable,
    region: Region,
    target: int,
    mode: BoundsMode = BoundsMode.SEPARATE,
    max_passes: int = 3,
) -> Region | None:
    """The paper's Shrink step: drop members whose slice MUST-LOSEs.

    Unordered dimensions may lose any member; ordered dimensions only shed
    members from the two ends, preserving contiguity (Section 3.2.2).
    Returns the shrunk region, or ``None`` when every member of some
    dimension loses (the region holds no target-class cells).

    Removing a member tightens the regional extremes, so the scan repeats
    up to ``max_passes`` times or until a fixpoint.
    """
    current = region
    for _ in range(max_passes):
        bounds = RegionBounds(table, current, target, mode=mode)
        changed = False
        new_members: list[tuple[int, ...]] = []
        for d, dim in enumerate(table.space.dimensions):
            members = list(current.members[d])
            lose = bounds.members_must_lose(
                d, np.asarray(members, dtype=int)
            )
            if len(members) > 1:
                if dim.ordered:
                    lo = 0
                    hi = len(members)
                    while lo < hi and lose[lo]:
                        lo += 1
                    while hi > lo and lose[hi - 1]:
                        hi -= 1
                    if lo > 0 or hi < len(members):
                        changed = True
                    members = members[lo:hi]
                else:
                    kept = [
                        m
                        for m, lost in zip(members, lose)
                        if not lost
                    ]
                    if len(kept) != len(members):
                        changed = True
                    members = kept
            elif lose[0]:
                return None
            if not members:
                return None
            new_members.append(tuple(members))
        if not changed:
            return current
        current = Region(tuple(new_members))
    return current


def entropy_split(
    table: ScoreTable, region: Region, target: int
) -> tuple[int, list[int]] | None:
    """Pick the best binary split of ``region`` (paper's Split step).

    Candidate splits are every cut position of an ordered dimension and
    every one-vs-rest partition of an unordered dimension.  Each member
    ``m`` of dimension ``d`` receives a target mass and an other-class mass
    from the (bias-weighted) member scores; the split minimizing the
    mass-weighted binary entropy of target-vs-rest is chosen, mirroring the
    decision-tree split criterion the paper reuses "without explicit counts
    of each class ... relying on the probability values of the members".

    Returns ``(dimension index, left member list)`` or ``None`` when the
    region is a single cell and cannot be split.
    """
    best: tuple[float, int, list[int]] | None = None
    for d, dim in enumerate(table.space.dimensions):
        members = region.members[d]
        if len(members) < 2:
            continue
        index = np.asarray(members, dtype=int)
        # Mid-point scores keep the heuristic defined for interval tables;
        # infinities are clamped by the table's cached mid() accessor.
        mids = table.mid(d)[:, index]
        weighted = mids + table.biases[:, None]
        peak = weighted.max()
        mass = np.exp(weighted - peak)
        target_mass = mass[target]
        other_mass = mass.sum(axis=0) - target_mass
        if dim.ordered:
            # All prefix cuts at once via cumulative sums.
            t_left = np.cumsum(target_mass)[:-1]
            o_left = np.cumsum(other_mass)[:-1]
        else:
            # One-vs-rest splits: the "left" side is each single member.
            t_left = target_mass
            o_left = other_mass
        t_total = float(target_mass.sum())
        o_total = float(other_mass.sum())
        scores = _split_entropies(t_left, o_left, t_total, o_total)
        position = int(scores.argmin())
        score = float(scores[position])
        if best is None or score < best[0]:
            if dim.ordered:
                left = list(members[: position + 1])
            else:
                left = [members[position]]
            best = (score, d, left)
    if best is None:
        return None
    return best[1], best[2]


def _split_entropies(
    t_left: np.ndarray,
    o_left: np.ndarray,
    t_total: float,
    o_total: float,
) -> np.ndarray:
    """Weighted binary entropies for a batch of candidate splits."""
    total = t_total + o_total
    if total <= 0:
        return np.zeros(len(t_left))
    left = t_left + o_left
    right = total - left
    t_right = t_total - t_left
    scores = np.zeros(len(t_left))
    for side_total, side_target in ((left, t_left), (right, t_right)):
        with np.errstate(divide="ignore", invalid="ignore"):
            p = np.where(side_total > 0, side_target / side_total, 0.0)
            entropy = -(
                np.where(p > 0, p * np.log2(p), 0.0)
                + np.where(p < 1, (1 - p) * np.log2(1 - p), 0.0)
            )
        scores += np.where(side_total > 0, side_total / total, 0.0) * entropy
    return scores
