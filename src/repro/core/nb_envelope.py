"""Top-down upper-envelope derivation (paper Algorithm 1) and the naive
enumeration baseline it replaces.

:func:`derive_envelope` refines a tree of regions, classifying each against
the target class with the bounds of :mod:`repro.core.nb_bounds`:

* MUST_WIN regions become disjuncts of the envelope,
* MUST_LOSE regions are discarded,
* AMBIGUOUS regions are shrunk, then split along the entropy-selected
  dimension, until a node budget (the paper's *Threshold*) is exhausted;
  leftover ambiguous regions are *kept* — including them can only loosen the
  envelope, never break it.

:func:`enumerate_envelope` is the generic algorithm of Section 3.2.2's first
paragraph: predict the class of every member combination and cover the
winning cells with rectangles.  The paper reports it taking ">24 hours" on a
medium data set; it is retained as a correctness oracle for small spaces and
as the baseline of the enumeration ablation benchmark.
"""

from __future__ import annotations

import heapq
import itertools
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.core.covering import cover_cells
from repro.core.normalize import simplify
from repro.core.predicates import Predicate, Value, atom_count
from repro.core.regions import (
    AttributeSpace,
    Region,
    coarsen_regions,
    merge_regions,
    regions_to_predicate,
)
from repro.core.nb_bounds import (
    BoundsMode,
    RegionBounds,
    RegionStatus,
    entropy_split,
    shrink_region,
)
from repro.core.score_model import ScoreTable
from repro.exceptions import EnvelopeError
from repro.ir import intern

#: Default node-expansion budget (the paper's *Threshold* input).
DEFAULT_MAX_NODES = 512


@dataclass(frozen=True)
class EnvelopeResult:
    """Outcome of an envelope derivation.

    ``exact`` is True when no ambiguous region had to be kept, i.e. the
    envelope contains the target cells and nothing else; ``seconds`` is the
    wall-clock derivation time (the Section 5 overhead experiment).
    """

    class_label: Value
    regions: tuple[Region, ...]
    predicate: Predicate
    nodes_expanded: int
    ambiguous_kept: int
    exact: bool
    seconds: float

    @property
    def is_empty(self) -> bool:
        """True when the class is unreachable (envelope is FALSE).

        The optimizer answers such queries with a constant scan, never
        touching the data (paper Section 5.2.1, plan-change case (b)).
        """
        return not self.regions


def derive_envelope(
    table: ScoreTable,
    class_label: Value,
    max_nodes: int = DEFAULT_MAX_NODES,
    merge: bool = True,
    use_two_class_ratio: bool = True,
    shrink: bool = True,
    bounds_mode: BoundsMode = BoundsMode.SEPARATE,
    max_regions: int | None = 48,
    leaf_enumeration: int = 128,
    max_constrained_dims: int | None = 5,
) -> EnvelopeResult:
    """Derive the upper envelope of ``class_label`` (paper Algorithm 1).

    ``max_nodes`` bounds the number of split expansions; ``merge`` enables
    the bottom-up/non-sibling merge pass; ``use_two_class_ratio`` applies
    the Lemma 3.2 exact-bounds transform when the model has two classes;
    ``shrink`` can disable the Shrink step for ablation studies;
    ``bounds_mode`` selects the paper's separate minProb/maxProb bounds or
    the pairwise-difference generalization (the right choice for clustering
    tables, whose absolute score bounds are infinite on outer bins);
    ``max_regions`` caps the number of disjuncts by sound, mass-aware
    bounding-box coarsening (the Section 4.2 disjunct threshold) — ``None``
    disables it; ``leaf_enumeration`` resolves ambiguous regions of at most
    that many cells *exactly* by per-cell prediction and rectangle covering
    (a hybrid of the paper's two algorithms: top-down carving with the
    generic enumerate-and-cover at the leaves, where it is cheap);
    ``max_constrained_dims`` keeps only each region's most selective
    dimension constraints — dropping a conjunct can only widen a region, so
    this is the paper's "retain only a subset of relevant upper envelope
    for evaluation as filter conditions" (Section 4.2), trading a little
    tightness for far fewer predicate atoms.
    """
    if max_nodes < 0:
        raise EnvelopeError("max_nodes must be >= 0")
    started = time.perf_counter()
    target = table.class_index(class_label)
    search_table = table
    if (
        use_two_class_ratio
        and table.n_classes == 2
        and bounds_mode is BoundsMode.SEPARATE
        and not table.has_exact_diffs()
    ):
        search_table = table.two_class_ratio(target)

    wins: list[Region] = []
    kept: list[Region] = []
    # Highest-probability-mass-first frontier: under a node budget, the
    # regions left ambiguous at exhaustion are *included* in the envelope,
    # so the search should resolve the regions carrying the most data
    # first.  The mass estimate comes from the model's own distribution
    # (for naive Bayes, exactly the model's probability of the region), so
    # derivation still uses model content only, as the paper requires.
    counter = itertools.count()
    frontier: list[tuple[float, int, Region]] = []
    root = Region.full(table.space)
    heapq.heappush(
        frontier, (-_region_mass(table, root), next(counter), root)
    )
    expanded = 0

    while frontier:
        _, _, region = heapq.heappop(frontier)
        status = RegionBounds(
            search_table, region, target, mode=bounds_mode
        ).status()
        if status is RegionStatus.MUST_LOSE:
            continue
        if status is RegionStatus.MUST_WIN:
            wins.append(region)
            continue
        if shrink:
            shrunk = shrink_region(
                search_table, region, target, mode=bounds_mode
            )
            if shrunk is None:
                continue
            if shrunk is not region:
                status = RegionBounds(
                    search_table, shrunk, target, mode=bounds_mode
                ).status()
                if status is RegionStatus.MUST_LOSE:
                    continue
                if status is RegionStatus.MUST_WIN:
                    wins.append(shrunk)
                    continue
                region = shrunk
        if region.is_cell():
            # A single cell with exact scores resolves by direct prediction;
            # interval tables (clustering on bins) keep the ambiguous cell,
            # which is sound.
            if search_table.is_exact():
                if search_table.predict_cell(
                    tuple(m[0] for m in region.members)
                ) == target:
                    wins.append(region)
                continue
            kept.append(region)
            continue
        if (
            search_table.is_exact()
            and region.cell_count() <= leaf_enumeration
        ):
            # Small ambiguous region: resolve exactly by enumeration —
            # the generic algorithm applied where it is cheap.
            winning = [
                cell
                for cell in region.iter_cells()
                if search_table.predict_cell(cell) == target
            ]
            wins.extend(cover_cells(table.space, winning, merge=False))
            continue
        if expanded >= max_nodes:
            kept.append(region)
            continue
        split = entropy_split(search_table, region, target)
        if split is None:
            kept.append(region)
            continue
        dim, left_members = split
        left, right = region.split(dim, left_members)
        heapq.heappush(
            frontier, (-_region_mass(table, left), next(counter), left)
        )
        heapq.heappush(
            frontier, (-_region_mass(table, right), next(counter), right)
        )
        expanded += 1

    regions = wins + kept
    if merge:
        regions = merge_regions(regions)
    coarsened = False
    weights = _member_weights(table)
    if max_regions is not None and len(regions) > max_regions:
        regions = coarsen_regions(
            regions, max_regions, member_weights=weights
        )
        regions = merge_regions(regions)
        coarsened = True
    if max_constrained_dims is not None:
        pruned = [
            _prune_weak_dims(
                region, table.space, weights, max_constrained_dims
            )
            for region in regions
        ]
        if pruned != regions:
            coarsened = True
            regions = merge_regions(pruned)
    # Simplification folds redundant range atoms and hoists atoms common to
    # every disjunct, which is what lets the relational optimizer drive an
    # index from a shared selective condition (see normalize.simplify).
    # DNF normalization can also *expand* per-dimension member unions into
    # many conjuncts; the factored form is preferred (it is what enables
    # indexed plans) unless its evaluation cost blows up.
    raw = regions_to_predicate(regions, table.space)
    simplified = simplify(raw, max_terms=512)
    if atom_count(simplified) <= 2 * atom_count(raw) + 32:
        predicate = simplified
    else:
        predicate = raw
    predicate = intern(predicate)
    return EnvelopeResult(
        class_label=class_label,
        regions=tuple(regions),
        predicate=predicate,
        nodes_expanded=expanded,
        ambiguous_kept=len(kept),
        exact=not kept and not coarsened,
        seconds=time.perf_counter() - started,
    )


def derive_all_envelopes(
    table: ScoreTable,
    max_nodes: int = DEFAULT_MAX_NODES,
    merge: bool = True,
    use_two_class_ratio: bool = True,
    bounds_mode: BoundsMode = BoundsMode.SEPARATE,
) -> dict[Value, EnvelopeResult]:
    """Envelopes for every class — the training-time precomputation step."""
    return {
        label: derive_envelope(
            table,
            label,
            max_nodes=max_nodes,
            merge=merge,
            use_two_class_ratio=use_two_class_ratio,
            bounds_mode=bounds_mode,
        )
        for label in table.class_labels
    }


def _prune_weak_dims(
    region: Region,
    space: AttributeSpace,
    weights: list,
    max_constrained_dims: int,
) -> Region:
    """Keep only the region's ``max_constrained_dims`` strongest constraints.

    A constraint's strength is the model-mass fraction it excludes from its
    dimension; weak constraints (excluding little mass) cost predicate atoms
    without buying selectivity.  Dropping a conjunct widens the region, so
    the result remains a sound upper envelope.
    """
    import numpy as np

    strengths: list[tuple[float, int]] = []
    for d, members in enumerate(region.members):
        dim_size = space.dimensions[d].size
        if len(members) == dim_size:
            continue
        weight = weights[d]
        total = float(weight.sum())
        kept = float(weight[np.asarray(members, dtype=int)].sum())
        coverage = kept / total if total > 0 else 1.0
        strengths.append((coverage, d))
    if len(strengths) <= max_constrained_dims:
        return region
    strengths.sort()  # lowest coverage = strongest constraint first
    keep = {d for _, d in strengths[:max_constrained_dims]}
    members = tuple(
        region.members[d]
        if d in keep
        else tuple(range(space.dimensions[d].size))
        for d in range(space.n_dims)
    )
    return Region(members)


def _member_weights(table: ScoreTable) -> list:
    """Per-dimension marginal member masses under the model's mixture.

    Used by mass-aware coarsening: ``w_d[m] = sum_k exp(bias_k + s_k(d,m))``
    with mid-point scores for interval tables.
    """
    import numpy as np

    weights = []
    for d in range(table.space.n_dims):
        scaled = table.mid(d) + table.biases[:, None]
        peak = scaled.max()
        weights.append(np.exp(scaled - peak).sum(axis=0) + 1e-12)
    return weights


def _class_masses(table: ScoreTable, region: Region) -> "np.ndarray":
    """Per-class log mass of a region under the model.

    ``bias_k + sum_d log sum_{m in r_d} exp(score_k(d, m))`` — for naive
    Bayes exactly ``log Pr(region, c_k)``.  Mid-point scores keep it
    defined for interval tables.
    """
    import numpy as np

    totals = table.biases.copy()
    for d, members in enumerate(region.members):
        index = np.asarray(members, dtype=int)
        mids = table.mid(d)[:, index]
        peak = mids.max(axis=1)
        totals = totals + peak + np.log(
            np.exp(mids - peak[:, None]).sum(axis=1)
        )
    return totals


def _region_mass(table: ScoreTable, region: Region) -> float:
    """Estimated probability mass of a region under the model.

    The logsumexp over :func:`_class_masses` — for naive Bayes exactly the
    model's probability of the region; for clustering tables (bias 0,
    scores are negative distances) an unnormalized soft-mass heuristic
    with the same ordering role.
    """
    import numpy as np

    totals = _class_masses(table, region)
    peak = totals.max()
    return float(peak + np.log(np.exp(totals - peak).sum()))


#: Guard on full enumeration; above this the naive algorithm is refused,
#: which is exactly the paper's point about its exponential cost.
DEFAULT_ENUMERATION_LIMIT = 200_000


def enumerate_envelope(
    space: AttributeSpace,
    predict_cell: Callable[[tuple[int, ...]], int],
    target: int,
    class_label: Value,
    cell_limit: int = DEFAULT_ENUMERATION_LIMIT,
) -> EnvelopeResult:
    """The naive generic algorithm: enumerate cells, cover the winners.

    Applicable to *any* classifier over the grid (the paper notes this
    generality), and exact by construction.  ``cell_limit`` refuses spaces
    whose enumeration would be intractable.
    """
    started = time.perf_counter()
    winning = [
        cell for cell in space.iter_cells(limit=cell_limit)
        if predict_cell(cell) == target
    ]
    regions = cover_cells(space, winning)
    predicate = intern(regions_to_predicate(regions, space))
    return EnvelopeResult(
        class_label=class_label,
        regions=tuple(regions),
        predicate=predicate,
        nodes_expanded=len(winning),
        ambiguous_kept=0,
        exact=True,
        seconds=time.perf_counter() - started,
    )


def enumerate_envelope_for_table(
    table: ScoreTable,
    class_label: Value,
    cell_limit: int = DEFAULT_ENUMERATION_LIMIT,
) -> EnvelopeResult:
    """Enumeration baseline specialized to an exact score table."""
    if not table.is_exact():
        raise EnvelopeError(
            "enumeration needs exact cell scores; interval tables (binned "
            "clustering) have no single per-cell winner"
        )
    target = table.class_index(class_label)
    return enumerate_envelope(
        table.space, table.predict_cell, target, class_label, cell_limit
    )


def envelope_grid_selectivity(
    result: EnvelopeResult, space: AttributeSpace, cell_limit: int = 1_000_000
) -> float:
    """Fraction of grid cells covered by the envelope (a tightness proxy).

    Note this is *uniform over cells*; the Figure 7 experiment instead
    measures selectivity over actual data rows, which is what matters for
    access-path selection.
    """
    total = space.cell_count()
    if total > cell_limit:
        raise EnvelopeError(
            f"space has {total} cells, above the counting limit"
        )
    covered = 0
    for cell in space.iter_cells(limit=cell_limit):
        if any(region.contains(cell) for region in result.regions):
            covered += 1
    return covered / total


def predicate_for_labels(
    envelopes: dict[Value, EnvelopeResult], labels: Sequence[Value]
) -> Predicate:
    """OR of per-class envelopes — the IN-predicate composition (§4.1)."""
    from repro.core.predicates import disjunction

    missing = [label for label in labels if label not in envelopes]
    if missing:
        raise EnvelopeError(f"no envelopes for labels {missing}")
    return disjunction(envelopes[label].predicate for label in labels)
