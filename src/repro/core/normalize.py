"""Normalization and simplification of predicate expressions.

The optimization loop in the paper (Section 4.2, step 1 and step 3) applies
"traditional normalization and transitivity rules" before and after injecting
upper envelopes.  This module supplies those rules for the propositional
fragment of :mod:`repro.core.predicates`:

* :func:`to_nnf` — negation normal form (NOT pushed onto atoms),
* :func:`to_dnf` — disjunctive normal form with an explicit size budget, so a
  pathological envelope cannot blow up optimization (the paper thresholds
  envelope complexity for the same reason),
* :func:`simplify` — per-conjunct constraint solving (range intersection,
  IN-set intersection, contradiction detection) plus absorption between
  disjuncts,
* :func:`allowed_values` — the transitivity helper: the set of constants a
  column may take under a predicate, used to turn a prediction-to-data-column
  join plus a column restriction into an IN mining predicate (Section 4.1).

The simplification machinery is decomposed into named stages —
:func:`to_nnf`, :func:`dnf_of_nnf`, :func:`solve_dnf`, :func:`absorb`,
:func:`factor` — which :mod:`repro.ir.passes` registers as the
individually-traced passes of the standard pipeline; :func:`simplify`
is a thin wrapper that runs that pipeline (and therefore returns
interned nodes).

All rewrites are meaning-preserving; the property-based tests check them by
evaluating the input and output on random rows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.predicates import (
    FALSE,
    TRUE,
    And,
    Comparison,
    FalsePredicate,
    InSet,
    Interval,
    Not,
    Op,
    Or,
    Predicate,
    TruePredicate,
    Value,
    conjunction,
    disjunction,
    in_set,
)
from repro.exceptions import NormalizationError, PredicateError

#: Default ceiling on the number of conjuncts produced by DNF conversion.
DEFAULT_DNF_BUDGET = 10_000


def to_nnf(pred: Predicate) -> Predicate:
    """Rewrite ``pred`` so negations appear only directly on atoms.

    ``Not(Comparison)`` becomes the complementary comparison,
    ``Not(Interval)`` becomes a disjunction of the two outside ranges, and
    ``Not(InSet)`` is kept as a negative atom (``NOT IN`` is itself a simple
    selection predicate every SQL engine accepts).
    """
    if isinstance(pred, (TruePredicate, FalsePredicate)):
        return pred
    if pred.is_atom():
        return pred
    if isinstance(pred, And):
        return conjunction([to_nnf(o) for o in pred.operands])
    if isinstance(pred, Or):
        return disjunction([to_nnf(o) for o in pred.operands])
    if isinstance(pred, Not):
        return _nnf_negate(pred.operand)
    raise PredicateError(f"unknown predicate node {pred!r}")


def _nnf_negate(pred: Predicate) -> Predicate:
    """NNF of ``NOT pred``."""
    if isinstance(pred, TruePredicate):
        return FALSE
    if isinstance(pred, FalsePredicate):
        return TRUE
    if isinstance(pred, Comparison):
        return Comparison(pred.column, pred.op.negated, pred.value)
    if isinstance(pred, InSet):
        return Not(pred)
    if isinstance(pred, Interval):
        return _interval_complement(pred)
    if isinstance(pred, Not):
        return to_nnf(pred.operand)
    if isinstance(pred, And):
        return disjunction([_nnf_negate(o) for o in pred.operands])
    if isinstance(pred, Or):
        return conjunction([_nnf_negate(o) for o in pred.operands])
    raise PredicateError(f"unknown predicate node {pred!r}")


def _interval_complement(interval: Interval) -> Predicate:
    """The complement of an interval as a disjunction of comparisons."""
    parts: list[Predicate] = []
    if interval.low is not None:
        op = Op.LT if interval.low_closed else Op.LE
        parts.append(Comparison(interval.column, op, interval.low))
    if interval.high is not None:
        op = Op.GT if interval.high_closed else Op.GE
        parts.append(Comparison(interval.column, op, interval.high))
    return disjunction(parts)


# ---------------------------------------------------------------------------
# DNF conversion
# ---------------------------------------------------------------------------


def to_dnf(pred: Predicate, max_terms: int = DEFAULT_DNF_BUDGET) -> Predicate:
    """Convert ``pred`` to disjunctive normal form.

    The result is ``FALSE``, ``TRUE``, a single conjunct, or an ``Or`` of
    conjuncts where every conjunct is an atom or an ``And`` of atoms.

    Raises :class:`~repro.exceptions.NormalizationError` if the number of
    conjuncts would exceed ``max_terms``; callers that cannot tolerate the
    failure (e.g. the optimizer) catch it and keep the original predicate.
    """
    return dnf_of_nnf(to_nnf(pred), max_terms)


def dnf_of_nnf(
    pred: Predicate, max_terms: int = DEFAULT_DNF_BUDGET
) -> Predicate:
    """DNF of an already negation-normal predicate (the ``dnf`` pass).

    Same contract as :func:`to_dnf` minus the NNF step, so the pass
    pipeline can run (and trace) the two stages separately.
    """
    terms = _dnf_terms(pred, max_terms)
    if terms is None:
        return TRUE
    return disjunction([conjunction(term) for term in terms])


def _dnf_terms(
    pred: Predicate, max_terms: int
) -> list[tuple[Predicate, ...]] | None:
    """DNF of an NNF predicate as a list of atom tuples.

    ``None`` encodes TRUE (the disjunction containing the empty conjunct);
    an empty list encodes FALSE.
    """
    if isinstance(pred, TruePredicate):
        return None
    if isinstance(pred, FalsePredicate):
        return []
    if pred.is_atom() or isinstance(pred, Not):
        return [(pred,)]
    if isinstance(pred, Or):
        combined: list[tuple[Predicate, ...]] = []
        for operand in pred.operands:
            terms = _dnf_terms(operand, max_terms)
            if terms is None:
                return None
            combined.extend(terms)
            if len(combined) > max_terms:
                raise NormalizationError(
                    f"DNF exceeds {max_terms} conjuncts"
                )
        return combined
    if isinstance(pred, And):
        product: list[tuple[Predicate, ...]] = [()]
        for operand in pred.operands:
            terms = _dnf_terms(operand, max_terms)
            if terms is None:
                continue
            if not terms:
                return []
            if len(product) * len(terms) > max_terms:
                raise NormalizationError(
                    f"DNF exceeds {max_terms} conjuncts"
                )
            product = [
                existing + term for existing in product for term in terms
            ]
        return product
    raise PredicateError(f"unexpected node in NNF: {pred!r}")


# ---------------------------------------------------------------------------
# Per-conjunct constraint solving
# ---------------------------------------------------------------------------


@dataclass
class _ColumnConstraint:
    """Accumulated constraints on one column inside a conjunct."""

    allowed: set[Value] | None = None
    forbidden: set[Value] = field(default_factory=set)
    low: Value | None = None
    low_closed: bool = True
    high: Value | None = None
    high_closed: bool = True
    #: Set when constraints are mutually unsatisfiable.
    contradictory: bool = False

    def add_equals(self, value: Value) -> None:
        self.restrict_allowed({value})

    def restrict_allowed(self, values: set[Value]) -> None:
        if self.allowed is None:
            self.allowed = set(values)
        else:
            self.allowed &= values
        if not self.allowed:
            self.contradictory = True

    def add_forbidden(self, values: set[Value]) -> None:
        self.forbidden |= values

    def add_low(self, value: Value, closed: bool) -> None:
        if self.low is None or value > self.low or (
            value == self.low and not closed
        ):
            self.low = value
            self.low_closed = closed

    def add_high(self, value: Value, closed: bool) -> None:
        if self.high is None or value < self.high or (
            value == self.high and not closed
        ):
            self.high = value
            self.high_closed = closed

    def _value_in_range(self, value: Value) -> bool:
        try:
            if self.low is not None:
                if self.low_closed:
                    if value < self.low:
                        return False
                elif value <= self.low:
                    return False
            if self.high is not None:
                if self.high_closed:
                    if value > self.high:
                        return False
                elif value >= self.high:
                    return False
        except TypeError:
            # Mixed-type comparison (string value vs numeric bound): a value
            # of the wrong type cannot satisfy the range constraint.
            return False
        return True

    def finish(self) -> None:
        """Resolve interactions between the accumulated constraints."""
        if self.contradictory:
            return
        if self.allowed is not None:
            self.allowed = {
                v
                for v in self.allowed
                if v not in self.forbidden and self._value_in_range(v)
            }
            self.forbidden = set()
            self.low = self.high = None
            if not self.allowed:
                self.contradictory = True
            return
        if self.low is not None and self.high is not None:
            try:
                if self.low > self.high or (
                    self.low == self.high
                    and not (self.low_closed and self.high_closed)
                ):
                    self.contradictory = True
                    return
                if self.low == self.high:
                    # Range pinches to a single point: x = low.
                    self.allowed = {self.low}
                    self.finish()
                    return
            except TypeError:
                self.contradictory = True
                return
        # Forbidden values outside the range are vacuous.
        self.forbidden = {
            v for v in self.forbidden if self._value_in_range(v)
        }

    def atoms(self, column: str) -> list[Predicate]:
        """Minimal atom list expressing the resolved constraints."""
        if self.contradictory:
            return [FALSE]
        parts: list[Predicate] = []
        if self.allowed is not None:
            parts.append(in_set(column, self.allowed))
            return parts
        if self.low is not None and self.high is not None:
            parts.append(
                Interval(
                    column,
                    self.low,
                    self.high,
                    low_closed=self.low_closed,
                    high_closed=self.high_closed,
                )
            )
        elif self.low is not None:
            op = Op.GE if self.low_closed else Op.GT
            parts.append(Comparison(column, op, self.low))
        elif self.high is not None:
            op = Op.LE if self.high_closed else Op.LT
            parts.append(Comparison(column, op, self.high))
        if self.forbidden:
            if len(self.forbidden) == 1:
                (value,) = self.forbidden
                parts.append(Comparison(column, Op.NE, value))
            else:
                parts.append(Not(InSet(column, tuple(self.forbidden))))
        return parts


def _solve_conjunct(atoms: tuple[Predicate, ...]) -> Predicate:
    """Simplify one conjunct of atoms by per-column constraint solving."""
    per_column: dict[str, _ColumnConstraint] = {}
    passthrough: list[Predicate] = []

    def constraint(column: str) -> _ColumnConstraint:
        return per_column.setdefault(column, _ColumnConstraint())

    for atom in atoms:
        if isinstance(atom, FalsePredicate):
            return FALSE
        if isinstance(atom, TruePredicate):
            continue
        if isinstance(atom, Comparison):
            state = constraint(atom.column)
            if atom.op is Op.EQ:
                state.add_equals(atom.value)
            elif atom.op is Op.NE:
                state.add_forbidden({atom.value})
            elif atom.op is Op.LT:
                state.add_high(atom.value, closed=False)
            elif atom.op is Op.LE:
                state.add_high(atom.value, closed=True)
            elif atom.op is Op.GT:
                state.add_low(atom.value, closed=False)
            else:
                state.add_low(atom.value, closed=True)
        elif isinstance(atom, InSet):
            constraint(atom.column).restrict_allowed(set(atom.values))
        elif isinstance(atom, Interval):
            state = constraint(atom.column)
            if atom.low is not None:
                state.add_low(atom.low, closed=atom.low_closed)
            if atom.high is not None:
                state.add_high(atom.high, closed=atom.high_closed)
        elif isinstance(atom, Not) and isinstance(atom.operand, InSet):
            constraint(atom.operand.column).add_forbidden(
                set(atom.operand.values)
            )
        else:
            passthrough.append(atom)

    parts: list[Predicate] = []
    for column in sorted(per_column):
        state = per_column[column]
        state.finish()
        if state.contradictory:
            return FALSE
        parts.extend(state.atoms(column))
    parts.extend(passthrough)
    return conjunction(parts)


def _atom_set(conjunct: Predicate) -> frozenset[Predicate]:
    if isinstance(conjunct, And):
        return frozenset(conjunct.operands)
    return frozenset((conjunct,))


def solve_dnf(pred: Predicate) -> Predicate:
    """Per-column constraint solving of each DNF conjunct (``solve`` pass).

    Expects DNF input (constants, one conjunct, or an OR of conjuncts):
    every conjunct is solved by :class:`_ColumnConstraint` accumulation —
    range intersection, IN-set intersection, contradiction detection —
    and contradictory conjuncts drop while a vacuous conjunct collapses
    the whole predicate to TRUE (via :func:`disjunction`).
    """
    if isinstance(pred, (TruePredicate, FalsePredicate)):
        return pred
    conjuncts = pred.operands if isinstance(pred, Or) else (pred,)
    solved: list[Predicate] = []
    for conjunct in conjuncts:
        atoms = conjunct.operands if isinstance(conjunct, And) else (conjunct,)
        result = _solve_conjunct(tuple(atoms))
        if isinstance(result, TruePredicate):
            return TRUE
        if not isinstance(result, FalsePredicate):
            solved.append(result)
    return disjunction(solved)


def absorb(pred: Predicate) -> Predicate:
    """Absorption between disjuncts (``absorb`` pass).

    Drops any disjunct whose atom set strictly contains another's:
    ``A OR (A AND B)`` is ``A``.  Exact duplicates cannot occur —
    :func:`disjunction` deduplicates and canonical operand ordering makes
    equal atom sets equal predicates.  Non-OR input has nothing to absorb.
    """
    if not isinstance(pred, Or):
        return pred
    atom_sets = [_atom_set(c) for c in pred.operands]
    keep = [
        conjunct
        for i, conjunct in enumerate(pred.operands)
        if not any(
            other < atom_sets[i]
            for j, other in enumerate(atom_sets)
            if j != i
        )
    ]
    return disjunction(keep)


def factor(pred: Predicate) -> Predicate:
    """Hoist atoms common to every disjunct (``factor`` pass).

    See :func:`_factor_common_atoms`; non-OR input is returned unchanged.
    """
    if not isinstance(pred, Or):
        return pred
    conjuncts = list(pred.operands)
    return _factor_common_atoms(conjuncts, [_atom_set(c) for c in conjuncts])


def simplify(
    pred: Predicate, max_terms: int = DEFAULT_DNF_BUDGET
) -> Predicate:
    """Normalize to DNF, solve each conjunct, and absorb redundant disjuncts.

    Returns a semantically equivalent, interned predicate; if the DNF
    budget is exceeded the original predicate is returned unchanged
    (simplification is an optimization, never a requirement).

    This is the staged pass pipeline of :mod:`repro.ir.passes`
    (``nnf -> dnf -> solve -> absorb -> factor``) behind the historic
    one-call API; import here is deferred because :mod:`repro.ir`
    builds on this module's stage functions.
    """
    from repro.ir.passes import simplify_pipeline

    return simplify_pipeline(pred, max_terms=max_terms)


def _factor_common_atoms(
    conjuncts: list[Predicate], atom_sets: list[frozenset[Predicate]]
) -> Predicate:
    """Hoist atoms shared by every disjunct: ``(aB)or(aC) -> a and (B or C)``.

    Optimizers typically do not factor OR expressions when choosing an
    access path, so a selective atom appearing in every disjunct of an
    envelope (common for decision-tree paths sharing root tests) would go
    unused; hoisting it exposes the atom as a top-level conjunct the engine
    can drive an index from.
    """
    if len(conjuncts) <= 1:
        return disjunction(conjuncts)
    common = frozenset.intersection(*atom_sets)
    if not common:
        return disjunction(conjuncts)
    residuals = []
    for atoms in atom_sets:
        remainder = atoms - common
        if not remainder:
            # One disjunct is exactly the common part: the OR of residues
            # is vacuous and the whole predicate is just the common atoms.
            return conjunction(sorted(common, key=repr))
        residuals.append(conjunction(sorted(remainder, key=repr)))
    return conjunction(
        sorted(common, key=repr) + [disjunction(residuals)]
    )


# ---------------------------------------------------------------------------
# Transitivity helpers
# ---------------------------------------------------------------------------


def allowed_values(pred: Predicate, column: str) -> set[Value] | None:
    """The set of constants ``column`` may take for ``pred`` to hold.

    Returns ``None`` when the predicate does not bound the column to a finite
    set (the column is then unconstrained for transitivity purposes).  This
    implements the paper's transitivity example (Section 4.1): from
    ``M.pred = T.age AND T.age IN ('old', 'middle-aged')`` we learn that the
    prediction column is limited to those two labels.
    """
    try:
        dnf = to_dnf(pred)
    except NormalizationError:
        return None
    if isinstance(dnf, FalsePredicate):
        return set()
    if isinstance(dnf, TruePredicate):
        return None
    union: set[Value] = set()
    conjuncts = dnf.operands if isinstance(dnf, Or) else (dnf,)
    for conjunct in conjuncts:
        atoms = conjunct.operands if isinstance(conjunct, And) else (conjunct,)
        solved = _solve_conjunct(tuple(atoms))
        if isinstance(solved, FalsePredicate):
            continue
        values = _conjunct_allowed(solved, column)
        if values is None:
            return None
        union |= values
    return union


def _conjunct_allowed(conjunct: Predicate, column: str) -> set[Value] | None:
    atoms = conjunct.operands if isinstance(conjunct, And) else (conjunct,)
    for atom in atoms:
        if isinstance(atom, Comparison) and atom.column == column:
            if atom.op is Op.EQ:
                return {atom.value}
        elif isinstance(atom, InSet) and atom.column == column:
            return set(atom.values)
    return None


def interval_width(interval: Interval) -> float:
    """Numeric width of an interval (``inf`` when unbounded or non-numeric)."""
    if interval.low is None or interval.high is None:
        return math.inf
    if not isinstance(interval.low, (int, float)):
        return math.inf
    if not isinstance(interval.high, (int, float)):
        return math.inf
    return float(interval.high) - float(interval.low)
