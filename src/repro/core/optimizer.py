"""The mining-query optimizer (paper Section 4.2).

Given a :class:`MiningQuery` — a table, an ordinary relational predicate,
and a set of mining predicates — :func:`optimize` performs the paper's loop:

1. normalize/simplify the relational predicate,
2. for each mining predicate ``f``, look up / compose its upper envelope
   ``u_f`` (using the precomputed atomic envelopes in the catalog) and
   conjoin it: ``f`` becomes ``f AND u_f``,
3. re-apply normalization and transitivity; if new mining predicates are
   inferred (e.g. through prediction-to-prediction joins), return to step 2.

Envelope complexity is thresholded (``max_disjuncts``): an envelope whose
DNF exceeds the budget is replaced by TRUE, exactly the paper's mitigation
for "optimizers [that] degenerate to sequential scan when presented with a
complex AND/OR expression".

The result separates the *pushable* predicate (relational AND envelopes —
what the SQL engine evaluates) from the *residual* mining predicates (the
model applications that must still run on the returned rows, because an
upper envelope is a superset).  When the combined predicate is FALSE the
query is answered by a constant scan with no data access at all.
"""

from __future__ import annotations

import time
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro import obs
from repro.core.catalog import ModelCatalog
from repro.core.normalize import to_dnf
from repro.core.predicates import (
    TRUE,
    FalsePredicate,
    Predicate,
    TruePredicate,
    conjunction,
    disjunct_count,
)
from repro.core.rewrite import MiningPredicate, infer_mining_predicates
from repro.exceptions import NormalizationError, RewriteError
from repro.ir import simplify_pipeline
from repro.mining.base import Row

#: Default ceiling on the disjunct count of one injected envelope.
DEFAULT_MAX_DISJUNCTS = 128


@dataclass(frozen=True)
class MiningQuery:
    """A query with mining predicates over a single table (or view).

    ``SELECT * FROM table WHERE relational_predicate AND f1 AND f2 ...``
    where each ``f`` is a :class:`MiningPredicate`.
    """

    table: str
    relational_predicate: Predicate = TRUE
    mining_predicates: tuple[MiningPredicate, ...] = ()

    def evaluate(self, row: Row, catalog: ModelCatalog) -> bool:
        """Reference semantics: scan-and-apply-models (Section 2.1)."""
        if not self.relational_predicate.evaluate(row):
            return False
        return all(
            predicate.evaluate(row, catalog)
            for predicate in self.mining_predicates
        )


@dataclass(frozen=True)
class EnvelopeInjection:
    """Record of one envelope added to the query (for explain output)."""

    predicate_description: str
    envelope: Predicate
    disjuncts: int
    thresholded: bool


@dataclass(frozen=True)
class OptimizedQuery:
    """Outcome of :func:`optimize`.

    ``pushable_predicate`` — to be evaluated by the relational engine;
    ``residual_predicates`` — mining predicates still applied to returned
    rows (empty only if the caller opts to trust exact envelopes);
    ``constant_false`` — the rewritten query provably returns nothing.
    """

    query: MiningQuery
    pushable_predicate: Predicate
    residual_predicates: tuple[MiningPredicate, ...]
    injections: tuple[EnvelopeInjection, ...]
    inferred_predicates: tuple[MiningPredicate, ...]
    optimize_seconds: float
    notes: tuple[str, ...] = field(default=())

    @property
    def constant_false(self) -> bool:
        return isinstance(self.pushable_predicate, FalsePredicate)

    def evaluate_pushable(self, row: Row) -> bool:
        """Evaluate the pushed predicate (the SQL engine's job) on a row."""
        return self.pushable_predicate.evaluate(row)


def optimize(
    query: MiningQuery,
    catalog: ModelCatalog,
    max_disjuncts: int = DEFAULT_MAX_DISJUNCTS,
    max_iterations: int = 3,
    simplify_envelopes: bool = True,
) -> OptimizedQuery:
    """Rewrite ``query`` by injecting upper envelopes (Section 4.2)."""
    if max_disjuncts < 1:
        raise RewriteError("max_disjuncts must be >= 1")
    started = time.perf_counter()
    notes: list[str] = []

    with obs.span(
        "optimize",
        table=query.table,
        mining_predicates=len(query.mining_predicates),
        max_disjuncts=max_disjuncts,
    ) as sp:
        # Step 1: traditional normalization of the relational predicate.
        relational = simplify_pipeline(query.relational_predicate)

        predicates: list[MiningPredicate] = list(query.mining_predicates)
        all_inferred: list[MiningPredicate] = []
        for _ in range(max_iterations):
            inferred = infer_mining_predicates(predicates)
            if not inferred:
                break
            for predicate in inferred:
                notes.append(
                    f"inferred mining predicate: {predicate.describe()}"
                )
            predicates.extend(inferred)
            all_inferred.extend(inferred)

        # Step 2: derive and inject one envelope per mining predicate.
        injections: list[EnvelopeInjection] = []
        envelope_parts: list[Predicate] = []
        for predicate in predicates:
            envelope = predicate.envelope(catalog, relational)
            if simplify_envelopes:
                envelope = simplify_pipeline(envelope)
            disjuncts = _disjunct_count_dnf(envelope)
            thresholded = False
            if disjuncts > max_disjuncts:
                # Complexity threshold (Section 4.2): drop the envelope
                # rather than hand the engine an expression it cannot
                # exploit.
                notes.append(
                    f"envelope for {predicate.describe()} thresholded "
                    f"({disjuncts} > {max_disjuncts} disjuncts)"
                )
                envelope = TRUE
                thresholded = True
            injections.append(
                EnvelopeInjection(
                    predicate_description=predicate.describe(),
                    envelope=envelope,
                    disjuncts=disjuncts,
                    thresholded=thresholded,
                )
            )
            envelope_parts.append(envelope)
            obs.event(
                "optimize.injection",
                predicate=predicate.describe(),
                disjuncts=disjuncts,
                thresholded=thresholded,
            )

        # Step 3: final normalization of the combined pushable predicate.
        pushable = conjunction([relational] + envelope_parts)
        pushable = simplify_pipeline(pushable)

        if obs.enabled():
            sp.update(
                injected=sum(
                    1
                    for i in injections
                    if not isinstance(i.envelope, TruePredicate)
                ),
                thresholded=sum(1 for i in injections if i.thresholded),
                inferred=len(all_inferred),
                constant_false=isinstance(pushable, FalsePredicate),
            )

        return OptimizedQuery(
            query=query,
            pushable_predicate=pushable,
            residual_predicates=tuple(query.mining_predicates),
            injections=tuple(injections),
            inferred_predicates=tuple(all_inferred),
            optimize_seconds=time.perf_counter() - started,
            notes=tuple(notes),
        )


def _disjunct_count_dnf(pred: Predicate) -> int:
    """Disjunct count after DNF normalization (conservative on blow-up)."""
    try:
        return disjunct_count(to_dnf(pred))
    except NormalizationError:
        # DNF blow-up: report a count guaranteed to exceed any threshold.
        return 1 << 30


def execute_reference(
    query: MiningQuery,
    rows: Sequence[Mapping],
    catalog: ModelCatalog,
) -> list[Mapping]:
    """Extract-and-mine execution (Section 2.1): scan, filter, apply models.

    The semantic baseline every optimized execution must match.
    """
    return [row for row in rows if query.evaluate(row, catalog)]
