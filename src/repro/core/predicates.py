"""Propositional predicate algebra over relational rows.

Upper envelopes (the paper's Section 3) are constrained to be propositional
expressions of *simple selection predicates* on data columns, i.e. the
fragment a traditional optimizer can use for access-path selection.  This
module defines that fragment:

* atoms: :class:`Comparison` (``=``, ``!=``, ``<``, ``<=``, ``>``, ``>=``),
  :class:`InSet` (``col IN (...)``) and :class:`Interval`
  (range ``lo <= col < hi`` with configurable bound closedness),
* connectives: :class:`And`, :class:`Or`, :class:`Not`,
* constants: :data:`TRUE` and :data:`FALSE`.

Every node is an immutable value object; :meth:`Predicate.evaluate` gives the
semantics on a row (a mapping from column name to value), which is the single
source of truth used by the tests to check that every rewrite in
:mod:`repro.core.normalize` and every derived envelope is meaning-preserving.

The smart constructors :func:`conjunction` and :func:`disjunction` flatten
nested connectives and fold constants, which keeps machine-generated
envelopes (often thousands of nodes before simplification) small.

``And``/``Or`` canonicalize their operand order at construction, so
commutative-equivalent predicates (``And(a, b)`` vs ``And(b, a)``) are equal
as values, hash identically, and produce the same
:func:`repro.ir.fingerprint` — the property the plan cache and the intern
table of :mod:`repro.ir` key on.  Batch evaluation lowers through
:mod:`repro.ir.batch`; the scalar :meth:`Predicate.evaluate` below remains
the semantic source of truth.
"""

from __future__ import annotations

import enum
from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass
from typing import TYPE_CHECKING, Union

from repro.exceptions import PredicateError

if TYPE_CHECKING:
    import numpy as np

    from repro.core.columns import ColumnBatch

#: Optional per-predicate selectivity estimate (fraction of rows satisfying
#: the predicate) used to order connective operands for short-circuiting.
SelectivityEstimator = Callable[["Predicate"], float]

#: Scalar values a predicate may compare against.  ``bool`` deliberately
#: excluded: SQLite has no boolean type, booleans are stored as 0/1 integers.
Value = Union[int, float, str]

_ALLOWED_VALUE_TYPES = (int, float, str)


def _check_value(value: Value) -> Value:
    """Validate a comparison constant, rejecting non-scalar types early."""
    if isinstance(value, bool) or not isinstance(value, _ALLOWED_VALUE_TYPES):
        raise PredicateError(
            f"predicate constants must be int, float or str, got {value!r}"
        )
    return value


class Op(enum.Enum):
    """Comparison operators supported in simple selection predicates."""

    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    @property
    def negated(self) -> "Op":
        """The operator expressing the complement of this one."""
        return _NEGATED_OP[self]

    @property
    def flipped(self) -> "Op":
        """The operator for the same comparison with operands swapped."""
        return _FLIPPED_OP[self]


_NEGATED_OP = {
    Op.EQ: Op.NE,
    Op.NE: Op.EQ,
    Op.LT: Op.GE,
    Op.LE: Op.GT,
    Op.GT: Op.LE,
    Op.GE: Op.LT,
}

_FLIPPED_OP = {
    Op.EQ: Op.EQ,
    Op.NE: Op.NE,
    Op.LT: Op.GT,
    Op.LE: Op.GE,
    Op.GT: Op.LT,
    Op.GE: Op.LE,
}


class Predicate:
    """Abstract base class of all predicate nodes.

    Subclasses are frozen dataclasses; instances compare by value and are
    hashable, which the normalizer relies on for deduplication.
    """

    __slots__ = ()

    def evaluate(self, row: Mapping[str, Value]) -> bool:
        """Return the truth value of this predicate on ``row``.

        Missing columns raise :class:`~repro.exceptions.PredicateError`
        rather than silently evaluating to false: an envelope referencing an
        absent column indicates a schema mismatch upstream.
        """
        raise NotImplementedError

    def evaluate_batch(
        self,
        batch: "ColumnBatch",
        estimator: SelectivityEstimator | None = None,
    ) -> np.ndarray:
        """Truth values of this predicate over a whole columnar batch.

        Returns a boolean mask with one entry per batch row, equal to a
        loop of :meth:`evaluate` over the rows.  Evaluation runs through
        a per-batch mask cache keyed on interned-node identity
        (:class:`repro.ir.batch.BatchLowering`): each distinct atom or
        subtree is lowered once per batch at full width, and connectives
        combine the cached masks bitwise.  Operand order for AND/OR is
        planned once per (interned node, statistics version) when
        ``estimator`` is given (most-eliminating first for AND,
        most-admitting first for OR) and memoized across batches.

        The kernels live in :mod:`repro.ir.batch` (the batch lowering of
        the predicate IR); this base method dispatches there, and
        subclasses outside the IR may still override it — overriding
        operands are evaluated through ``operand.evaluate_batch`` on
        only the still-undecided rows (``take`` compaction), never
        cached, so expensive model/residual predicates keep the
        restriction guarantee and their overrides are honored.
        """
        from repro.ir import batch as _batch_lowering

        return _batch_lowering.evaluate_batch(self, batch, estimator)

    def columns(self) -> frozenset[str]:
        """The set of column names referenced by this predicate."""
        raise NotImplementedError

    def children(self) -> tuple["Predicate", ...]:
        """Immediate sub-predicates (empty for atoms and constants)."""
        return ()

    # -- convenience combinators ------------------------------------------

    def __and__(self, other: "Predicate") -> "Predicate":
        return conjunction([self, other])

    def __or__(self, other: "Predicate") -> "Predicate":
        return disjunction([self, other])

    def __invert__(self) -> "Predicate":
        return negate(self)

    def is_atom(self) -> bool:
        """True for leaf predicates (comparisons, IN sets, intervals)."""
        return isinstance(self, (Comparison, InSet, Interval))


def _lookup(row: Mapping[str, Value], column: str) -> Value:
    try:
        return row[column]
    except KeyError:
        raise PredicateError(f"row has no column {column!r}") from None


def _comparable(a: Value, b: Value) -> bool:
    """Whether two values may be ordered against each other.

    Numbers order against numbers, strings against strings; anything
    else — notably ``None`` against either — is incomparable and must
    raise :class:`~repro.exceptions.PredicateError` rather than leak a
    ``TypeError`` out of the raw ``<`` operator.
    """
    if isinstance(a, (int, float)):
        return isinstance(b, (int, float))
    if isinstance(a, str):
        return isinstance(b, str)
    return False


@dataclass(frozen=True, slots=True)
class TruePredicate(Predicate):
    """The constant TRUE (an empty conjunction)."""

    def evaluate(self, row: Mapping[str, Value]) -> bool:
        return True

    def columns(self) -> frozenset[str]:
        return frozenset()

    def __repr__(self) -> str:
        return "TRUE"


@dataclass(frozen=True, slots=True)
class FalsePredicate(Predicate):
    """The constant FALSE (an empty disjunction).

    An upper envelope equal to FALSE means the class is unreachable: the
    optimizer can answer the query with a constant scan (paper Section 5.2.1).
    """

    def evaluate(self, row: Mapping[str, Value]) -> bool:
        return False

    def columns(self) -> frozenset[str]:
        return frozenset()

    def __repr__(self) -> str:
        return "FALSE"


#: Singleton constants; all library code uses these instead of constructing
#: fresh instances (equality would still hold, this is just idiomatic).
TRUE = TruePredicate()
FALSE = FalsePredicate()


@dataclass(frozen=True, slots=True)
class Comparison(Predicate):
    """A simple comparison ``column <op> value``."""

    column: str
    op: Op
    value: Value

    def __post_init__(self) -> None:
        _check_value(self.value)
        if not isinstance(self.column, str) or not self.column:
            raise PredicateError(f"bad column name {self.column!r}")

    def evaluate(self, row: Mapping[str, Value]) -> bool:
        actual = _lookup(row, self.column)
        if self.op is Op.EQ:
            return actual == self.value
        if self.op is Op.NE:
            return actual != self.value
        if not _comparable(actual, self.value):
            # Ordered comparison between a string and a number never holds;
            # SQLite would apply type-affinity coercion, but our loaders store
            # columns with uniform types so this branch flags schema drift.
            raise PredicateError(
                f"cannot order {actual!r} against {self.value!r} "
                f"for column {self.column!r}"
            )
        if self.op is Op.LT:
            return actual < self.value
        if self.op is Op.LE:
            return actual <= self.value
        if self.op is Op.GT:
            return actual > self.value
        return actual >= self.value

    def columns(self) -> frozenset[str]:
        return frozenset((self.column,))

    def __repr__(self) -> str:
        return f"({self.column} {self.op.value} {self.value!r})"


@dataclass(frozen=True, slots=True)
class InSet(Predicate):
    """Membership test ``column IN (v1, ..., vn)``.

    ``values`` is stored as a sorted tuple so two semantically equal IN sets
    are equal as objects.  An empty IN set is rejected; use :data:`FALSE`.
    """

    column: str
    values: tuple[Value, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.column, str) or not self.column:
            raise PredicateError(f"bad column name {self.column!r}")
        if not self.values:
            raise PredicateError("IN set must not be empty; use FALSE")
        for value in self.values:
            _check_value(value)
        ordered = tuple(sorted(set(self.values), key=_sort_key))
        object.__setattr__(self, "values", ordered)

    def evaluate(self, row: Mapping[str, Value]) -> bool:
        return _lookup(row, self.column) in self.values

    def columns(self) -> frozenset[str]:
        return frozenset((self.column,))

    def __repr__(self) -> str:
        inner = ", ".join(repr(v) for v in self.values)
        return f"({self.column} IN {{{inner}}})"


def _sort_key(value: Value) -> tuple[int, Value]:
    """Order mixed value types deterministically (numbers before strings)."""
    if isinstance(value, (int, float)):
        return (0, value)
    return (1, value)


@dataclass(frozen=True, slots=True)
class Interval(Predicate):
    """Range predicate ``low <?= column <?= high``.

    Either bound may be ``None`` (unbounded).  ``low_closed``/``high_closed``
    select between ``<=`` and ``<``.  Intervals are the natural output of
    region-to-predicate compilation for discretized continuous attributes
    (paper Section 3.2.2): a run of adjacent bins becomes one Interval.
    """

    column: str
    low: Value | None = None
    high: Value | None = None
    low_closed: bool = True
    high_closed: bool = True

    def __post_init__(self) -> None:
        if not isinstance(self.column, str) or not self.column:
            raise PredicateError(f"bad column name {self.column!r}")
        if self.low is None and self.high is None:
            raise PredicateError("interval must be bounded on at least one side")
        for bound in (self.low, self.high):
            if bound is not None:
                _check_value(bound)
        if self.low is not None and self.high is not None:
            if not _comparable(self.low, self.high):
                raise PredicateError(
                    f"interval bounds {self.low!r} and {self.high!r} "
                    "are not mutually comparable"
                )
            if self.low > self.high:
                raise PredicateError(
                    f"empty interval [{self.low!r}, {self.high!r}]; use FALSE"
                )

    def evaluate(self, row: Mapping[str, Value]) -> bool:
        actual = _lookup(row, self.column)
        if self.low is not None:
            if not _comparable(actual, self.low):
                raise PredicateError(
                    f"cannot order {actual!r} against bound {self.low!r}"
                )
            if self.low_closed:
                if actual < self.low:
                    return False
            elif actual <= self.low:
                return False
        if self.high is not None:
            if not _comparable(actual, self.high):
                raise PredicateError(
                    f"cannot order {actual!r} against bound {self.high!r}"
                )
            if self.high_closed:
                if actual > self.high:
                    return False
            elif actual >= self.high:
                return False
        return True

    def columns(self) -> frozenset[str]:
        return frozenset((self.column,))

    def __repr__(self) -> str:
        left = "[" if self.low_closed else "("
        right = "]" if self.high_closed else ")"
        lo = "-inf" if self.low is None else repr(self.low)
        hi = "+inf" if self.high is None else repr(self.high)
        return f"({self.column} in {left}{lo}, {hi}{right})"


def _canonical_operands(
    operands: tuple[Predicate, ...],
) -> tuple[Predicate, ...]:
    """Operands in canonical (repr-sorted) order.

    ``repr`` is a total, deterministic key over predicate trees, so sorting
    by it makes commutative-equivalent connectives (``And(a, b)`` vs
    ``And(b, a)``) equal as values — the property hash-consing and the plan
    cache fingerprint rely on.  The sort is stable, so already-canonical
    tuples come back unchanged.
    """
    return tuple(sorted(operands, key=repr))


@dataclass(frozen=True, slots=True)
class And(Predicate):
    """Conjunction of two or more predicates.

    Use :func:`conjunction` to build conjunctions; the raw constructor
    rejects degenerate arities so every ``And`` in a tree is meaningful.
    Operand order is canonicalized at construction (commutativity).
    """

    operands: tuple[Predicate, ...]

    def __post_init__(self) -> None:
        if len(self.operands) < 2:
            raise PredicateError("And requires >= 2 operands; use conjunction()")
        ordered = _canonical_operands(self.operands)
        if ordered != self.operands:
            object.__setattr__(self, "operands", ordered)

    def evaluate(self, row: Mapping[str, Value]) -> bool:
        return all(operand.evaluate(row) for operand in self.operands)

    def columns(self) -> frozenset[str]:
        return frozenset().union(*(o.columns() for o in self.operands))

    def children(self) -> tuple[Predicate, ...]:
        return self.operands

    def __repr__(self) -> str:
        return "(" + " AND ".join(repr(o) for o in self.operands) + ")"


@dataclass(frozen=True, slots=True)
class Or(Predicate):
    """Disjunction of two or more predicates (see :func:`disjunction`).

    Operand order is canonicalized at construction (commutativity).
    """

    operands: tuple[Predicate, ...]

    def __post_init__(self) -> None:
        if len(self.operands) < 2:
            raise PredicateError("Or requires >= 2 operands; use disjunction()")
        ordered = _canonical_operands(self.operands)
        if ordered != self.operands:
            object.__setattr__(self, "operands", ordered)

    def evaluate(self, row: Mapping[str, Value]) -> bool:
        return any(operand.evaluate(row) for operand in self.operands)

    def columns(self) -> frozenset[str]:
        return frozenset().union(*(o.columns() for o in self.operands))

    def children(self) -> tuple[Predicate, ...]:
        return self.operands

    def __repr__(self) -> str:
        return "(" + " OR ".join(repr(o) for o in self.operands) + ")"


@dataclass(frozen=True, slots=True)
class Not(Predicate):
    """Logical negation.

    Negations appear transiently (e.g. the default-class envelope of a rule
    set, paper Section 3.1); normalization pushes them down to atoms before
    any envelope is published.
    """

    operand: Predicate

    def evaluate(self, row: Mapping[str, Value]) -> bool:
        return not self.operand.evaluate(row)

    def columns(self) -> frozenset[str]:
        return self.operand.columns()

    def children(self) -> tuple[Predicate, ...]:
        return (self.operand,)

    def __repr__(self) -> str:
        return f"(NOT {self.operand!r})"


# ---------------------------------------------------------------------------
# Smart constructors
# ---------------------------------------------------------------------------


def conjunction(parts: Iterable[Predicate]) -> Predicate:
    """AND a sequence of predicates with flattening and constant folding.

    * nested ``And`` children are inlined,
    * ``TRUE`` operands are dropped; any ``FALSE`` collapses the result,
    * duplicates are removed (first occurrence kept),
    * zero operands yield ``TRUE``; one operand is returned unwrapped.
    """
    flat: list[Predicate] = []
    seen: set[Predicate] = set()
    for part in parts:
        if isinstance(part, TruePredicate):
            continue
        if isinstance(part, FalsePredicate):
            return FALSE
        if isinstance(part, And):
            candidates: Iterable[Predicate] = part.operands
        else:
            candidates = (part,)
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                flat.append(candidate)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def disjunction(parts: Iterable[Predicate]) -> Predicate:
    """OR a sequence of predicates; dual of :func:`conjunction`."""
    flat: list[Predicate] = []
    seen: set[Predicate] = set()
    for part in parts:
        if isinstance(part, FalsePredicate):
            continue
        if isinstance(part, TruePredicate):
            return TRUE
        if isinstance(part, Or):
            candidates: Iterable[Predicate] = part.operands
        else:
            candidates = (part,)
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                flat.append(candidate)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def negate(pred: Predicate) -> Predicate:
    """Negate ``pred``, pushing the negation as deep as cheaply possible.

    Comparisons negate to their complementary operator, constants flip, and
    double negations cancel.  ``InSet``/``Interval`` wrap in :class:`Not`
    (their complements are not single atoms); :mod:`repro.core.normalize`
    expands those when a negation-free form is required.
    """
    if isinstance(pred, TruePredicate):
        return FALSE
    if isinstance(pred, FalsePredicate):
        return TRUE
    if isinstance(pred, Not):
        return pred.operand
    if isinstance(pred, Comparison):
        return Comparison(pred.column, pred.op.negated, pred.value)
    if isinstance(pred, And):
        return disjunction([negate(o) for o in pred.operands])
    if isinstance(pred, Or):
        return conjunction([negate(o) for o in pred.operands])
    return Not(pred)


def equals(column: str, value: Value) -> Comparison:
    """Shorthand for ``column = value``."""
    return Comparison(column, Op.EQ, value)


def in_set(column: str, values: Iterable[Value]) -> Predicate:
    """Shorthand for ``column IN values`` (singletons become equality)."""
    unique = sorted(set(values), key=_sort_key)
    if not unique:
        return FALSE
    if len(unique) == 1:
        return equals(column, unique[0])
    return InSet(column, tuple(unique))


def atom_count(pred: Predicate) -> int:
    """Number of atomic predicates in the tree (a size/complexity measure).

    The paper (Section 4.2) thresholds envelope complexity because "today's
    query optimizers often degenerate to sequential scan when presented with
    a complex AND/OR expression"; this metric feeds that thresholding.
    """
    if pred.is_atom():
        return 1
    return sum(atom_count(child) for child in pred.children())


def disjunct_count(pred: Predicate) -> int:
    """Number of top-level disjuncts (1 for non-OR predicates)."""
    if isinstance(pred, Or):
        return len(pred.operands)
    return 1
