"""Discretized attribute spaces and hyper-rectangular regions.

The naive-Bayes / clustering envelope algorithm (paper Section 3.2.2)
operates on the grid of attribute-member combinations: each attribute is a
*dimension* whose domain members are indexed ``0..n_d-1``, and candidate
envelope pieces are axis-aligned *regions* — one member subset per dimension.

Three dimension kinds cover the models in the paper:

* :class:`CategoricalDimension` — an unordered discrete attribute (shrinking
  may remove any member),
* :class:`OrdinalDimension` — an ordered discrete attribute (shrinking may
  only strip members from the two ends, keeping regions contiguous and hence
  expressible as ranges),
* :class:`BinnedDimension` — a continuous attribute discretized into bins by
  cut points; region pieces compile to range predicates over the raw column.

A :class:`Region` compiles to a conjunction of simple selection predicates
via :meth:`Region.to_predicate`; a disjunction of regions is exactly the
"upper envelope" shape the paper feeds to the relational optimizer.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.predicates import (
    TRUE,
    Comparison,
    Interval,
    Op,
    Predicate,
    Value,
    conjunction,
    disjunction,
    equals,
    in_set,
)
from repro.exceptions import RegionError, SchemaError


class Dimension:
    """One attribute of a discretized space; see module docstring."""

    #: Attribute/column name this dimension describes.
    name: str
    #: Whether members carry an order the shrink step must respect.
    ordered: bool

    @property
    def size(self) -> int:
        """Number of members in the domain."""
        raise NotImplementedError

    def predicate_for(self, members: Sequence[int]) -> Predicate:
        """A predicate on the raw column satisfied exactly by ``members``.

        For :class:`BinnedDimension` "exactly" means: a raw value falls in
        one of the listed bins.  ``members`` spanning the whole domain yield
        ``TRUE``.
        """
        raise NotImplementedError

    def member_for_value(self, value: Value) -> int:
        """Map a raw column value to its member index.

        Raises :class:`~repro.exceptions.RegionError` for values outside the
        domain of a discrete dimension.
        """
        raise NotImplementedError

    def members_for_values(self, values: Sequence[Value]) -> np.ndarray:
        """Vectorized :meth:`member_for_value` over a column of raw values.

        Returns an ``int64`` array of member indices; the default walks the
        scalar mapping, subclasses override with array operations where the
        mapping vectorizes (binned dimensions use ``searchsorted``).
        """
        return np.fromiter(
            (self.member_for_value(v) for v in values),
            dtype=np.int64,
            count=len(values),
        )

    def member_label(self, member: int) -> str:
        """Human-readable label of one member (for reports and repr)."""
        raise NotImplementedError

    def _check_member(self, member: int) -> None:
        if not 0 <= member < self.size:
            raise RegionError(
                f"member {member} out of range for dimension "
                f"{self.name!r} of size {self.size}"
            )


def _contiguous_runs(members: Sequence[int]) -> list[tuple[int, int]]:
    """Split a sorted member sequence into inclusive ``(start, end)`` runs."""
    runs: list[tuple[int, int]] = []
    start = prev = members[0]
    for member in members[1:]:
        if member == prev + 1:
            prev = member
            continue
        runs.append((start, prev))
        start = prev = member
    runs.append((start, prev))
    return runs


@dataclass(frozen=True)
class CategoricalDimension(Dimension):
    """Unordered discrete attribute with an explicit value domain."""

    name: str
    values: tuple[Value, ...]
    ordered: bool = False

    def __post_init__(self) -> None:
        if not self.values:
            raise SchemaError(f"dimension {self.name!r} has an empty domain")
        if len(set(self.values)) != len(self.values):
            raise SchemaError(f"dimension {self.name!r} has duplicate values")
        object.__setattr__(self, "_index", {v: i for i, v in enumerate(self.values)})

    @property
    def size(self) -> int:
        return len(self.values)

    def predicate_for(self, members: Sequence[int]) -> Predicate:
        for member in members:
            self._check_member(member)
        if len(set(members)) == self.size:
            return TRUE
        return in_set(self.name, [self.values[m] for m in members])

    def member_for_value(self, value: Value) -> int:
        index: Mapping[Value, int] = getattr(self, "_index")
        try:
            return index[value]
        except KeyError:
            raise RegionError(
                f"value {value!r} not in domain of dimension {self.name!r}"
            ) from None

    def member_label(self, member: int) -> str:
        self._check_member(member)
        return str(self.values[member])


@dataclass(frozen=True)
class OrdinalDimension(Dimension):
    """Ordered discrete attribute; values must be sorted ascending."""

    name: str
    values: tuple[Value, ...]
    ordered: bool = True

    def __post_init__(self) -> None:
        if not self.values:
            raise SchemaError(f"dimension {self.name!r} has an empty domain")
        if list(self.values) != sorted(set(self.values)):  # type: ignore[type-var]
            raise SchemaError(
                f"ordinal dimension {self.name!r} values must be strictly "
                "ascending"
            )
        object.__setattr__(self, "_index", {v: i for i, v in enumerate(self.values)})

    @property
    def size(self) -> int:
        return len(self.values)

    def predicate_for(self, members: Sequence[int]) -> Predicate:
        for member in members:
            self._check_member(member)
        unique = sorted(set(members))
        if len(unique) == self.size:
            return TRUE
        parts: list[Predicate] = []
        for start, end in _contiguous_runs(unique):
            if start == end:
                parts.append(equals(self.name, self.values[start]))
            else:
                parts.append(
                    Interval(self.name, self.values[start], self.values[end])
                )
        return disjunction(parts)

    def member_for_value(self, value: Value) -> int:
        index: Mapping[Value, int] = getattr(self, "_index")
        try:
            return index[value]
        except KeyError:
            raise RegionError(
                f"value {value!r} not in domain of dimension {self.name!r}"
            ) from None

    def member_label(self, member: int) -> str:
        self._check_member(member)
        return str(self.values[member])


@dataclass(frozen=True)
class BinnedDimension(Dimension):
    """Continuous attribute discretized into bins by ascending cut points.

    With cuts ``c_0 < ... < c_{m-1}`` and optional outer bounds ``low`` /
    ``high``, member ``i`` covers ``[edge_i, edge_{i+1})`` except the last
    bin, which is closed on the right when ``high`` is finite.  Unbounded
    outer bins keep envelopes sound for values beyond the training range.
    """

    name: str
    cuts: tuple[float, ...]
    low: float | None = None
    high: float | None = None
    ordered: bool = True

    def __post_init__(self) -> None:
        if list(self.cuts) != sorted(set(self.cuts)):
            raise SchemaError(
                f"binned dimension {self.name!r} cuts must be strictly "
                "ascending"
            )
        if self.cuts:
            if self.low is not None and self.low >= self.cuts[0]:
                raise SchemaError(
                    f"dimension {self.name!r}: low bound must precede cuts"
                )
            if self.high is not None and self.high <= self.cuts[-1]:
                raise SchemaError(
                    f"dimension {self.name!r}: high bound must follow cuts"
                )
        elif self.low is not None and self.high is not None:
            if self.low >= self.high:
                raise SchemaError(
                    f"dimension {self.name!r}: low bound must precede high"
                )

    @property
    def size(self) -> int:
        return len(self.cuts) + 1

    def edges(self) -> tuple[float | None, ...]:
        """Bin edges including outer bounds (``None`` when unbounded)."""
        return (self.low, *self.cuts, self.high)

    def bounds(self, member: int) -> tuple[float | None, float | None]:
        """Raw-value bounds of one bin (``None`` for an unbounded side)."""
        self._check_member(member)
        edges = self.edges()
        return edges[member], edges[member + 1]

    def representative(self, member: int) -> float:
        """A point inside the bin (midpoint; edges when half-unbounded)."""
        low, high = self.bounds(member)
        if low is None and high is None:
            return 0.0
        if low is None:
            assert high is not None
            return float(high) - 1.0
        if high is None:
            return float(low) + 1.0
        return (float(low) + float(high)) / 2.0

    def predicate_for(self, members: Sequence[int]) -> Predicate:
        unique = sorted(set(members))
        for member in unique:
            self._check_member(member)
        if len(unique) == self.size:
            return TRUE
        parts: list[Predicate] = []
        for start, end in _contiguous_runs(unique):
            parts.append(self._run_predicate(start, end))
        return disjunction(parts)

    def _run_predicate(self, start: int, end: int) -> Predicate:
        low, _ = self.bounds(start)
        _, high = self.bounds(end)
        last = end == self.size - 1
        if low is None and high is None:
            return TRUE
        if low is None:
            assert high is not None
            op = Op.LE if last else Op.LT
            return Comparison(self.name, op, high)
        if high is None:
            return Comparison(self.name, Op.GE, low)
        return Interval(
            self.name, low, high, low_closed=True, high_closed=last
        )

    def member_for_value(self, value: Value) -> int:
        if not isinstance(value, (int, float)):
            raise RegionError(
                f"binned dimension {self.name!r} needs numeric values, "
                f"got {value!r}"
            )
        number = float(value)
        for i, cut in enumerate(self.cuts):
            if number < cut:
                return i
        return len(self.cuts)

    def members_for_values(self, values: Sequence[Value]) -> np.ndarray:
        array = np.asarray(values)
        if array.dtype == object:
            for value in array:
                if not isinstance(value, (int, float)):
                    raise RegionError(
                        f"binned dimension {self.name!r} needs numeric "
                        f"values, got {value!r}"
                    )
            array = array.astype(np.float64)
        elif not np.issubdtype(array.dtype, np.number):
            raise RegionError(
                f"binned dimension {self.name!r} needs numeric values"
            )
        # side='right' counts cuts <= value: exactly the scalar rule that a
        # value on a cut belongs to the bin to the cut's right.
        return np.searchsorted(
            np.asarray(self.cuts, dtype=np.float64), array, side="right"
        ).astype(np.int64)

    def member_label(self, member: int) -> str:
        low, high = self.bounds(member)
        lo = "-inf" if low is None else f"{low:g}"
        hi = "+inf" if high is None else f"{high:g}"
        return f"[{lo}, {hi})"


@dataclass(frozen=True)
class AttributeSpace:
    """An ordered collection of dimensions defining the prediction grid."""

    dimensions: tuple[Dimension, ...]

    def __post_init__(self) -> None:
        if not self.dimensions:
            raise SchemaError("attribute space needs at least one dimension")
        names = [d.name for d in self.dimensions]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate dimension names in {names}")

    @property
    def n_dims(self) -> int:
        return len(self.dimensions)

    def dimension(self, name: str) -> Dimension:
        for dim in self.dimensions:
            if dim.name == name:
                return dim
        raise SchemaError(f"no dimension named {name!r}")

    def cell_count(self) -> int:
        """Total number of member combinations (the paper's ``prod n_d``)."""
        return math.prod(d.size for d in self.dimensions)

    def point_for_row(self, row: Mapping[str, Value]) -> tuple[int, ...]:
        """Map a data row to its grid cell (member index per dimension)."""
        return tuple(
            dim.member_for_value(row[dim.name]) for dim in self.dimensions
        )

    def iter_cells(self, limit: int | None = None) -> Iterator[tuple[int, ...]]:
        """Enumerate every grid cell, optionally guarded by ``limit``.

        The guard exists because full enumeration is exactly what the paper's
        naive algorithm does and what Algorithm 1 is designed to avoid; tests
        and the enumeration baseline set an explicit limit.
        """
        if limit is not None and self.cell_count() > limit:
            raise RegionError(
                f"space has {self.cell_count()} cells, above limit {limit}"
            )
        ranges = [range(d.size) for d in self.dimensions]
        return itertools.product(*ranges)


@dataclass(frozen=True)
class Region:
    """An axis-aligned region: one non-empty member subset per dimension.

    Member tuples are kept sorted and deduplicated; regions are immutable
    value objects, so the envelope search can share them freely between the
    split tree and the result list.
    """

    members: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        cleaned = []
        for dim_members in self.members:
            unique = tuple(sorted(set(dim_members)))
            if not unique:
                raise RegionError("region has an empty dimension; drop it")
            cleaned.append(unique)
        object.__setattr__(self, "members", tuple(cleaned))

    @classmethod
    def full(cls, space: AttributeSpace) -> "Region":
        """The region covering the entire space."""
        return cls(tuple(tuple(range(d.size)) for d in space.dimensions))

    def cell_count(self) -> int:
        return math.prod(len(m) for m in self.members)

    def is_cell(self) -> bool:
        """True when the region is a single grid cell."""
        return all(len(m) == 1 for m in self.members)

    def contains(self, point: Sequence[int]) -> bool:
        if len(point) != len(self.members):
            raise RegionError(
                f"point has {len(point)} coordinates, region has "
                f"{len(self.members)} dimensions"
            )
        return all(p in dim for p, dim in zip(point, self.members))

    def with_members(self, dim_index: int, members: Iterable[int]) -> "Region":
        """A copy with dimension ``dim_index`` replaced by ``members``."""
        new = list(self.members)
        new[dim_index] = tuple(members)
        return Region(tuple(new))

    def split(
        self, dim_index: int, left_members: Iterable[int]
    ) -> tuple["Region", "Region"]:
        """Partition along one dimension into (left, right) sub-regions."""
        left_set = set(left_members)
        current = self.members[dim_index]
        left = [m for m in current if m in left_set]
        right = [m for m in current if m not in left_set]
        if not left or not right:
            raise RegionError("split must leave both sides non-empty")
        return (
            self.with_members(dim_index, left),
            self.with_members(dim_index, right),
        )

    def iter_cells(self, limit: int | None = None) -> Iterator[tuple[int, ...]]:
        if limit is not None and self.cell_count() > limit:
            raise RegionError(
                f"region has {self.cell_count()} cells, above limit {limit}"
            )
        return itertools.product(*self.members)

    def to_predicate(self, space: AttributeSpace) -> Predicate:
        """Compile to a conjunction of simple predicates on raw columns.

        Dimensions whose member set is the full domain contribute nothing;
        a region covering the whole space compiles to ``TRUE``.
        """
        if len(self.members) != space.n_dims:
            raise RegionError(
                "region dimensionality does not match the attribute space"
            )
        parts: list[Predicate] = []
        for dim, members in zip(space.dimensions, self.members):
            if len(members) == dim.size:
                continue
            parts.append(dim.predicate_for(members))
        return conjunction(parts)

    def merged_with(self, other: "Region") -> "Region | None":
        """Merge with ``other`` if they differ in at most one dimension.

        Returns the union region, or ``None`` when the regions differ in two
        or more dimensions (their union would not be a hyper-rectangle).
        Used by the bottom-up merge pass of Algorithm 1.
        """
        if len(self.members) != len(other.members):
            return None
        diff_axis = -1
        for axis, (mine, theirs) in enumerate(
            zip(self.members, other.members)
        ):
            if mine != theirs:
                if diff_axis >= 0:
                    return None
                diff_axis = axis
        if diff_axis < 0:
            return self
        merged = sorted(
            set(self.members[diff_axis]) | set(other.members[diff_axis])
        )
        return self.with_members(diff_axis, merged)

    def describe(self, space: AttributeSpace) -> str:
        """Compact human-readable rendering, e.g. ``d0:[2..3], d1:[0..1]``."""
        parts = []
        for dim, members in zip(space.dimensions, self.members):
            if len(members) == dim.size:
                continue
            runs = _contiguous_runs(list(members))
            rendered = ",".join(
                f"{a}..{b}" if a != b else str(a) for a, b in runs
            )
            parts.append(f"{dim.name}:[{rendered}]")
        return ", ".join(parts) if parts else "<full space>"


def merge_regions(regions: Sequence[Region]) -> list[Region]:
    """Iteratively merge region pairs differing in one dimension.

    This is the paper's post-pass ("another iterative search for pairs of
    non-sibling regions that can be merged"): repeat pairwise merging until a
    fixpoint.  Input regions are assumed pairwise disjoint (as produced by
    the split tree); merging preserves the covered cell set exactly.
    """
    current = list(regions)
    merged_any = True
    while merged_any and len(current) > 1:
        merged_any = False
        result: list[Region] = []
        used = [False] * len(current)
        for i, region in enumerate(current):
            if used[i]:
                continue
            acc = region
            for j in range(i + 1, len(current)):
                if used[j]:
                    continue
                candidate = acc.merged_with(current[j])
                if candidate is not None:
                    acc = candidate
                    used[j] = True
                    merged_any = True
            used[i] = True
            result.append(acc)
        current = result
    return current


def coarsen_regions(
    regions: Sequence[Region],
    max_regions: int,
    member_weights: "Sequence | None" = None,
) -> list[Region]:
    """Reduce a region list to at most ``max_regions`` by union-merging.

    Implements the paper's Section 4.2 disjunct thresholding soundly:
    rather than dropping the envelope when it has too many disjuncts, the
    pair of regions whose merged bounding box adds the least *volume* is
    merged (per-dimension member union), repeatedly, until the budget is
    met.  The result covers a superset of the input's cells, so the
    envelope stays an upper envelope — it just gets looser and much cheaper
    for the optimizer to reason about.

    ``member_weights`` — one non-negative weight array per dimension (one
    entry per member) — redefines a box's volume as the product over
    dimensions of its members' summed weights.  The envelope deriver passes
    the model's own marginal member masses, so coarsening preferentially
    merges through *low-probability* space and barely dilutes the
    envelope's data selectivity.  Without weights, volume is the cell count.
    """
    if max_regions < 1:
        raise RegionError("max_regions must be >= 1")
    if len(regions) <= max_regions:
        return list(regions)
    n_dims = len(regions[0].members)
    sizes = [
        max(r.members[d][-1] for r in regions) + 1 for d in range(n_dims)
    ]
    if member_weights is None:
        weights = [np.ones(size) for size in sizes]
    else:
        weights = [
            np.asarray(member_weights[d], dtype=float)[: sizes[d]]
            if len(member_weights[d]) >= sizes[d]
            else np.ones(sizes[d])
            for d in range(n_dims)
        ]
    # Boolean membership matrices, one per dimension.
    membership = [
        np.zeros((len(regions), sizes[d]), dtype=bool)
        for d in range(n_dims)
    ]
    for r, region in enumerate(regions):
        for d, members in enumerate(region.members):
            membership[d][r, list(members)] = True

    alive = list(range(len(regions)))
    while len(alive) > max_regions:
        live = [membership[d][alive] for d in range(n_dims)]
        own = np.ones(len(alive))
        for d in range(n_dims):
            own *= live[d] @ weights[d]
        best: tuple[float, int, int] | None = None
        for i in range(len(alive) - 1):
            union_volume = np.ones(len(alive) - i - 1)
            for d in range(n_dims):
                union = live[d][i] | live[d][i + 1:]
                union_volume *= union @ weights[d]
            cost = union_volume - own[i] - own[i + 1:]
            j_rel = int(cost.argmin())
            candidate = (float(cost[j_rel]), i, i + 1 + j_rel)
            if best is None or candidate[0] < best[0]:
                best = candidate
        assert best is not None
        _, i, j = best
        for d in range(n_dims):
            membership[d][alive[i]] |= membership[d][alive[j]]
        del alive[j]

    result = []
    for r in alive:
        members = tuple(
            tuple(np.flatnonzero(membership[d][r]).tolist())
            for d in range(n_dims)
        )
        result.append(Region(members))
    return result


def regions_to_predicate(
    regions: Sequence[Region], space: AttributeSpace
) -> Predicate:
    """Disjunction of region predicates — the upper-envelope shape."""
    return disjunction(r.to_predicate(space) for r in regions)
