"""Upper envelopes for real-valued predictions (paper future work).

The paper restricts itself to discrete predictions and names real-valued
models as future work.  For piecewise-constant regressors (regression
trees) the extension is exact, mirroring Section 3.1: a range mining
predicate

    M.prediction BETWEEN low AND high

holds exactly on rows routed to leaves whose constant lies in the range,
so the envelope is the OR over those leaves of their path conjunctions.
:class:`PredictionBetween` plugs the new predicate form into the existing
Section 4 rewrite machinery.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.catalog import ModelCatalog
from repro.core.envelope import UpperEnvelope
from repro.core.normalize import simplify
from repro.core.predicates import (
    TRUE,
    Predicate,
    conjunction,
    disjunction,
)
from repro.core.rewrite import MiningPredicate
from repro.exceptions import EnvelopeError, RewriteError
from repro.ir import intern
from repro.mining.base import Row
from repro.mining.regression_tree import (
    RegressionTreeModel,
    iter_regression_leaves,
)


def regression_range_envelope(
    model: RegressionTreeModel,
    low: float | None,
    high: float | None,
    simplify_result: bool = True,
) -> UpperEnvelope:
    """Exact envelope of ``low <= prediction <= high``.

    Either bound may be ``None`` (one-sided range).  The label used on the
    returned envelope is the rendered range.
    """
    if low is None and high is None:
        raise EnvelopeError("range envelope needs at least one bound")
    started = time.perf_counter()
    disjuncts: list[Predicate] = []
    for conditions, leaf in iter_regression_leaves(model.root):
        if low is not None and leaf.value < low:
            continue
        if high is not None and leaf.value > high:
            continue
        disjuncts.append(conjunction(conditions))
    predicate = disjunction(disjuncts)
    if simplify_result:
        predicate = simplify(predicate)
    predicate = intern(predicate)
    label = f"[{low if low is not None else '-inf'}, " \
            f"{high if high is not None else '+inf'}]"
    return UpperEnvelope(
        model_name=model.name,
        model_kind=model.kind,
        class_label=label,
        predicate=predicate,
        exact=True,
        seconds=time.perf_counter() - started,
        derivation="tree-paths",
    )


@dataclass(frozen=True)
class PredictionBetween(MiningPredicate):
    """``low <= model.prediction_column <= high`` for a regression model.

    The envelope is derived on demand from the registered model's content
    (leaf constants are part of the model, not the catalog's per-class
    store, since ranges are unbounded in number).
    """

    model_name: str
    low: float | None = None
    high: float | None = None

    def __post_init__(self) -> None:
        if self.low is None and self.high is None:
            raise RewriteError("PredictionBetween needs at least one bound")
        if (
            self.low is not None
            and self.high is not None
            and self.low > self.high
        ):
            raise RewriteError("PredictionBetween range is empty")

    def models(self) -> tuple[str, ...]:
        return (self.model_name,)

    def evaluate(self, row: Row, catalog: ModelCatalog) -> bool:
        value = catalog.model(self.model_name).predict(row)
        if not isinstance(value, (int, float)):
            raise RewriteError(
                f"model {self.model_name!r} does not predict numbers"
            )
        if self.low is not None and value < self.low:
            return False
        if self.high is not None and value > self.high:
            return False
        return True

    def envelope(
        self,
        catalog: ModelCatalog,
        relational_predicate: Predicate = TRUE,
    ) -> Predicate:
        model = catalog.model(self.model_name)
        if not isinstance(model, RegressionTreeModel):
            raise RewriteError(
                "PredictionBetween requires a regression tree; "
                f"{self.model_name!r} is {type(model).__name__}"
            )
        return regression_range_envelope(model, self.low, self.high).predicate

    def describe(self) -> str:
        return (
            f"{self.model_name}.prediction in "
            f"[{self.low if self.low is not None else '-inf'}, "
            f"{self.high if self.high is not None else '+inf'}]"
        )


def register_regression_model(
    catalog: ModelCatalog, model: RegressionTreeModel
) -> None:
    """Register a regression tree with per-leaf-value atomic envelopes.

    Each distinct leaf constant gets an exact envelope (the degenerate
    range ``[v, v]``), so equality mining predicates on the predicted value
    also work through the standard catalog path.
    """
    envelopes = {}
    for value in model.class_labels:
        assert isinstance(value, float)
        envelopes[value] = regression_range_envelope(model, value, value)
    catalog.register(model, envelopes=envelopes)
