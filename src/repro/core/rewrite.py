"""Mining predicates and their envelope-based rewrites (paper Section 4.1).

Four mining-predicate forms are supported, mirroring the paper:

* :class:`PredictionEquals` — ``M.pred = c`` (the atomic form whose envelope
  is precomputed at training time),
* :class:`PredictionIn` — ``M.pred IN (c1..cl)``; envelope is the
  disjunction of the atomic envelopes,
* :class:`PredictionJoinPrediction` — ``M1.pred = M2.pred``; envelope is
  ``OR_c (env1_c AND env2_c)`` over the common labels; identical models give
  a tautology, label-disjoint models give FALSE,
* :class:`PredictionJoinColumn` — ``M.pred = T.col``; envelope is
  ``OR_c (env_c AND col = c)``, optionally narrowed by transitivity when the
  query's relational predicate restricts ``col`` to a label subset.

Every mining predicate also knows its *reference semantics*
(:meth:`MiningPredicate.evaluate`): apply the model row-by-row, exactly what
a black-box engine would do.  The tests verify each envelope is implied by
those semantics on random rows.
"""

from __future__ import annotations

from collections.abc import MutableMapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.core.catalog import ModelCatalog
from repro.core.columns import ColumnBatch
from repro.core.normalize import allowed_values
from repro.core.predicates import (
    FALSE,
    TRUE,
    Predicate,
    Value,
    conjunction,
    disjunction,
    equals,
)
from repro.exceptions import RewriteError
from repro.mining.base import Row

#: Per-row prediction memo: model name -> predicted label for that row.
RowPredictionCache = MutableMapping[str, Value]
#: Per-batch prediction memo: model name -> object array of predictions.
BatchPredictionCache = MutableMapping[str, np.ndarray]


def _row_prediction(
    model_name: str,
    row: Row,
    catalog: ModelCatalog,
    cache: RowPredictionCache,
) -> Value:
    """The model's prediction for ``row``, computed at most once."""
    if model_name not in cache:
        obs.add_counter("prediction.row_memo.miss")
        cache[model_name] = catalog.model(model_name).predict(row)
    else:
        obs.add_counter("prediction.row_memo.hit")
    return cache[model_name]


def _batch_predictions(
    model_name: str,
    batch: ColumnBatch,
    catalog: ModelCatalog,
    cache: BatchPredictionCache,
) -> np.ndarray:
    """The model's predictions for a whole batch, computed at most once."""
    predictions = cache.get(model_name)
    if predictions is None:
        obs.add_counter("prediction.batch_memo.miss")
        predictions = catalog.model(model_name).predict_batch(batch)
        cache[model_name] = predictions
    else:
        obs.add_counter("prediction.batch_memo.hit")
    return predictions


class MiningPredicate:
    """A predicate over a model's prediction column (abstract base)."""

    def models(self) -> tuple[str, ...]:
        """Names of the mining models this predicate references."""
        raise NotImplementedError

    def evaluate(self, row: Row, catalog: ModelCatalog) -> bool:
        """Reference semantics: apply the model(s) to the row."""
        raise NotImplementedError

    def evaluate_cached(
        self,
        row: Row,
        catalog: ModelCatalog,
        cache: RowPredictionCache,
    ) -> bool:
        """:meth:`evaluate` with per-row prediction memoization.

        ``cache`` maps model name to that model's prediction for this row;
        a query with several mining predicates on the same model shares one
        cache per row so the model runs once.  The base implementation
        ignores the cache (exotic subclasses stay correct); the built-in
        forms all route their predictions through it.
        """
        return self.evaluate(row, catalog)

    def evaluate_batch(
        self,
        batch: ColumnBatch,
        catalog: ModelCatalog,
        cache: BatchPredictionCache,
    ) -> np.ndarray:
        """Boolean mask over ``batch`` rows, memoizing model predictions.

        ``cache`` maps model name to the model's object-array predictions
        for this batch — callers that compact the batch must slice the
        cached arrays in lockstep.  Equivalent to evaluating
        :meth:`evaluate` per row.  The base implementation is that scalar
        loop; the built-in forms override it with array comparisons over
        :meth:`repro.mining.base.MiningModel.predict_batch` output.
        """
        return np.fromiter(
            (self.evaluate(row, catalog) for row in batch.rows()),
            dtype=bool,
            count=len(batch),
        )

    def envelope(
        self,
        catalog: ModelCatalog,
        relational_predicate: Predicate = TRUE,
    ) -> Predicate:
        """The derived upper envelope ``u_f`` of Section 4.2, step 2(b)."""
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class PredictionEquals(MiningPredicate):
    """``model.prediction_column = label``."""

    model_name: str
    label: Value

    def models(self) -> tuple[str, ...]:
        return (self.model_name,)

    def evaluate(self, row: Row, catalog: ModelCatalog) -> bool:
        return catalog.model(self.model_name).predict(row) == self.label

    def evaluate_cached(
        self,
        row: Row,
        catalog: ModelCatalog,
        cache: RowPredictionCache,
    ) -> bool:
        return (
            _row_prediction(self.model_name, row, catalog, cache)
            == self.label
        )

    def evaluate_batch(
        self,
        batch: ColumnBatch,
        catalog: ModelCatalog,
        cache: BatchPredictionCache,
    ) -> np.ndarray:
        predictions = _batch_predictions(
            self.model_name, batch, catalog, cache
        )
        return np.asarray(predictions == self.label, dtype=bool)

    def envelope(
        self,
        catalog: ModelCatalog,
        relational_predicate: Predicate = TRUE,
    ) -> Predicate:
        if self.label not in catalog.class_labels(self.model_name):
            # A label outside the model's domain can never be predicted.
            return FALSE
        return catalog.envelope(self.model_name, self.label).predicate

    def describe(self) -> str:
        return f"{self.model_name}.prediction = {self.label!r}"


@dataclass(frozen=True)
class PredictionIn(MiningPredicate):
    """``model.prediction_column IN labels``."""

    model_name: str
    labels: tuple[Value, ...]

    def __post_init__(self) -> None:
        if not self.labels:
            raise RewriteError("IN mining predicate needs at least one label")
        object.__setattr__(
            self, "labels", tuple(sorted(set(self.labels), key=str))
        )

    def models(self) -> tuple[str, ...]:
        return (self.model_name,)

    def evaluate(self, row: Row, catalog: ModelCatalog) -> bool:
        return catalog.model(self.model_name).predict(row) in self.labels

    def evaluate_cached(
        self,
        row: Row,
        catalog: ModelCatalog,
        cache: RowPredictionCache,
    ) -> bool:
        return (
            _row_prediction(self.model_name, row, catalog, cache)
            in self.labels
        )

    def evaluate_batch(
        self,
        batch: ColumnBatch,
        catalog: ModelCatalog,
        cache: BatchPredictionCache,
    ) -> np.ndarray:
        predictions = _batch_predictions(
            self.model_name, batch, catalog, cache
        )
        mask = np.zeros(len(batch), dtype=bool)
        for label in self.labels:
            mask |= np.asarray(predictions == label, dtype=bool)
        return mask

    def envelope(
        self,
        catalog: ModelCatalog,
        relational_predicate: Predicate = TRUE,
    ) -> Predicate:
        known = set(catalog.class_labels(self.model_name))
        parts = [
            catalog.envelope(self.model_name, label).predicate
            for label in self.labels
            if label in known
        ]
        return disjunction(parts)

    def describe(self) -> str:
        return f"{self.model_name}.prediction IN {self.labels!r}"


@dataclass(frozen=True)
class PredictionJoinPrediction(MiningPredicate):
    """``model_a.prediction_column = model_b.prediction_column``."""

    model_a: str
    model_b: str

    def models(self) -> tuple[str, ...]:
        return (self.model_a, self.model_b)

    def evaluate(self, row: Row, catalog: ModelCatalog) -> bool:
        return catalog.model(self.model_a).predict(row) == catalog.model(
            self.model_b
        ).predict(row)

    def evaluate_cached(
        self,
        row: Row,
        catalog: ModelCatalog,
        cache: RowPredictionCache,
    ) -> bool:
        return _row_prediction(
            self.model_a, row, catalog, cache
        ) == _row_prediction(self.model_b, row, catalog, cache)

    def evaluate_batch(
        self,
        batch: ColumnBatch,
        catalog: ModelCatalog,
        cache: BatchPredictionCache,
    ) -> np.ndarray:
        predictions_a = _batch_predictions(self.model_a, batch, catalog, cache)
        predictions_b = _batch_predictions(self.model_b, batch, catalog, cache)
        return np.asarray(predictions_a == predictions_b, dtype=bool)

    def envelope(
        self,
        catalog: ModelCatalog,
        relational_predicate: Predicate = TRUE,
    ) -> Predicate:
        if self.model_a == self.model_b:
            # Identical models always concur: the envelope is a tautology
            # (noted explicitly in Section 4.1).
            return TRUE
        labels_a = set(catalog.class_labels(self.model_a))
        labels_b = set(catalog.class_labels(self.model_b))
        common = sorted(labels_a & labels_b, key=str)
        parts = [
            conjunction(
                [
                    catalog.envelope(self.model_a, label).predicate,
                    catalog.envelope(self.model_b, label).predicate,
                ]
            )
            for label in common
        ]
        # No common labels: contradictory models, the query is empty.
        return disjunction(parts)

    def describe(self) -> str:
        return f"{self.model_a}.prediction = {self.model_b}.prediction"


@dataclass(frozen=True)
class PredictionJoinColumn(MiningPredicate):
    """``model.prediction_column = T.column`` (e.g. cross-validation)."""

    model_name: str
    column: str

    def models(self) -> tuple[str, ...]:
        return (self.model_name,)

    def evaluate(self, row: Row, catalog: ModelCatalog) -> bool:
        return catalog.model(self.model_name).predict(row) == row[self.column]

    def evaluate_cached(
        self,
        row: Row,
        catalog: ModelCatalog,
        cache: RowPredictionCache,
    ) -> bool:
        return (
            _row_prediction(self.model_name, row, catalog, cache)
            == row[self.column]
        )

    def evaluate_batch(
        self,
        batch: ColumnBatch,
        catalog: ModelCatalog,
        cache: BatchPredictionCache,
    ) -> np.ndarray:
        predictions = _batch_predictions(
            self.model_name, batch, catalog, cache
        )
        return np.asarray(
            predictions == batch.column(self.column), dtype=bool
        )

    def restricted_labels(
        self,
        catalog: ModelCatalog,
        relational_predicate: Predicate,
    ) -> tuple[Value, ...]:
        """Labels surviving transitivity against the relational predicate.

        If the query already constrains ``column`` to a finite set, only
        labels in that set can satisfy the join (Section 4.1's transitivity
        example).
        """
        labels = list(catalog.class_labels(self.model_name))
        restriction = allowed_values(relational_predicate, self.column)
        if restriction is not None:
            labels = [label for label in labels if label in restriction]
        return tuple(labels)

    def envelope(
        self,
        catalog: ModelCatalog,
        relational_predicate: Predicate = TRUE,
    ) -> Predicate:
        labels = self.restricted_labels(catalog, relational_predicate)
        parts = [
            conjunction(
                [
                    catalog.envelope(self.model_name, label).predicate,
                    equals(self.column, label),
                ]
            )
            for label in labels
        ]
        return disjunction(parts)

    def describe(self) -> str:
        return f"{self.model_name}.prediction = {self.column}"


def infer_mining_predicates(
    predicates: Sequence[MiningPredicate],
) -> list[MiningPredicate]:
    """Step-3 inference of Section 4.2: derive new mining predicates.

    Currently implements transitivity across prediction-join predicates:
    from ``M1.pred = M2.pred`` and ``M2.pred IN S`` (or ``= c``) infer
    ``M1.pred IN S``.  Returns only the *new* predicates (possibly empty);
    the optimizer loops until no more are inferred.
    """
    known = set(predicates)
    restrictions: dict[str, set[Value]] = {}
    for predicate in predicates:
        if isinstance(predicate, PredictionEquals):
            restrictions.setdefault(
                predicate.model_name, set()
            ).add(predicate.label)
        elif isinstance(predicate, PredictionIn):
            restrictions.setdefault(
                predicate.model_name, set()
            ).update(predicate.labels)
    inferred: list[MiningPredicate] = []
    for predicate in predicates:
        if not isinstance(predicate, PredictionJoinPrediction):
            continue
        for source, target in (
            (predicate.model_a, predicate.model_b),
            (predicate.model_b, predicate.model_a),
        ):
            if source in restrictions:
                labels = tuple(sorted(restrictions[source], key=str))
                new: MiningPredicate
                if len(labels) == 1:
                    new = PredictionEquals(target, labels[0])
                else:
                    new = PredictionIn(target, labels)
                if new not in known:
                    known.add(new)
                    inferred.append(new)
    return inferred
