"""Upper envelopes for rule-based classifiers (paper Section 3.1).

"The upper envelope of each class c is just the disjunction of the body of
all rules where c is the head."  With an *ordered* rule list the envelope is
generally not exact: a row matching a class-``c`` body may be claimed by an
earlier rule of another class.  The default class needs the complement of
all non-default bodies ORed in, since any uncovered row falls through to it.

The paper notes the envelope "may be possible to tighten ... by exploiting
the knowledge of the resolution procedure"; :func:`rule_envelope` implements
that tightening as an option: the body of each class-``c`` rule is ANDed
with the negation of all *earlier* rules of other classes, which makes the
envelope exact for sequential resolution at the cost of more atoms.
"""

from __future__ import annotations

import time

from repro.core.envelope import UpperEnvelope
from repro.core.normalize import simplify, to_nnf
from repro.core.predicates import (
    Predicate,
    Value,
    conjunction,
    disjunction,
    negate,
)
from repro.ir import intern
from repro.mining.rules import RuleSetModel


def rule_envelope(
    model: RuleSetModel,
    class_label: Value,
    tighten: bool = False,
    simplify_result: bool = True,
) -> UpperEnvelope:
    """Envelope of ``class_label`` from rule bodies.

    Without ``tighten`` this is the plain Section 3.1 disjunction (an upper
    envelope, possibly loose).  With ``tighten`` the sequential resolution
    order is encoded, yielding an exact envelope.
    """
    started = time.perf_counter()
    disjuncts: list[Predicate] = []
    blockers: list[Predicate] = []  # bodies of earlier other-class rules
    for rule in model.rules:
        body = rule.body_predicate()
        if rule.head == class_label:
            if tighten and blockers:
                guarded = conjunction(
                    [body] + [to_nnf(negate(b)) for b in blockers]
                )
                disjuncts.append(guarded)
            else:
                disjuncts.append(body)
        else:
            blockers.append(body)
    if class_label == model.default_label:
        # Any row matching no rule at all falls through to the default.
        fallthrough = conjunction(
            to_nnf(negate(rule.body_predicate())) for rule in model.rules
        )
        disjuncts.append(fallthrough)
    predicate = disjunction(disjuncts)
    if simplify_result:
        predicate = simplify(predicate)
    predicate = intern(predicate)
    return UpperEnvelope(
        model_name=model.name,
        model_kind=model.kind,
        class_label=class_label,
        predicate=predicate,
        exact=tighten,
        seconds=time.perf_counter() - started,
        derivation="rule-bodies",
    )


def rule_envelopes(
    model: RuleSetModel, tighten: bool = False, simplify_result: bool = True
) -> dict[Value, UpperEnvelope]:
    """Envelopes for every class label of the rule set."""
    return {
        label: rule_envelope(
            model, label, tighten=tighten, simplify_result=simplify_result
        )
        for label in model.class_labels
    }
