"""Additive per-dimension score models — the common shape behind Section 3.

The paper's key structural observation (Sections 3.2 and 3.3) is that naive
Bayes, centroid-based clustering, and independent-dimension model-based
clustering all predict

    argmax_k  bias_k + sum_d score_k(d, x_d)

(for naive Bayes, ``bias = log Pr(c_k)`` and ``score = log Pr(x_d | c_k)``;
for weighted-Euclidean clustering, ``bias = 0`` and
``score = -w_dk (x_d - c_dk)^2``; for diagonal Gaussian mixtures,
``bias = log tau_k`` and ``score = log N(x_d)``).  The top-down envelope
algorithm only needs per-``(class, dimension, member)`` score *bounds*, so it
is written once against this abstraction.

For discrete attributes the bound is a point (``lo == hi``).  For continuous
attributes discretized into bins, the score of a raw value varies within the
bin, so clustering adapters report the interval
``[min over the bin, max over the bin]`` — this keeps envelopes sound with
respect to the model's behaviour on *raw* values, not just on bin
representatives.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.core.predicates import Value
from repro.core.regions import AttributeSpace
from repro.exceptions import EnvelopeError


class ScoreTable:
    """Dense per-(class, dimension, member) score bounds plus biases.

    * ``lo[d]`` / ``hi[d]`` — arrays of shape ``(K, n_d)``,
    * ``biases`` — shape ``(K,)``,
    * ``tie_ranks`` — shape ``(K,)``; when two classes reach the same total
      score the one with the smaller rank wins (naive Bayes: the class with
      the larger prior, per Section 3.2.1).
    """

    def __init__(
        self,
        space: AttributeSpace,
        class_labels: Sequence[Value],
        biases: np.ndarray,
        lo: Sequence[np.ndarray],
        hi: Sequence[np.ndarray],
        tie_ranks: Sequence[int] | None = None,
        diff_lo: Sequence[np.ndarray] | None = None,
        diff_hi: Sequence[np.ndarray] | None = None,
    ) -> None:
        n_classes = len(class_labels)
        biases = np.asarray(biases, dtype=float)
        if biases.shape != (n_classes,):
            raise EnvelopeError("biases must have one entry per class")
        if len(lo) != space.n_dims or len(hi) != space.n_dims:
            raise EnvelopeError("score tables must cover every dimension")
        for dim, lo_d, hi_d in zip(space.dimensions, lo, hi):
            expected = (n_classes, dim.size)
            if lo_d.shape != expected or hi_d.shape != expected:
                raise EnvelopeError(
                    f"score table for {dim.name!r} has shape "
                    f"{lo_d.shape}/{hi_d.shape}, expected {expected}"
                )
            if np.any(lo_d > hi_d):
                raise EnvelopeError(
                    f"score table for {dim.name!r} has lo > hi entries"
                )
        self.space = space
        self.class_labels = tuple(class_labels)
        self.biases = biases
        self.lo = [np.asarray(t, dtype=float) for t in lo]
        self.hi = [np.asarray(t, dtype=float) for t in hi]
        if tie_ranks is None:
            tie_ranks = list(range(n_classes))
        if sorted(tie_ranks) != list(range(n_classes)):
            raise EnvelopeError("tie_ranks must be a permutation of 0..K-1")
        self.tie_ranks = tuple(tie_ranks)
        if (diff_lo is None) != (diff_hi is None):
            raise EnvelopeError(
                "diff_lo and diff_hi must be provided together"
            )
        if diff_lo is not None and diff_hi is not None:
            if len(diff_lo) != space.n_dims or len(diff_hi) != space.n_dims:
                raise EnvelopeError("diff tables must cover every dimension")
            for dim, table_lo, table_hi in zip(
                space.dimensions, diff_lo, diff_hi
            ):
                expected = (n_classes, n_classes, dim.size)
                if table_lo.shape != expected or table_hi.shape != expected:
                    raise EnvelopeError(
                        f"diff table for {dim.name!r} has shape "
                        f"{table_lo.shape}/{table_hi.shape}, "
                        f"expected {expected}"
                    )
            self._diff_lo = [np.asarray(t, dtype=float) for t in diff_lo]
            self._diff_hi = [np.asarray(t, dtype=float) for t in diff_hi]
        else:
            self._diff_lo = None
            self._diff_hi = None
        self._diff_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._mid_cache: dict[int, np.ndarray] = {}

    @property
    def n_classes(self) -> int:
        return len(self.class_labels)

    def mid(self, dim: int) -> np.ndarray:
        """Cached mid-point scores of one dimension, sanitized for heuristics.

        Infinities (unbounded clustering bins) are clamped so the entropy
        and mass heuristics stay finite; bound computations never use these
        values.
        """
        cached = self._mid_cache.get(dim)
        if cached is not None:
            return cached
        mids = (self.lo[dim] + self.hi[dim]) / 2.0
        if not np.isfinite(mids).all():
            mids = np.nan_to_num(mids, nan=-50.0, posinf=50.0, neginf=-50.0)
        self._mid_cache[dim] = mids
        return mids

    def has_exact_diffs(self) -> bool:
        """Whether closed-form pairwise difference bounds were supplied."""
        return self._diff_lo is not None

    def diff_bounds(self, dim: int) -> tuple[np.ndarray, np.ndarray]:
        """Bounds on ``score_k - score_j`` per member of one dimension.

        Returns two ``(K, K, n_d)`` arrays ``(lo, hi)`` with entry
        ``[k, j, m]`` bounding the difference for any raw value in member
        ``m``.  When no exact diff tables were supplied, falls back to the
        conservative combination ``[lo_k - hi_j, hi_k - lo_j]`` — which is
        what the paper's separate min/max bounds implicitly use.

        Pairwise difference bounds are the K-class generalization of the
        paper's Lemma 3.2 two-class ratio trick: the worst case of a
        *difference* decomposes per dimension exactly, so MUST-WIN /
        MUST-LOSE against each single opponent becomes exact.  They are also
        what makes clustering envelopes effective: over an unbounded outer
        bin both scores diverge to ``-inf`` but their difference stays
        informative.
        """
        if self._diff_lo is not None and self._diff_hi is not None:
            return self._diff_lo[dim], self._diff_hi[dim]
        cached = self._diff_cache.get(dim)
        if cached is not None:
            return cached
        lo_d = self.lo[dim]
        hi_d = self.hi[dim]
        diff_lo = lo_d[:, None, :] - hi_d[None, :, :]
        diff_hi = hi_d[:, None, :] - lo_d[None, :, :]
        # lo - hi can produce inf - inf = NaN for doubly-unbounded scores;
        # NaN would poison sums, so fall back to the trivial bound.
        np.nan_to_num(diff_lo, copy=False, nan=-np.inf)
        np.nan_to_num(diff_hi, copy=False, nan=np.inf)
        self._diff_cache[dim] = (diff_lo, diff_hi)
        return diff_lo, diff_hi

    def is_exact(self) -> bool:
        """True when every score bound is a point (discrete attributes)."""
        return all(
            np.array_equal(lo_d, hi_d) for lo_d, hi_d in zip(self.lo, self.hi)
        )

    def class_index(self, label: Value) -> int:
        try:
            return self.class_labels.index(label)
        except ValueError:
            raise EnvelopeError(
                f"model has no class labelled {label!r}; "
                f"labels are {self.class_labels}"
            ) from None

    def cell_scores(self, cell: Sequence[int]) -> np.ndarray:
        """Exact per-class scores for a grid cell.

        Only meaningful for exact tables; interval tables raise, since a cell
        does not pin down a single raw value.
        """
        if not self.is_exact():
            raise EnvelopeError(
                "cell_scores is undefined for interval score tables"
            )
        scores = self.biases.copy()
        for lo_d, member in zip(self.lo, cell):
            scores = scores + lo_d[:, member]
        return scores

    def predict_cell(self, cell: Sequence[int]) -> int:
        """Winning class of a cell under exact scores with tie-breaking."""
        scores = self.cell_scores(cell)
        best = np.flatnonzero(scores == scores.max())
        if len(best) == 1:
            return int(best[0])
        return int(min(best, key=lambda k: self.tie_ranks[k]))

    def two_class_ratio(self, target: int) -> "ScoreTable":
        """The Lemma 3.2 transform for K=2.

        Scores become the per-member log-ratio against the other class
        (``Pr'(v|c_k) = Pr(v|c_k) / Pr(v|c_other)``); the resulting bounds
        make MUST-WIN / MUST-LOSE *exact* rather than merely sound, because
        with a single opponent the worst case over a region is attained at an
        actual cell.  Interval tables combine conservatively
        (``lo_k - hi_j``, ``hi_k - lo_j``).
        """
        if self.n_classes != 2:
            raise EnvelopeError(
                "the two-class ratio transform needs exactly 2 classes"
            )
        other = 1 - target
        lo: list[np.ndarray] = []
        hi: list[np.ndarray] = []
        for lo_d, hi_d in zip(self.lo, self.hi):
            ratio_lo = np.empty_like(lo_d)
            ratio_hi = np.empty_like(hi_d)
            ratio_lo[target] = lo_d[target] - hi_d[other]
            ratio_hi[target] = hi_d[target] - lo_d[other]
            ratio_lo[other] = np.zeros(lo_d.shape[1])
            ratio_hi[other] = np.zeros(hi_d.shape[1])
            lo.append(ratio_lo)
            hi.append(ratio_hi)
        biases_full = np.zeros(2)
        biases_full[target] = self.biases[target] - self.biases[other]
        return ScoreTable(
            self.space,
            self.class_labels,
            biases_full,
            lo,
            hi,
            tie_ranks=self.tie_ranks,
        )


def quadratic_range(
    a: float,
    b: float,
    c: float,
    low: float | None,
    high: float | None,
) -> tuple[float, float]:
    """Range of ``a*x^2 + b*x + c`` over a (possibly unbounded) interval.

    Used by the clustering adapters to bound per-dimension score
    *differences* in closed form: for weighted Euclidean distances and
    diagonal Gaussians the difference of two per-dimension scores is a
    quadratic in the raw attribute value.
    """
    candidates: list[float] = []
    if low is not None:
        candidates.append(a * low * low + b * low + c)
    if high is not None:
        candidates.append(a * high * high + b * high + c)
    minimum = math.inf
    maximum = -math.inf
    if candidates:
        minimum = min(candidates)
        maximum = max(candidates)
    # Interior vertex of the parabola.
    if a != 0.0:
        vertex = -b / (2.0 * a)
        inside = (low is None or vertex >= low) and (
            high is None or vertex <= high
        )
        if inside:
            value = a * vertex * vertex + b * vertex + c
            minimum = min(minimum, value)
            maximum = max(maximum, value)
    # Unbounded ends: the dominant term decides the limit.
    if low is None:
        if a > 0.0 or (a == 0.0 and b < 0.0):
            maximum = math.inf
        elif a < 0.0 or (a == 0.0 and b > 0.0):
            minimum = -math.inf
        elif a == 0.0 and b == 0.0:
            minimum = min(minimum, c)
            maximum = max(maximum, c)
    if high is None:
        if a > 0.0 or (a == 0.0 and b > 0.0):
            maximum = math.inf
        elif a < 0.0 or (a == 0.0 and b < 0.0):
            minimum = -math.inf
        elif a == 0.0 and b == 0.0:
            minimum = min(minimum, c)
            maximum = max(maximum, c)
    if minimum > maximum:
        # Degenerate constant on a one-point interval.
        minimum, maximum = maximum, minimum
    return minimum, maximum


def _squared_distance_range(
    low: float | None, high: float | None, center: float
) -> tuple[float, float]:
    """Range of ``(x - center)^2`` for ``x`` in a (possibly unbounded) bin."""
    if low is None and high is None:
        return 0.0, math.inf
    if low is None:
        assert high is not None
        if center >= high:
            return (high - center) ** 2, math.inf
        return 0.0, math.inf
    if high is None:
        if center <= low:
            return (low - center) ** 2, math.inf
        return 0.0, math.inf
    d_low = (low - center) ** 2
    d_high = (high - center) ** 2
    if low <= center <= high:
        return 0.0, max(d_low, d_high)
    return min(d_low, d_high), max(d_low, d_high)
