"""Exact upper envelopes for decision trees (paper Section 3.1).

"We extract the upper envelope for a class c by ANDing the test conditions
on the path from the root to each leaf of the class and ORing them together.
Clearly, this envelope is exact."
"""

from __future__ import annotations

import time

from repro.core.envelope import UpperEnvelope
from repro.core.normalize import simplify
from repro.core.predicates import Predicate, Value, conjunction, disjunction
from repro.exceptions import EnvelopeError
from repro.ir import intern
from repro.mining.decision_tree import DecisionTreeModel, iter_leaves


def tree_envelope(
    model: DecisionTreeModel,
    class_label: Value,
    simplify_result: bool = True,
) -> UpperEnvelope:
    """The exact envelope of ``class_label``: OR over its leaves' paths.

    ``simplify_result`` folds redundant comparisons accumulated along a path
    (e.g. ``age > 30 AND age > 50``) into minimal range atoms; the envelope
    stays exact because simplification is meaning-preserving.

    A label the tree never predicts gets the FALSE envelope — the optimizer
    then answers the query with a constant scan.
    """
    if class_label not in model.class_labels:
        # Permitted: the catalog derives envelopes for the full declared
        # label domain, which may exceed the labels surviving in the tree.
        pass
    started = time.perf_counter()
    paths: list[Predicate] = []
    for conditions, leaf in iter_leaves(model.root):
        if leaf.label == class_label:
            paths.append(conjunction(conditions))
    predicate = disjunction(paths)
    if simplify_result:
        predicate = simplify(predicate)
    predicate = intern(predicate)
    return UpperEnvelope(
        model_name=model.name,
        model_kind=model.kind,
        class_label=class_label,
        predicate=predicate,
        exact=True,
        seconds=time.perf_counter() - started,
        derivation="tree-paths",
    )


def tree_envelopes(
    model: DecisionTreeModel, simplify_result: bool = True
) -> dict[Value, UpperEnvelope]:
    """Envelopes for every class label of the tree."""
    if not model.class_labels:
        raise EnvelopeError("decision tree has no class labels")
    return {
        label: tree_envelope(model, label, simplify_result=simplify_result)
        for label in model.class_labels
    }
