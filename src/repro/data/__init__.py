"""Synthetic replicas of the paper's evaluation datasets (Table 2)."""

from repro.data.expansion import doubled_size, doubling_factor, expand_rows
from repro.data.generators import Dataset, class_label, generate, generate_all
from repro.data.specs import (
    DATASETS,
    AttributeKind,
    AttributeSpec,
    DatasetSpec,
    dataset_spec,
)

__all__ = [
    "AttributeKind",
    "AttributeSpec",
    "DATASETS",
    "Dataset",
    "DatasetSpec",
    "class_label",
    "dataset_spec",
    "doubled_size",
    "doubling_factor",
    "expand_rows",
    "generate",
    "generate_all",
]
