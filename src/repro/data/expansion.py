"""Repeated-doubling test-set expansion (paper Section 5.1).

"We generated the test data set ... by repeatedly doubling all available
data until the total number of rows in the data set exceeded 1 million rows.
This way, the data distribution of each column (and hence selectivity of
predicates on the column) in the test data set is the same as in the
training data set."

:func:`expand_rows` streams the doubled rows so million-row tables can be
loaded into SQLite without materializing them in memory;
:func:`doubled_size` reports the row count the doubling produces.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from repro.exceptions import SchemaError
from repro.mining.base import Row


def doubling_factor(base: int, target: int) -> int:
    """Number of copies (a power of two) needed to exceed ``target`` rows."""
    if base < 1:
        raise SchemaError("base row count must be >= 1")
    if target < 1:
        raise SchemaError("target row count must be >= 1")
    copies = 1
    while base * copies < target:
        copies *= 2
    return copies


def doubled_size(base: int, target: int) -> int:
    """Total rows after repeated doubling past ``target``."""
    return base * doubling_factor(base, target)


def expand_rows(rows: Sequence[Row], target: int) -> Iterator[Row]:
    """Yield the training rows repeatedly doubled past ``target`` rows.

    Row dictionaries are yielded by reference (they are treated as
    immutable throughout the library), so expansion is O(1) extra memory.
    """
    copies = doubling_factor(len(rows), target)
    for _ in range(copies):
        yield from rows
