"""Synthetic dataset generation for the Table 2 replicas.

Each :class:`~repro.data.specs.DatasetSpec` names a generator:

* ``class_conditional`` — the generic replica: classes are drawn from the
  spec's priors, then each attribute is sampled from a class-conditional
  distribution (per-class multinomials for discrete kinds, per-class
  Gaussians for numeric kinds).  The ``separation`` knob controls how
  distinct the class-conditional distributions are, i.e. how learnable the
  classes are and how region-like they look to the envelope algorithms.
* ``balance_scale`` — the deterministic torque rule of the original UCI
  Balance-Scale data.
* ``parity`` — Parity5+5: the label is the parity of bits 0..4, bits 5..9
  are irrelevant (the classic hard case for naive Bayes, which is why the
  paper's NB results on Parity are weak — ours reproduce that).
* ``noisy_threshold`` — the Chess (kr-vs-kp) replica: a fixed random linear
  threshold over 36 binary features with label noise.

All generation is vectorized numpy on a seeded generator; the same
``(name, train_size, seed)`` always produces the same rows.
"""

from __future__ import annotations

import zlib
from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.predicates import Value
from repro.data.specs import (
    AttributeKind,
    AttributeSpec,
    DatasetSpec,
    dataset_spec,
)
from repro.exceptions import SchemaError
from repro.mining.base import Row


@dataclass(frozen=True)
class Dataset:
    """A generated dataset: spec plus materialized training rows."""

    spec: DatasetSpec
    seed: int
    train_rows: tuple[Row, ...]

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def feature_columns(self) -> tuple[str, ...]:
        return self.spec.feature_columns

    @property
    def target_column(self) -> str:
        return self.spec.target_column

    @property
    def class_labels(self) -> tuple[Value, ...]:
        return tuple(
            sorted({row[self.target_column] for row in self.train_rows}, key=str)
        )


def class_label(index: int) -> str:
    """Stable class-label naming used by the generic generator."""
    return f"class_{index:02d}"


def generate(
    name: str | DatasetSpec,
    train_size: int | None = None,
    seed: int = 0,
) -> Dataset:
    """Generate a dataset by name (or explicit spec).

    ``train_size`` overrides the spec's training size — the benchmarks use
    this to scale the heavyweight datasets (Shuttle, KDD) down while keeping
    their schema and skew.
    """
    spec = name if isinstance(name, DatasetSpec) else dataset_spec(name)
    size = train_size if train_size is not None else spec.train_size
    if size < 1:
        raise SchemaError("train_size must be >= 1")
    try:
        generator = _GENERATORS[spec.generator]
    except KeyError:
        raise SchemaError(
            f"dataset {spec.name!r} names unknown generator "
            f"{spec.generator!r}"
        ) from None
    rng = np.random.default_rng(_dataset_seed(spec.name, seed))
    columns = generator(spec, size, rng)
    rows = _columns_to_rows(spec, columns, size)
    return Dataset(spec=spec, seed=seed, train_rows=tuple(rows))


def _dataset_seed(name: str, seed: int) -> int:
    """Mix the dataset name into the seed so datasets are decorrelated.

    Uses crc32 rather than ``hash`` so the same ``(name, seed)`` produces
    the same data in every process (``hash`` is salted per interpreter).
    """
    return (zlib.crc32(name.encode()) & 0xFFFF_FFFF) ^ (
        seed * 0x9E37_79B9 & 0xFFFF_FFFF
    )


def _columns_to_rows(
    spec: DatasetSpec,
    columns: dict[str, list[Value]],
    size: int,
) -> list[Row]:
    names = list(spec.feature_columns) + [spec.target_column]
    for column in names:
        if column not in columns or len(columns[column]) != size:
            raise SchemaError(
                f"generator for {spec.name!r} produced a bad column "
                f"{column!r}"
            )
    series = [columns[c] for c in names]
    return [dict(zip(names, values)) for values in zip(*series)]


# ---------------------------------------------------------------------------
# Generic class-conditional generator
# ---------------------------------------------------------------------------


def _normalized_priors(spec: DatasetSpec, rng: np.random.Generator) -> np.ndarray:
    if spec.class_priors:
        priors = np.asarray(spec.class_priors, dtype=float)
    else:
        # Near-uniform with mild random variation so no two classes have
        # identical selectivity.
        priors = 1.0 + 0.3 * rng.random(spec.n_classes)
    return priors / priors.sum()


def _sample_class_conditional(
    spec: DatasetSpec, size: int, rng: np.random.Generator
) -> dict[str, list[Value]]:
    """Signature-attribute class structure.

    UCI-style classes are concentrated in a few *signature* attributes
    (sensor thresholds in Shuttle, a handful of shape moments in Letter)
    and look like background noise elsewhere.  Each class therefore draws a
    small signature set: on those attributes its values sit in a narrow,
    class-specific band; every other attribute follows one background
    distribution shared by all classes.  This is what makes the original
    datasets amenable to axis-aligned envelopes — and what the replicas
    must preserve for the Section 5 experiments to exercise the same
    regime.
    """
    priors = _normalized_priors(spec, rng)
    assignments = rng.choice(spec.n_classes, size=size, p=priors)
    columns: dict[str, list[Value]] = {
        spec.target_column: [class_label(k) for k in assignments.tolist()]
    }
    n_attrs = len(spec.attributes)
    signature_size = max(1, min(3, n_attrs // 2))
    signatures = [
        set(rng.choice(n_attrs, size=signature_size, replace=False).tolist())
        for _ in range(spec.n_classes)
    ]
    for position, attribute in enumerate(spec.attributes):
        signature_classes = {
            k for k in range(spec.n_classes) if position in signatures[k]
        }
        columns[attribute.name] = _sample_attribute(
            attribute, assignments, spec, rng, signature_classes
        )
    return columns


def _sample_attribute(
    attribute: AttributeSpec,
    assignments: np.ndarray,
    spec: DatasetSpec,
    rng: np.random.Generator,
    signature_classes: set[int],
) -> list[Value]:
    size = len(assignments)
    separation = spec.separation

    if attribute.kind is AttributeKind.BINARY:
        # Background rate shared by all classes; signature classes commit
        # strongly to one of the two values.
        background = rng.uniform(0.35, 0.65)
        rates = np.full(spec.n_classes, background)
        for k in signature_classes:
            rates[k] = 0.06 if rng.random() < 0.5 else 0.94
        draws = rng.random(size) < rates[assignments]
        return draws.astype(int).tolist()

    if attribute.kind in (AttributeKind.CATEGORICAL, AttributeKind.ORDINAL):
        cardinality = attribute.cardinality
        background = rng.dirichlet(np.full(cardinality, 4.0))
        tables = np.tile(background, (spec.n_classes, 1))
        for k in signature_classes:
            # A sharp class-specific mode over one or two members.
            sharp = rng.dirichlet(np.full(cardinality, 0.25))
            tables[k] = 0.9 * sharp + 0.1 * background
        values = np.empty(size, dtype=int)
        for k in range(spec.n_classes):
            mask = assignments == k
            count = int(mask.sum())
            if count:
                values[mask] = rng.choice(
                    cardinality, size=count, p=tables[k]
                )
        if attribute.kind is AttributeKind.CATEGORICAL:
            domain = [f"{attribute.name}_v{i}" for i in range(cardinality)]
            return [domain[v] for v in values.tolist()]
        return (values + 1).tolist()  # ordinal domains start at 1

    # Numeric kinds: shared wide background, narrow class bands on
    # signature attributes.
    span = attribute.high - attribute.low
    background_mean = attribute.low + span * rng.uniform(0.3, 0.7)
    background_sigma = span / 4.0
    means = np.full(spec.n_classes, background_mean)
    sigmas = np.full(spec.n_classes, background_sigma)
    for k in signature_classes:
        means[k] = attribute.low + span * rng.random()
        sigmas[k] = span / (4.0 * separation + 2.0)
    raw = (
        means[assignments]
        + sigmas[assignments] * rng.standard_normal(size)
    )
    clipped = np.clip(raw, attribute.low, attribute.high)
    if attribute.kind is AttributeKind.INTEGER:
        return np.rint(clipped).astype(int).tolist()
    return np.round(clipped, 4).tolist()


# ---------------------------------------------------------------------------
# Deterministic / structured generators
# ---------------------------------------------------------------------------


def _sample_balance_scale(
    spec: DatasetSpec, size: int, rng: np.random.Generator
) -> dict[str, list[Value]]:
    values = {
        name: rng.integers(1, 6, size=size) for name in spec.feature_columns
    }
    left = values["left_weight"] * values["left_distance"]
    right = values["right_weight"] * values["right_distance"]
    labels = np.where(left > right, "L", np.where(right > left, "R", "B"))
    columns: dict[str, list[Value]] = {
        name: array.tolist() for name, array in values.items()
    }
    columns[spec.target_column] = labels.tolist()
    return columns


def _sample_parity(
    spec: DatasetSpec, size: int, rng: np.random.Generator
) -> dict[str, list[Value]]:
    bits = rng.integers(0, 2, size=(size, len(spec.feature_columns)))
    parity = bits[:, :5].sum(axis=1) % 2
    columns: dict[str, list[Value]] = {
        name: bits[:, i].tolist()
        for i, name in enumerate(spec.feature_columns)
    }
    columns[spec.target_column] = [
        "odd" if p else "even" for p in parity.tolist()
    ]
    return columns


def _sample_noisy_threshold(
    spec: DatasetSpec, size: int, rng: np.random.Generator
) -> dict[str, list[Value]]:
    n_features = len(spec.feature_columns)
    bits = rng.integers(0, 2, size=(size, n_features))
    weights = rng.standard_normal(n_features)
    # Only a third of the features carry signal, as in kr-vs-kp where a few
    # board predicates dominate.
    mask = np.zeros(n_features)
    signal = rng.choice(n_features, size=max(3, n_features // 3), replace=False)
    mask[signal] = 1.0
    scores = (bits - 0.5) @ (weights * mask)
    noise = 0.15 * rng.standard_normal(size)
    labels = np.where(scores + noise > 0, "won", "nowin")
    columns: dict[str, list[Value]] = {
        name: bits[:, i].tolist()
        for i, name in enumerate(spec.feature_columns)
    }
    columns[spec.target_column] = labels.tolist()
    return columns


def _sample_grid_classes(
    spec: DatasetSpec, size: int, rng: np.random.Generator
) -> dict[str, list[Value]]:
    """Many-class replica: classes live on a grid of a few anchor attributes.

    Used for Letter: each class occupies a compact cell in the space of the
    first four numeric attributes (as letter classes occupy compact regions
    of a few dominant shape moments), while the remaining attributes are
    shared background.  This is the structure that gives the original
    dataset its high plan-change bars in the paper's Figures 3-5: every
    class is a small, axis-describable region.
    """
    priors = _normalized_priors(spec, rng)
    assignments = rng.choice(spec.n_classes, size=size, p=priors)
    columns: dict[str, list[Value]] = {
        spec.target_column: [class_label(k) for k in assignments.tolist()]
    }
    n_anchors = min(4, max(2, len(spec.attributes) // 2))
    grid = int(np.ceil(spec.n_classes ** (1.0 / n_anchors)))
    # Class k's grid coordinates in the anchor subspace.
    coordinates = np.empty((spec.n_classes, n_anchors), dtype=int)
    for k in range(spec.n_classes):
        remainder = k
        for a in range(n_anchors):
            coordinates[k, a] = remainder % grid
            remainder //= grid
    centers: list[np.ndarray] = []
    sigmas: list[float] = []
    for a in range(n_anchors):
        attribute = spec.attributes[a]
        span = attribute.high - attribute.low
        centers.append(
            attribute.low + span * (coordinates[:, a] + 0.5) / grid
        )
        sigmas.append(span / (3.5 * grid))
    for position, attribute in enumerate(spec.attributes):
        if position < n_anchors:
            raw = (
                centers[position][assignments]
                + sigmas[position] * rng.standard_normal(size)
            )
        else:
            # Class-independent shared background: the anchors carry all of
            # the class signal.  (Even mild class drift here would defeat
            # axis-aligned envelope derivation — the per-dimension corner
            # slack of a dozen weakly-informative attributes adds up to
            # more than the anchors' log-probability penalty.)
            span = attribute.high - attribute.low
            raw = (
                attribute.low
                + span * 0.5
                + (span / 4.0) * rng.standard_normal(size)
            )
        clipped = np.clip(raw, attribute.low, attribute.high)
        if attribute.kind is AttributeKind.INTEGER:
            columns[attribute.name] = np.rint(clipped).astype(int).tolist()
        else:
            columns[attribute.name] = np.round(clipped, 4).tolist()
    return columns


def _sample_network_traffic(
    spec: DatasetSpec, size: int, rng: np.random.Generator
) -> dict[str, list[Value]]:
    """KDD-Cup-99 replica: attack classes follow protocol/service.

    In the real data the big attack classes are nearly determined by a few
    categorical columns (smurf = icmp/ecr_i, neptune = tcp SYN floods, ...)
    plus traffic-volume bands.  The replica assigns each class a dominant
    protocol and service (with small leakage), plus class-banded ``count``
    and ``src_bytes``; the remaining columns are shared background.
    """
    priors = _normalized_priors(spec, rng)
    assignments = rng.choice(spec.n_classes, size=size, p=priors)
    columns: dict[str, list[Value]] = {
        spec.target_column: [class_label(k) for k in assignments.tolist()]
    }
    by_name = {a.name: a for a in spec.attributes}
    protocol_domain = [
        f"protocol_v{i}" for i in range(by_name["protocol"].cardinality)
    ]
    service_domain = [
        f"service_v{i}" for i in range(by_name["service"].cardinality)
    ]
    class_protocol = rng.integers(0, len(protocol_domain), spec.n_classes)
    class_service = (
        np.arange(spec.n_classes) * 7 + rng.integers(0, 3, spec.n_classes)
    ) % len(service_domain)
    leak = rng.random(size)
    protocols = np.where(
        leak < 0.92,
        class_protocol[assignments],
        rng.integers(0, len(protocol_domain), size),
    )
    services = np.where(
        leak < 0.88,
        class_service[assignments],
        rng.integers(0, len(service_domain), size),
    )
    for position, attribute in enumerate(spec.attributes):
        if attribute.name == "protocol":
            columns["protocol"] = [protocol_domain[p] for p in protocols.tolist()]
            continue
        if attribute.name == "service":
            columns["service"] = [service_domain[s] for s in services.tolist()]
            continue
        if attribute.name in ("count", "src_bytes"):
            span = attribute.high - attribute.low
            band = attribute.low + span * rng.random(spec.n_classes)
            raw = band[assignments] + (span / 10.0) * rng.standard_normal(size)
            columns[attribute.name] = np.round(
                np.clip(raw, attribute.low, attribute.high), 4
            ).tolist()
            continue
        columns[attribute.name] = _sample_attribute(
            attribute, assignments, spec, rng, signature_classes=set()
        )
    return columns


_GENERATORS: dict[
    str, Callable[[DatasetSpec, int, np.random.Generator], dict[str, list[Value]]]
] = {
    "class_conditional": _sample_class_conditional,
    "balance_scale": _sample_balance_scale,
    "parity": _sample_parity,
    "noisy_threshold": _sample_noisy_threshold,
    "grid_classes": _sample_grid_classes,
    "network_traffic": _sample_network_traffic,
}


def generate_all(
    train_scale: float = 1.0,
    max_train: int | None = None,
    seed: int = 0,
    names: Sequence[str] | None = None,
) -> list[Dataset]:
    """Generate every (or the named) Table 2 dataset, optionally scaled."""
    from repro.data.specs import DATASETS

    datasets = []
    for name in names if names is not None else DATASETS:
        spec = dataset_spec(name)
        size = max(1, int(spec.train_size * train_scale))
        if max_train is not None:
            size = min(size, max_train)
        datasets.append(generate(spec, train_size=size, seed=seed))
    return datasets
