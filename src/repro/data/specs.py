"""Specifications of the ten evaluation datasets (paper Table 2).

The paper evaluates on 9 UCI datasets plus KDD-Cup-99.  This environment
has no network access, so each dataset is replaced by a *synthetic replica*
that preserves what the experiments actually exercise (see DESIGN.md):

* the attribute schema shape — how many attributes, of which kinds
  (binary / categorical / ordinal / continuous), with which domain sizes,
* the number of classes and clusters (Table 2's columns),
* the class-prior skew — rare classes are what make envelope predicates
  selective, so replicas of skewed datasets (Hypothyroid, Shuttle, KDD)
  use the published class-distribution shapes,
* the training-set size, and the repeated-doubling test expansion.

Two datasets are deterministic functions in the original and are replicated
exactly: Balance-Scale (torque comparison) and Parity5+5 (parity of five of
ten bits).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.exceptions import SchemaError


class AttributeKind(enum.Enum):
    """Schema kinds used by the synthetic generators."""

    BINARY = "binary"          # integer 0/1
    CATEGORICAL = "categorical"  # strings from a small domain
    ORDINAL = "ordinal"        # small-domain integers with order
    INTEGER = "integer"        # wider-range integers
    REAL = "real"              # continuous


@dataclass(frozen=True)
class AttributeSpec:
    """One attribute of a synthetic dataset."""

    name: str
    kind: AttributeKind
    #: Domain size for BINARY/CATEGORICAL/ORDINAL/INTEGER kinds.
    cardinality: int = 2
    #: Value range for INTEGER/REAL kinds.
    low: float = 0.0
    high: float = 1.0

    def __post_init__(self) -> None:
        if self.kind in (
            AttributeKind.CATEGORICAL,
            AttributeKind.ORDINAL,
        ) and self.cardinality < 2:
            raise SchemaError(
                f"attribute {self.name!r} needs cardinality >= 2"
            )
        if self.low >= self.high and self.kind in (
            AttributeKind.INTEGER,
            AttributeKind.REAL,
        ):
            raise SchemaError(f"attribute {self.name!r} has an empty range")


@dataclass(frozen=True)
class DatasetSpec:
    """Schema + size + skew description of one Table 2 dataset."""

    name: str
    attributes: tuple[AttributeSpec, ...]
    n_classes: int
    n_clusters: int
    train_size: int
    #: Paper's Table 2 test size, in millions of rows.
    paper_test_size_millions: float
    #: Class priors (length ``n_classes``); empty means near-uniform.
    class_priors: tuple[float, ...] = ()
    #: Generator registered in :mod:`repro.data.generators`.
    generator: str = "class_conditional"
    #: How strongly class-conditional distributions separate classes.
    separation: float = 2.0
    notes: str = ""

    def __post_init__(self) -> None:
        if not self.attributes:
            raise SchemaError(f"dataset {self.name!r} has no attributes")
        if self.class_priors and len(self.class_priors) != self.n_classes:
            raise SchemaError(
                f"dataset {self.name!r}: priors must match n_classes"
            )

    @property
    def feature_columns(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.attributes)

    @property
    def target_column(self) -> str:
        return "label"


def _binary_attrs(prefix: str, count: int) -> tuple[AttributeSpec, ...]:
    return tuple(
        AttributeSpec(f"{prefix}{i}", AttributeKind.BINARY)
        for i in range(count)
    )


ANNEAL_U = DatasetSpec(
    name="anneal_u",
    attributes=(
        AttributeSpec("family", AttributeKind.CATEGORICAL, cardinality=5),
        AttributeSpec("product_type", AttributeKind.CATEGORICAL, cardinality=3),
        AttributeSpec("steel", AttributeKind.CATEGORICAL, cardinality=6),
        AttributeSpec("hardness", AttributeKind.ORDINAL, cardinality=5),
        AttributeSpec("condition", AttributeKind.CATEGORICAL, cardinality=3),
        AttributeSpec("formability", AttributeKind.ORDINAL, cardinality=5),
        AttributeSpec("carbon", AttributeKind.REAL, low=0.0, high=1.0),
        AttributeSpec("strength", AttributeKind.REAL, low=0.0, high=900.0),
        AttributeSpec("thickness", AttributeKind.REAL, low=0.2, high=4.0),
        AttributeSpec("width", AttributeKind.REAL, low=20.0, high=1700.0),
    ),
    n_classes=6,
    n_clusters=6,
    train_size=598,
    paper_test_size_millions=1.83,
    class_priors=(0.60, 0.18, 0.10, 0.06, 0.04, 0.02),
    notes="Steel annealing; skewed classes, mixed attribute kinds.",
)

BALANCE_SCALE = DatasetSpec(
    name="balance_scale",
    attributes=(
        AttributeSpec("left_weight", AttributeKind.ORDINAL, cardinality=5),
        AttributeSpec("left_distance", AttributeKind.ORDINAL, cardinality=5),
        AttributeSpec("right_weight", AttributeKind.ORDINAL, cardinality=5),
        AttributeSpec("right_distance", AttributeKind.ORDINAL, cardinality=5),
    ),
    n_classes=3,
    n_clusters=5,
    train_size=416,
    paper_test_size_millions=1.28,
    generator="balance_scale",
    notes="Deterministic torque comparison: L, B, R.",
)

CHESS = DatasetSpec(
    name="chess",
    attributes=_binary_attrs("b", 36),
    n_classes=2,
    n_clusters=5,
    train_size=2130,
    paper_test_size_millions=1.63,
    generator="noisy_threshold",
    class_priors=(0.52, 0.48),
    notes="kr-vs-kp replica: 36 binary features, near-balanced classes.",
)

DIABETES = DatasetSpec(
    name="diabetes",
    attributes=(
        AttributeSpec("pregnancies", AttributeKind.INTEGER, cardinality=17, low=0, high=17),
        AttributeSpec("glucose", AttributeKind.REAL, low=40.0, high=200.0),
        AttributeSpec("blood_pressure", AttributeKind.REAL, low=30.0, high=120.0),
        AttributeSpec("skin_thickness", AttributeKind.REAL, low=5.0, high=60.0),
        AttributeSpec("insulin", AttributeKind.REAL, low=10.0, high=600.0),
        AttributeSpec("bmi", AttributeKind.REAL, low=15.0, high=60.0),
        AttributeSpec("pedigree", AttributeKind.REAL, low=0.05, high=2.5),
        AttributeSpec("age", AttributeKind.REAL, low=21.0, high=81.0),
    ),
    n_classes=2,
    n_clusters=5,
    train_size=512,
    paper_test_size_millions=1.57,
    class_priors=(0.65, 0.35),
    notes="Pima diabetes replica: 8 continuous attributes.",
)

HYPOTHYROID = DatasetSpec(
    name="hypothyroid",
    attributes=_binary_attrs("sym", 12)
    + (
        AttributeSpec("sex", AttributeKind.CATEGORICAL, cardinality=2),
        AttributeSpec("referral", AttributeKind.CATEGORICAL, cardinality=5),
        AttributeSpec("age", AttributeKind.REAL, low=1.0, high=95.0),
        AttributeSpec("tsh", AttributeKind.REAL, low=0.005, high=500.0),
        AttributeSpec("t3", AttributeKind.REAL, low=0.05, high=11.0),
        AttributeSpec("tt4", AttributeKind.REAL, low=2.0, high=430.0),
    ),
    n_classes=2,
    n_clusters=5,
    train_size=1339,
    paper_test_size_millions=1.78,
    class_priors=(0.95, 0.05),
    separation=2.5,
    notes="Thyroid screening replica: strong class skew (95/5).",
)

LETTER = DatasetSpec(
    name="letter",
    attributes=tuple(
        AttributeSpec(f"f{i}", AttributeKind.INTEGER, cardinality=16, low=0, high=15)
        for i in range(16)
    ),
    n_classes=26,
    n_clusters=26,
    train_size=15000,
    paper_test_size_millions=1.28,
    separation=2.5,
    generator="grid_classes",
    notes=(
        "Letter recognition replica: 16 integer features, 26 classes; "
        "classes occupy compact regions of two dominant features."
    ),
)

PARITY5_5 = DatasetSpec(
    name="parity5_5",
    attributes=_binary_attrs("bit", 10),
    n_classes=2,
    n_clusters=5,
    train_size=100,
    paper_test_size_millions=1.04,
    generator="parity",
    notes="Deterministic parity of bits 0..4; bits 5..9 are irrelevant.",
)

SHUTTLE = DatasetSpec(
    name="shuttle",
    attributes=tuple(
        AttributeSpec(f"s{i}", AttributeKind.INTEGER, cardinality=100, low=-120, high=120)
        for i in range(9)
    ),
    n_classes=7,
    n_clusters=7,
    train_size=43500,
    paper_test_size_millions=1.85,
    class_priors=(0.786, 0.10, 0.06, 0.03, 0.015, 0.006, 0.003),
    separation=3.0,
    notes="Statlog shuttle replica: dominant class ~79%, tiny tail classes.",
)

VEHICLE = DatasetSpec(
    name="vehicle",
    attributes=tuple(
        AttributeSpec(f"v{i}", AttributeKind.INTEGER, cardinality=200, low=0, high=1000)
        for i in range(18)
    ),
    n_classes=4,
    n_clusters=5,
    train_size=564,
    paper_test_size_millions=1.73,
    notes="Vehicle silhouettes replica: 18 integer shape features.",
)

KDD_CUP_99 = DatasetSpec(
    name="kdd_cup_99",
    attributes=(
        AttributeSpec("duration", AttributeKind.REAL, low=0.0, high=600.0),
        AttributeSpec("protocol", AttributeKind.CATEGORICAL, cardinality=3),
        AttributeSpec("service", AttributeKind.CATEGORICAL, cardinality=12),
        AttributeSpec("flag", AttributeKind.CATEGORICAL, cardinality=6),
        AttributeSpec("src_bytes", AttributeKind.REAL, low=0.0, high=10000.0),
        AttributeSpec("dst_bytes", AttributeKind.REAL, low=0.0, high=10000.0),
        AttributeSpec("land", AttributeKind.BINARY),
        AttributeSpec("wrong_fragment", AttributeKind.ORDINAL, cardinality=3),
        AttributeSpec("urgent", AttributeKind.ORDINAL, cardinality=3),
        AttributeSpec("hot", AttributeKind.INTEGER, cardinality=20, low=0, high=20),
        AttributeSpec("logged_in", AttributeKind.BINARY),
        AttributeSpec("count", AttributeKind.REAL, low=0.0, high=512.0),
        AttributeSpec("srv_count", AttributeKind.REAL, low=0.0, high=512.0),
        AttributeSpec("serror_rate", AttributeKind.REAL, low=0.0, high=1.0),
        AttributeSpec("rerror_rate", AttributeKind.REAL, low=0.0, high=1.0),
        AttributeSpec("same_srv_rate", AttributeKind.REAL, low=0.0, high=1.0),
        AttributeSpec("diff_srv_rate", AttributeKind.REAL, low=0.0, high=1.0),
        AttributeSpec("dst_host_count", AttributeKind.REAL, low=0.0, high=255.0),
        AttributeSpec("dst_host_srv_count", AttributeKind.REAL, low=0.0, high=255.0),
        AttributeSpec("dst_host_same_srv_rate", AttributeKind.REAL, low=0.0, high=1.0),
    ),
    n_classes=23,
    n_clusters=23,
    train_size=100_000,
    paper_test_size_millions=4.72,
    # Published KDD-Cup-99 10% distribution shape: smurf and neptune
    # dominate, normal third, then a long tail of rare attacks.
    class_priors=(
        0.57, 0.22, 0.17, 0.02, 0.008, 0.004, 0.002, 0.002, 0.001,
        0.001, 0.0008, 0.0006, 0.0005, 0.0004, 0.0003, 0.0002, 0.0002,
        0.0001, 0.0001, 0.00008, 0.00006, 0.00004, 0.00002,
    ),
    separation=3.0,
    generator="network_traffic",
    notes=(
        "KDD-Cup-99 replica on a 20-attribute schema subset; "
        "class-distribution shape follows the published 10% sample, and "
        "attack classes follow protocol/service as in the real data."
    ),
)

#: All ten datasets, keyed by name, in Table 2 order.
DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        ANNEAL_U,
        BALANCE_SCALE,
        CHESS,
        DIABETES,
        HYPOTHYROID,
        LETTER,
        PARITY5_5,
        SHUTTLE,
        VEHICLE,
        KDD_CUP_99,
    )
}


def dataset_spec(name: str) -> DatasetSpec:
    """Look up a dataset spec by name."""
    try:
        return DATASETS[name]
    except KeyError:
        raise SchemaError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        ) from None
