"""Exception hierarchy for the mining-predicates reproduction library.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Sub-classes separate user mistakes (bad predicates, bad
schemas) from internal invariant violations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class PredicateError(ReproError):
    """A predicate expression is malformed or used inconsistently."""


class NormalizationError(PredicateError):
    """Normalization could not complete (e.g. a DNF size budget blew up)."""


class SchemaError(ReproError):
    """A table schema, column, or dataset specification is invalid."""


class ModelError(ReproError):
    """A mining model is malformed, untrained, or used with bad inputs."""


class NotFittedError(ModelError):
    """A model method requiring training was called before ``fit``."""


class EnvelopeError(ReproError):
    """Upper-envelope derivation failed or was given unusable inputs."""


class RegionError(EnvelopeError):
    """A region over a discretized attribute space is malformed."""


class RewriteError(ReproError):
    """Query rewriting with mining predicates failed."""


class CatalogError(RewriteError):
    """An atomic upper envelope required during optimization is missing."""


class DatabaseError(ReproError):
    """The relational substrate reported a failure."""


class WorkloadError(ReproError):
    """Workload construction or execution failed."""


class SegmentError(ReproError):
    """A segment-catalog operation referenced an unknown or bad segment."""


class ServeError(ReproError):
    """Base class for failures of the concurrent serving layer."""


class RegistryError(ServeError):
    """A model registry operation referenced an unknown name or version."""


class AdmissionError(ServeError):
    """A request was refused by admission control."""


class QueueFullError(AdmissionError):
    """The bounded request queue is full; the request was shed."""


class DeadlineShedError(AdmissionError):
    """Admission predicted the deadline cannot be met; shed at admit time.

    Raised by the adaptive controller instead of letting a request time
    out in queue: the caller learns *immediately* that this replica
    cannot finish in time and can retry elsewhere while the deadline
    still has budget.
    """


class RequestTimeoutError(ServeError):
    """A request exceeded its deadline before completing."""


class ServiceStoppedError(ServeError):
    """The service is draining or stopped and accepts no new work."""


class ProtocolError(ServeError):
    """A wire frame or payload violated the serving protocol."""


class TransportError(ServeError):
    """A transport connection failed before the request completed."""


class WorkerCrashedError(TransportError):
    """A router worker process died with the request in flight."""
