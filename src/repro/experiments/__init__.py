"""Experiment runners: one module per paper table/figure (see DESIGN.md)."""

from repro.experiments.config import (
    DEFAULT_CONFIG,
    PAPER_SCALE,
    SMOKE_CONFIG,
    ExperimentConfig,
)
from repro.experiments.harness import (
    TrainedFamily,
    clear_caches,
    dataset_for,
    numeric_feature_columns,
    run_all,
    train_family,
)

__all__ = [
    "DEFAULT_CONFIG",
    "ExperimentConfig",
    "PAPER_SCALE",
    "SMOKE_CONFIG",
    "TrainedFamily",
    "clear_caches",
    "dataset_for",
    "numeric_feature_columns",
    "run_all",
    "train_family",
]
