"""Experiment runners: one module per paper table/figure (see DESIGN.md)."""

from repro.experiments.config import (
    DEFAULT_CONFIG,
    PAPER_SCALE,
    SMOKE_CONFIG,
    ExperimentConfig,
    default_jobs,
    resolve_jobs,
    set_default_jobs,
)
from repro.experiments.harness import (
    TrainedFamily,
    clear_caches,
    dataset_for,
    numeric_feature_columns,
    run_all,
    run_task,
    train_family,
)
from repro.experiments.parallel import (
    benchmark_parallel_sweep,
    measurement_key,
    run_tasks,
    sweep_tasks,
)

__all__ = [
    "DEFAULT_CONFIG",
    "ExperimentConfig",
    "PAPER_SCALE",
    "SMOKE_CONFIG",
    "TrainedFamily",
    "benchmark_parallel_sweep",
    "clear_caches",
    "dataset_for",
    "default_jobs",
    "measurement_key",
    "numeric_feature_columns",
    "resolve_jobs",
    "run_all",
    "run_task",
    "run_tasks",
    "set_default_jobs",
    "sweep_tasks",
    "train_family",
]
