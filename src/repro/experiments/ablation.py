"""Ablation studies for the design choices the paper discusses.

* **A1 — node-budget threshold.**  Section 4.2 thresholds envelope
  complexity; Algorithm 1's *Threshold* input trades derivation work for
  tightness.  A1 sweeps ``max_nodes`` and reports envelope selectivity and
  disjunct counts.
* **A2 — Lemma 3.2 exact two-class bounds.**  For K=2 datasets, compare
  envelopes derived with the generic Lemma 3.1 bounds against the exact
  ratio bounds.
* **A3 — naive enumeration baseline.**  The paper notes the generic
  enumerate-and-cover algorithm took ">24 hours" on a medium dataset; A3
  times enumeration against the top-down algorithm on growing attribute
  spaces until enumeration becomes intractable.
* **A4 — pairwise-difference bounds** (our extension).  The K-class
  generalization of Lemma 3.2 against the paper's separate bounds.
* **A5 — envelope simplification** (our extension).  Mass-aware coarsening
  plus weak-constraint pruning against the raw search output.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.derive import score_table_from_naive_bayes
from repro.core.nb_envelope import (
    derive_envelope,
    enumerate_envelope_for_table,
)
from repro.core.regions import AttributeSpace, CategoricalDimension
from repro.data.generators import generate
from repro.experiments.config import DEFAULT_CONFIG, ExperimentConfig
from repro.mining.naive_bayes import NaiveBayesLearner, naive_bayes_from_tables
from repro.workload.report import format_table
from repro.workload.runner import load_dataset


@dataclass(frozen=True)
class ThresholdRow:
    """A1: one (dataset, max_nodes) observation."""

    dataset: str
    max_nodes: int
    mean_disjuncts: float
    mean_envelope_selectivity: float
    derive_seconds: float


def threshold_sweep(
    datasets: tuple[str, ...] = ("diabetes", "anneal_u"),
    budgets: tuple[int, ...] = (25, 100, 400, 1600),
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> list[ThresholdRow]:
    """A1: envelope tightness as a function of the node budget."""
    rows: list[ThresholdRow] = []
    for name in datasets:
        dataset = generate(
            name, train_size=config.train_size(1_000), seed=config.seed
        )
        model = NaiveBayesLearner(
            dataset.feature_columns,
            dataset.target_column,
            bins=config.nb_bins,
        ).fit(dataset.train_rows)
        table = score_table_from_naive_bayes(model)
        loaded = load_dataset(dataset, rows_target=10_000)
        try:
            for budget in budgets:
                started = time.perf_counter()
                results = [
                    derive_envelope(table, label, max_nodes=budget)
                    for label in model.class_labels
                ]
                seconds = time.perf_counter() - started
                selectivities = [
                    loaded.db.selectivity(loaded.table, r.predicate)
                    for r in results
                ]
                from repro.core.predicates import disjunct_count

                rows.append(
                    ThresholdRow(
                        dataset=name,
                        max_nodes=budget,
                        mean_disjuncts=float(
                            np.mean(
                                [disjunct_count(r.predicate) for r in results]
                            )
                        ),
                        mean_envelope_selectivity=float(
                            np.mean(selectivities)
                        ),
                        derive_seconds=seconds,
                    )
                )
        finally:
            loaded.db.close()
    return rows


@dataclass(frozen=True)
class TwoClassRow:
    """A2: generic vs exact bounds on one two-class dataset."""

    dataset: str
    mode: str
    mean_envelope_selectivity: float
    exact_count: int
    derive_seconds: float


def two_class_comparison(
    datasets: tuple[str, ...] = ("diabetes", "hypothyroid", "chess"),
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> list[TwoClassRow]:
    """A2: Lemma 3.2 ratio bounds versus the generic Lemma 3.1 bounds."""
    rows: list[TwoClassRow] = []
    for name in datasets:
        dataset = generate(
            name, train_size=config.train_size(1_000), seed=config.seed
        )
        model = NaiveBayesLearner(
            dataset.feature_columns,
            dataset.target_column,
            bins=config.nb_bins,
        ).fit(dataset.train_rows)
        table = score_table_from_naive_bayes(model)
        loaded = load_dataset(dataset, rows_target=10_000)
        try:
            for mode, use_ratio in (("generic", False), ("exact-2class", True)):
                started = time.perf_counter()
                results = [
                    derive_envelope(
                        table,
                        label,
                        max_nodes=config.max_nodes,
                        use_two_class_ratio=use_ratio,
                    )
                    for label in model.class_labels
                ]
                seconds = time.perf_counter() - started
                selectivities = [
                    loaded.db.selectivity(loaded.table, r.predicate)
                    for r in results
                ]
                rows.append(
                    TwoClassRow(
                        dataset=name,
                        mode=mode,
                        mean_envelope_selectivity=float(
                            np.mean(selectivities)
                        ),
                        exact_count=sum(1 for r in results if r.exact),
                        derive_seconds=seconds,
                    )
                )
        finally:
            loaded.db.close()
    return rows


@dataclass(frozen=True)
class BoundsModeRow:
    """A4: separate (paper) versus pairwise (ours) bounds on one dataset."""

    dataset: str
    mode: str
    mean_envelope_selectivity: float
    mean_original_selectivity: float
    derive_seconds: float


def bounds_mode_comparison(
    datasets: tuple[str, ...] = ("shuttle", "anneal_u"),
    config: ExperimentConfig = DEFAULT_CONFIG,
    max_nodes: int = 300,
) -> list[BoundsModeRow]:
    """A4: the paper's minProb/maxProb bounds versus pairwise differences.

    The pairwise-difference bounds generalize Lemma 3.2 to K classes; this
    sweep quantifies how much tighter the resulting envelopes are at equal
    node budget on multi-class datasets.
    """
    from repro.core.nb_bounds import BoundsMode
    from repro.workload.runner import original_selectivities

    rows: list[BoundsModeRow] = []
    for name in datasets:
        dataset = generate(
            name, train_size=config.train_size(4_000), seed=config.seed
        )
        model = NaiveBayesLearner(
            dataset.feature_columns,
            dataset.target_column,
            bins=config.nb_bins,
        ).fit(dataset.train_rows)
        table = score_table_from_naive_bayes(model)
        loaded = load_dataset(dataset, rows_target=10_000)
        originals = original_selectivities(dataset, model)
        try:
            for mode in (BoundsMode.SEPARATE, BoundsMode.PAIRWISE):
                started = time.perf_counter()
                results = [
                    derive_envelope(
                        table,
                        label,
                        max_nodes=max_nodes,
                        bounds_mode=mode,
                        use_two_class_ratio=False,
                    )
                    for label in model.class_labels
                ]
                seconds = time.perf_counter() - started
                selectivities = [
                    loaded.db.selectivity(loaded.table, r.predicate)
                    for r in results
                ]
                rows.append(
                    BoundsModeRow(
                        dataset=name,
                        mode=mode.value,
                        mean_envelope_selectivity=float(
                            np.mean(selectivities)
                        ),
                        mean_original_selectivity=float(
                            np.mean(list(originals.values()))
                        ),
                        derive_seconds=seconds,
                    )
                )
        finally:
            loaded.db.close()
    return rows


@dataclass(frozen=True)
class SimplificationRow:
    """A5: one configuration of the envelope-simplification machinery."""

    dataset: str
    variant: str
    mean_envelope_selectivity: float
    mean_atoms: float
    mean_disjuncts: float


def simplification_comparison(
    dataset_name: str = "shuttle",
    config: ExperimentConfig = DEFAULT_CONFIG,
    max_nodes: int = 300,
) -> list[SimplificationRow]:
    """A5: coarsening and weak-constraint pruning versus the raw search.

    Both transformations are sound (they only widen regions/drop
    conjuncts); the sweep shows what they cost in envelope selectivity and
    what they buy in predicate size — the paper's Section 4.2 trade-off
    made measurable.
    """
    from repro.core.predicates import atom_count, disjunct_count

    dataset = generate(
        dataset_name, train_size=config.train_size(4_000), seed=config.seed
    )
    model = NaiveBayesLearner(
        dataset.feature_columns,
        dataset.target_column,
        bins=config.nb_bins,
    ).fit(dataset.train_rows)
    table = score_table_from_naive_bayes(model)
    loaded = load_dataset(dataset, rows_target=10_000)
    variants = (
        ("raw", dict(max_regions=None, max_constrained_dims=None)),
        ("coarsened", dict(max_regions=32, max_constrained_dims=None)),
        ("coarsened+pruned", dict(max_regions=32, max_constrained_dims=5)),
    )
    rows: list[SimplificationRow] = []
    try:
        for variant, options in variants:
            results = [
                derive_envelope(
                    table, label, max_nodes=max_nodes, **options
                )
                for label in model.class_labels
            ]
            rows.append(
                SimplificationRow(
                    dataset=dataset_name,
                    variant=variant,
                    mean_envelope_selectivity=float(
                        np.mean(
                            [
                                loaded.db.selectivity(
                                    loaded.table, r.predicate
                                )
                                for r in results
                            ]
                        )
                    ),
                    mean_atoms=float(
                        np.mean([atom_count(r.predicate) for r in results])
                    ),
                    mean_disjuncts=float(
                        np.mean(
                            [disjunct_count(r.predicate) for r in results]
                        )
                    ),
                )
            )
    finally:
        loaded.db.close()
    return rows


@dataclass(frozen=True)
class EnumerationRow:
    """A3: one space size, enumeration vs top-down."""

    n_dims: int
    cells: int
    enumeration_seconds: float | None
    top_down_seconds: float
    selectivity_gap: float | None


def enumeration_comparison(
    dims_range: tuple[int, ...] = (3, 4, 5, 6),
    members_per_dim: int = 8,
    n_classes: int = 4,
    seed: int = 0,
    enumeration_cell_limit: int = 300_000,
) -> list[EnumerationRow]:
    """A3: naive enumerate-and-cover versus Algorithm 1.

    Random naive Bayes models over growing spaces; enumeration is skipped
    (``None``) once the cell count exceeds its limit — the paper's
    ">24 hours for just enumerating" observation in miniature.
    """
    rng = np.random.default_rng(seed)
    rows: list[EnumerationRow] = []
    for n_dims in dims_range:
        space = AttributeSpace(
            tuple(
                CategoricalDimension(
                    f"d{i}", tuple(f"m{j}" for j in range(members_per_dim))
                )
                for i in range(n_dims)
            )
        )
        priors = rng.dirichlet(np.ones(n_classes))
        conditionals = [
            rng.dirichlet(np.ones(members_per_dim), size=n_classes)
            for _ in range(n_dims)
        ]
        model = naive_bayes_from_tables(
            "ablation_nb",
            "cls",
            space,
            [f"c{k}" for k in range(n_classes)],
            priors.tolist(),
            [table.tolist() for table in conditionals],
        )
        table = score_table_from_naive_bayes(model)
        label = model.class_labels[0]

        started = time.perf_counter()
        top = derive_envelope(table, label, max_nodes=600)
        top_seconds = time.perf_counter() - started

        cells = space.cell_count()
        enum_seconds: float | None = None
        gap: float | None = None
        if cells <= enumeration_cell_limit:
            started = time.perf_counter()
            exact = enumerate_envelope_for_table(
                table, label, cell_limit=enumeration_cell_limit
            )
            enum_seconds = time.perf_counter() - started
            # Count covered cells via membership: cover regions may
            # overlap, so summing per-region cell counts would overstate.
            exact_cells = _covered_cells(exact, space, enumeration_cell_limit)
            top_cells = _covered_cells(top, space, enumeration_cell_limit)
            gap = (top_cells - exact_cells) / cells
        rows.append(
            EnumerationRow(
                n_dims=n_dims,
                cells=cells,
                enumeration_seconds=enum_seconds,
                top_down_seconds=top_seconds,
                selectivity_gap=gap,
            )
        )
    return rows


def _covered_cells(result, space, limit: int) -> int:
    count = 0
    for cell in space.iter_cells(limit=limit):
        if any(region.contains(cell) for region in result.regions):
            count += 1
    return count


def print_ablations() -> str:
    """Print the A1-A5 ablation tables; returns the rendered text."""
    lines = ["A1 — node-budget sweep (naive Bayes envelopes):"]
    lines.append(
        format_table(
            ["Data set", "max_nodes", "Mean disjuncts", "Mean env. sel", "s"],
            [
                (
                    r.dataset,
                    r.max_nodes,
                    r.mean_disjuncts,
                    f"{r.mean_envelope_selectivity:.4f}",
                    f"{r.derive_seconds:.2f}",
                )
                for r in threshold_sweep()
            ],
        )
    )
    lines.append("")
    lines.append("A2 — Lemma 3.2 exact two-class bounds:")
    lines.append(
        format_table(
            ["Data set", "Bounds", "Mean env. sel", "# exact", "s"],
            [
                (
                    r.dataset,
                    r.mode,
                    f"{r.mean_envelope_selectivity:.4f}",
                    r.exact_count,
                    f"{r.derive_seconds:.2f}",
                )
                for r in two_class_comparison()
            ],
        )
    )
    lines.append("")
    lines.append("A3 — enumeration baseline vs top-down (Algorithm 1):")
    lines.append(
        format_table(
            ["Dims", "Cells", "Enumerate s", "Top-down s", "Coverage gap"],
            [
                (
                    r.n_dims,
                    r.cells,
                    "skipped" if r.enumeration_seconds is None
                    else f"{r.enumeration_seconds:.2f}",
                    f"{r.top_down_seconds:.3f}",
                    "-" if r.selectivity_gap is None
                    else f"{r.selectivity_gap:.4f}",
                )
                for r in enumeration_comparison()
            ],
        )
    )
    lines.append("")
    lines.append("A4 — pairwise-difference bounds vs the paper's bounds:")
    lines.append(
        format_table(
            ["Data set", "Bounds", "Mean env. sel", "Mean orig. sel", "s"],
            [
                (
                    r.dataset,
                    r.mode,
                    f"{r.mean_envelope_selectivity:.4f}",
                    f"{r.mean_original_selectivity:.4f}",
                    f"{r.derive_seconds:.2f}",
                )
                for r in bounds_mode_comparison()
            ],
        )
    )
    lines.append("")
    lines.append("A5 — envelope simplification (coarsen + prune):")
    lines.append(
        format_table(
            ["Variant", "Mean env. sel", "Mean atoms", "Mean disjuncts"],
            [
                (
                    r.variant,
                    f"{r.mean_envelope_selectivity:.4f}",
                    f"{r.mean_atoms:.0f}",
                    f"{r.mean_disjuncts:.0f}",
                )
                for r in simplification_comparison()
            ],
        )
    )
    text = "\n".join(lines)
    print(text)
    return text


def main() -> None:
    """CLI entry point for the ablation tables."""
    print_ablations()


if __name__ == "__main__":
    main()
