"""Calibration-loop benchmark (the ``calibration-bench`` CLI artifact).

Demonstrates the estimator feedback loop of :mod:`repro.sql.calibration`
end to end: the same mining workload is executed repeatedly through one
:class:`~repro.sql.miningext.PredictionJoinExecutor` wired to a shared
:class:`~repro.sql.calibration.CalibrationStore`.  The first pass
estimates from the static independence model; every pass feeds the
measured selectivity of each pushed predicate back into the store, so
later passes estimate from observation.  The payload records, per pass,
the absolute-error quantiles of ``|estimated - actual|`` over every
executed query — the headline claim is that the quantiles *strictly
shrink* between the first and last pass.

Two invariants are verified (the bench raises if either fails):

* **byte-identical results** — every query returns the same canonical
  row set on every pass, and the same set an *uncalibrated* executor
  returns.  Calibration steers physical decisions only (gating, operand
  order, plan reuse); semantics never move.
* **shrinking error** — the p50/p90/max absolute error of the last pass
  is strictly below the first pass's.

The plan cache runs with divergence-triggered invalidation enabled, so
the payload also reports how many cached plans were dropped for estimate
divergence (``recalibrations``) — the counter the ``trace-report``
Calibration section surfaces.

``run_calibration_bench`` returns the JSON-ready payload written to
``BENCH_calibration.json`` by ``python -m repro calibration-bench``.
"""

from __future__ import annotations

import hashlib

from repro import obs
from repro.core.catalog import ModelCatalog
from repro.core.optimizer import MiningQuery
from repro.core.rewrite import PredictionEquals
from repro.exceptions import ReproError
from repro.experiments.config import ExperimentConfig, SMOKE_CONFIG
from repro.experiments.harness import dataset_for, train_family
from repro.sql.calibration import CalibrationStore
from repro.sql.miningext import PredictionJoinExecutor
from repro.sql.plancache import PlanCache
from repro.workload.runner import load_dataset

#: Divergence threshold for the bench's plan cache: tight enough that a
#: first-pass static estimate contradicted by measurement triggers a
#: recalibration on the second pass for typical envelope errors.
RECALIBRATION_THRESHOLD = 0.01


def _quantile(ordered: list[float], q: float) -> float:
    """Linear-interpolation quantile of an already-sorted list."""
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    weight = position - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


def _error_quantiles(errors: list[float]) -> dict[str, float]:
    ordered = sorted(errors)
    return {
        "p50": round(_quantile(ordered, 0.50), 6),
        "p90": round(_quantile(ordered, 0.90), 6),
        "max": round(ordered[-1] if ordered else 0.0, 6),
        "mean": round(sum(ordered) / len(ordered), 6) if ordered else 0.0,
    }


def _rows_digest(rows: tuple) -> str:
    """Order-independent digest of one query's result rows.

    The pushed SQL differs between passes when calibration moves the
    gate, which may permute fetch order; the result *set* must not
    change, so rows are canonicalized before hashing.
    """
    canonical = "\n".join(sorted(repr(row) for row in rows))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _workload(
    config: ExperimentConfig, dataset_name: str
) -> tuple[ModelCatalog, list[MiningQuery], object]:
    """Train every configured family and build one query per class."""
    dataset = dataset_for(config, dataset_name)
    loaded = load_dataset(dataset, config.rows_target)
    catalog = ModelCatalog()
    queries: list[MiningQuery] = []
    for family in config.families:
        trained = train_family(dataset, family, config)
        catalog.register(trained.model, envelopes=trained.envelopes)
        for label in trained.model.class_labels:
            queries.append(
                MiningQuery(
                    loaded.table,
                    mining_predicates=(
                        PredictionEquals(trained.model.name, label),
                    ),
                )
            )
    return catalog, queries, loaded


def run_calibration_bench(
    config: ExperimentConfig | None = None,
    dataset_name: str = "diabetes",
    passes: int = 4,
) -> dict:
    """Repeated workload passes through one calibrated executor.

    The executor runs without the selectivity gate so every query pushes
    its envelope — the estimate under test is then the envelope's, whose
    static independence-model error is what calibration exists to fix.
    (Gate dynamics are exercised by the unit suite; here they would let
    stripped-to-TRUE queries report a trivially exact estimate and dilute
    the before/after comparison.)
    """
    if passes < 2:
        raise ReproError(f"calibration-bench needs >= 2 passes, got {passes}")
    config = config or SMOKE_CONFIG
    with obs.span(
        "calibration.bench", dataset=dataset_name, passes=passes
    ):
        catalog, queries, loaded = _workload(config, dataset_name)
        try:
            store = CalibrationStore()
            plan_cache = PlanCache(
                recalibration_threshold=RECALIBRATION_THRESHOLD
            )
            stats_cache: dict = {}
            executor = PredictionJoinExecutor(
                loaded.db,
                catalog,
                selectivity_gate=None,
                plan_cache=plan_cache,
                stats_cache=stats_cache,
                calibration=store,
            )
            # The open-loop control: same data, same settings, no store.
            baseline = PredictionJoinExecutor(
                loaded.db,
                catalog,
                selectivity_gate=None,
                plan_cache=PlanCache(),
                stats_cache=stats_cache,
            )
            baseline_digests = [
                _rows_digest(baseline.execute_optimized(query).rows)
                for query in queries
            ]

            pass_reports: list[dict] = []
            digests: list[list[str]] = []
            previous_store = store.stats.snapshot()
            previous_recalibrations = 0
            for index in range(passes):
                errors: list[float] = []
                pass_digests: list[str] = []
                for query in queries:
                    report = executor.execute_optimized(query)
                    pass_digests.append(_rows_digest(report.rows))
                    if (
                        report.estimated_selectivity is not None
                        and report.actual_selectivity is not None
                    ):
                        errors.append(
                            abs(
                                report.estimated_selectivity
                                - report.actual_selectivity
                            )
                        )
                digests.append(pass_digests)
                snapshot = store.stats.snapshot()
                recalibrations = plan_cache.stats.recalibrations
                pass_reports.append(
                    {
                        "pass": index + 1,
                        "records": len(errors),
                        "abs_error": _error_quantiles(errors),
                        "observations": snapshot["observations"]
                        - previous_store["observations"],
                        "overlay_lookups": snapshot["lookups"]
                        - previous_store["lookups"],
                        "overlay_hits": snapshot["hits"]
                        - previous_store["hits"],
                        "recalibrations": recalibrations
                        - previous_recalibrations,
                    }
                )
                previous_store = snapshot
                previous_recalibrations = recalibrations

            first, last = pass_reports[0], pass_reports[-1]
            shrunk = all(
                last["abs_error"][q] < first["abs_error"][q]
                for q in ("p50", "p90", "max")
            )
            if not shrunk:
                raise ReproError(
                    "calibration-bench: absolute-error quantiles did not "
                    f"strictly shrink (first {first['abs_error']} vs last "
                    f"{last['abs_error']})"
                )
            rows_stable = all(
                pass_digests == digests[0] for pass_digests in digests
            )
            rows_match_baseline = digests[0] == baseline_digests
            if not (rows_stable and rows_match_baseline):
                raise ReproError(
                    "calibration-bench: calibration changed result rows "
                    f"(stable across passes: {rows_stable}, identical to "
                    f"uncalibrated: {rows_match_baseline})"
                )
            return {
                "benchmark": "calibration_feedback",
                "dataset": dataset_name,
                "queries": len(queries),
                "passes": passes,
                "selectivity_gate": None,
                "recalibration_threshold": RECALIBRATION_THRESHOLD,
                "pass_reports": pass_reports,
                "first_vs_last": {
                    "first": first["abs_error"],
                    "last": last["abs_error"],
                    "strictly_shrunk": True,
                },
                "rows_identical_across_passes": True,
                "rows_identical_to_uncalibrated": True,
                "store": {
                    "entries": len(store),
                    "generation": store.generation,
                    **store.stats.snapshot(),
                },
                "plan_cache": {
                    "hits": plan_cache.stats.hits,
                    "misses": plan_cache.stats.misses,
                    "invalidations": plan_cache.stats.invalidations,
                    "recalibrations": plan_cache.stats.recalibrations,
                },
            }
        finally:
            loaded.db.close()
