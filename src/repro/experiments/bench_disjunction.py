"""Disjunction-execution benchmark (the ``disjunction-bench`` CLI artifact).

Measures what the interned-atom mask cache and plan-once operand
ordering buy on the predicates this repo exists for: wide upper
envelopes.  Naive Bayes and clustering envelopes are ORs of many
conjunctions drawn from a small per-feature bin vocabulary, so the same
atoms recur across disjuncts — exactly the sharing the
:class:`~repro.ir.batch.BatchLowering` cache exploits by lowering each
distinct atom once per batch at full width.

The **naive** baseline is the pre-cache strategy preserved as
``evaluate_batch_naive``: per-visit operand sorting and ``take``
compaction, re-lowering every atom occurrence.  **cached** runs the
same predicates through ``evaluate_batch``.  Both paths' masks are
compared byte-for-byte on every batch — the speedup is only reported
if the answers are identical.

The payload also records the UNION-of-index-range SQL lowering on a
demonstration table where SQLite's own multi-index OR declines: a
low-cardinality indexed segment column with per-segment range guards,
where the flat OR full-scans but each disjunct alone can seek the
index.  ``capture_select_plan`` must adopt the union and the union's
row multiset must match the flat query's.

``run_disjunction_bench`` returns the JSON-ready payload written to
``BENCH_disjunction.json`` by ``python -m repro disjunction-bench``.
"""

from __future__ import annotations

import time
from itertools import islice

import numpy as np

from repro import obs
from repro.core.columns import ColumnBatch
from repro.core.predicates import (
    And,
    Comparison,
    Op,
    Or,
    Predicate,
    atom_count,
    disjunct_count,
)
from repro.exceptions import ReproError
from repro.experiments.config import ExperimentConfig, SMOKE_CONFIG
from repro.experiments.harness import (
    dataset_for,
    numeric_feature_columns,
    train_family,
)
from repro.ir import intern
from repro.ir.batch import (
    BatchLowering,
    evaluate_batch,
    evaluate_batch_naive,
    reset_plan_memo,
)
from repro.sql.compiler import select_statement
from repro.sql.database import Database, load_table
from repro.sql.planner import capture_plan, capture_select_plan
from repro.sql.stats import build_table_stats, estimate_selectivity
from repro.workload.measurement import (
    FAMILY_CLUSTERING,
    FAMILY_NAIVE_BAYES,
)

#: Segment cardinality of the union-lowering demo table.  Low enough
#: that, with ANALYZE, SQLite prices the flat OR's summed index probes
#: above one sequential scan and falls back to SCAN — the regime the
#: disjoint UNION ALL lowering exists for.
DEMO_SEGMENTS = 4
#: Rows loaded into the demo table (dataset rows cycled).
DEMO_ROWS = 20_000


def _row_batches(
    rows: list[dict], total: int, batch_size: int
) -> list[ColumnBatch]:
    """``total`` rows in ``batch_size`` chunks, cycling the dataset."""
    repeats = -(-total // len(rows))
    stream = (rows * repeats)[:total]
    return [
        ColumnBatch(stream[start : start + batch_size])
        for start in range(0, total, batch_size)
    ]


def widest_envelopes(
    config: ExperimentConfig, dataset_name: str
) -> tuple[list[dict], list[dict], tuple[str, ...]]:
    """The widest NB and clustering envelope per family, interned.

    Returns ``(cases, source_rows, feature_columns)`` where each case
    carries the family, class label, interned predicate, and structural
    counts for the payload.  Width is the top-level disjunct count —
    the quantity the mask cache's per-disjunct sharing scales with.
    """
    dataset = dataset_for(config, dataset_name)
    columns = numeric_feature_columns(dataset)
    if not columns:
        raise ReproError(
            f"dataset {dataset_name!r} has no numeric feature columns"
        )
    cases: list[dict] = []
    for family in (FAMILY_NAIVE_BAYES, FAMILY_CLUSTERING):
        trained = train_family(dataset, family, config)
        label, envelope = max(
            trained.envelopes.items(),
            key=lambda kv: (disjunct_count(kv[1].predicate), str(kv[0])),
        )
        predicate = intern(envelope.predicate)
        cases.append(
            {
                "family": family,
                "label": str(label),
                "predicate": predicate,
                "disjuncts": disjunct_count(predicate),
                "atoms": atom_count(predicate),
            }
        )
    return cases, list(dataset.train_rows), columns


def _verify_identical(
    label: str,
    naive_masks: list[np.ndarray],
    cached_masks: list[np.ndarray],
) -> None:
    """Raise unless both strategies produced byte-identical masks."""
    mismatched = sum(
        1
        for naive, cached in zip(naive_masks, cached_masks)
        if naive.dtype != cached.dtype or not np.array_equal(naive, cached)
    )
    if mismatched:
        raise ReproError(
            f"disjunction-bench: {label}: {mismatched}/{len(naive_masks)} "
            "batches diverge between cached and naive evaluation"
        )


def _bench_envelope(
    case: dict,
    batches: list[ColumnBatch],
    estimator,
) -> dict:
    """Time naive vs cached evaluation of one envelope, verify, report."""
    predicate = case["predicate"]
    rows = sum(len(batch) for batch in batches)

    # Warm the column caches (and the plan memo for the cached path)
    # off the clock so neither side pays first-touch astype cost.
    warmup = next(islice(iter(batches), 1))
    evaluate_batch_naive(predicate, warmup, estimator)
    evaluate_batch(predicate, warmup, estimator)

    started = time.perf_counter()
    naive_masks = [
        evaluate_batch_naive(predicate, batch, estimator)
        for batch in batches
    ]
    naive_seconds = time.perf_counter() - started

    started = time.perf_counter()
    cached_masks = [
        evaluate_batch(predicate, batch, estimator) for batch in batches
    ]
    cached_seconds = time.perf_counter() - started

    _verify_identical(
        f"{case['family']}/{case['label']}", naive_masks, cached_masks
    )

    # One instrumented pass to report the cache's sharing structure
    # (stats collection is outside the timed loops on purpose).
    context = BatchLowering(batches[0], estimator)
    context.mask(predicate)
    stats = context.stats
    return {
        "family": case["family"],
        "label": case["label"],
        "disjuncts": case["disjuncts"],
        "atoms": case["atoms"],
        "naive_seconds": round(naive_seconds, 4),
        "cached_seconds": round(cached_seconds, 4),
        "speedup": round(naive_seconds / cached_seconds, 2),
        "rows_per_second": round(rows / cached_seconds, 1),
        "masks_identical": True,
        "masks_computed": stats.computed,
        "masks_shared": stats.shared,
        "share_ratio": round(stats.share_ratio, 4),
    }


def union_lowering_demo(source_rows: list[dict], feature: str) -> dict:
    """Build the full-scan-vs-union demo table and capture both plans.

    The table cycles the dataset's rows into ``DEMO_ROWS`` rows tagged
    with a ``seg`` column of ``DEMO_SEGMENTS`` distinct values, indexed
    and ANALYZEd.  The query ORs per-segment range guards: SQLite costs
    the flat OR's index probes above a sequential scan (every branch
    hits ~1/DEMO_SEGMENTS of the table) and SCANs, while each disjunct
    alone seeks the segment index — so ``capture_select_plan`` adopts
    the disjoint UNION ALL form.  Both forms' row multisets are
    compared before the demo is reported.
    """
    values = np.asarray([float(row[feature]) for row in source_rows])
    cuts = np.quantile(values, np.linspace(0.35, 0.65, DEMO_SEGMENTS))
    repeats = -(-DEMO_ROWS // len(source_rows))
    demo_rows = [
        {"seg": i % DEMO_SEGMENTS, feature: float(row[feature])}
        for i, row in enumerate((source_rows * repeats)[:DEMO_ROWS])
    ]
    table = "disjunction_demo"
    db = Database()
    load_table(db, table, demo_rows)
    db.create_index(table, ["seg"])
    db.analyze()

    predicate = Or(
        tuple(
            And(
                (
                    Comparison("seg", Op.EQ, segment),
                    Comparison(feature, Op.LT, float(cuts[segment])),
                )
            )
            for segment in range(DEMO_SEGMENTS)
        )
    )
    flat_plan = capture_plan(db, table, predicate)
    select = capture_select_plan(db, table, predicate)
    if not select.used_union:
        raise ReproError(
            "disjunction-bench: union lowering was not adopted for the "
            f"demo query (flat plan: {flat_plan.access_path.value})"
        )

    flat_rows = sorted(
        map(repr, db.query_rows(select_statement(table, predicate)))
    )
    union_rows = sorted(map(repr, db.query_rows(select.sql)))
    if flat_rows != union_rows:
        raise ReproError(
            "disjunction-bench: union lowering changed the result "
            f"multiset ({len(flat_rows)} flat vs {len(union_rows)} union)"
        )
    return {
        "table": table,
        "rows": len(demo_rows),
        "segments": DEMO_SEGMENTS,
        "branches": select.branches,
        "flat_access_path": flat_plan.access_path.value,
        "union_access_path": select.plan.access_path.value,
        "used_union": select.used_union,
        "index_names": list(select.plan.index_names),
        "rows_matched": len(union_rows),
        "rows_identical": True,
    }


def run_disjunction_bench(
    config: ExperimentConfig | None = None,
    dataset_name: str = "diabetes",
    rows: int = 16_384,
    batch_size: int = 512,
    seed: int = 11,
) -> dict:
    """The full benchmark: envelopes, naive vs cached, union demo."""
    config = config or SMOKE_CONFIG
    with obs.span("disjunction.bench", dataset=dataset_name, rows=rows):
        cases, source_rows, columns = widest_envelopes(config, dataset_name)
        stats = build_table_stats("disjunction_bench", source_rows)

        def estimator(predicate: Predicate) -> float:
            return estimate_selectivity(stats, predicate)

        estimator.stats_version = stats.version

        reset_plan_memo()
        batches = _row_batches(source_rows, rows, batch_size)
        envelope_reports = [
            _bench_envelope(case, batches, estimator) for case in cases
        ]
        naive_total = sum(r["naive_seconds"] for r in envelope_reports)
        cached_total = sum(r["cached_seconds"] for r in envelope_reports)
        union = union_lowering_demo(source_rows, columns[0])
        return {
            "benchmark": "disjunction_execution",
            "dataset": dataset_name,
            "rows": rows,
            "batch_size": batch_size,
            "batches": len(batches),
            "seed": seed,
            "envelopes": envelope_reports,
            "overall": {
                "naive_seconds": round(naive_total, 4),
                "cached_seconds": round(cached_total, 4),
                "speedup": round(naive_total / cached_total, 2),
            },
            "union_lowering": union,
        }
