"""Scalar-vs-vectorized residual scoring benchmark.

The tentpole claim of the vectorized execution layer is that residual
model application — the hot path the paper identifies as the expensive
part of a mining query — gets dramatically cheaper when each model scores
fetched rows as one columnar batch instead of row-at-a-time, while the
result rows stay byte-identical.

This benchmark makes that claim measurable and checkable.  It loads one
benchmark dataset at the configuration's full table scale, trains a model
from **every** model family the library supports (decision tree, naive
Bayes, rules, k-means, GMM, grid-density), and runs the same
extract-and-mine query through two executors differing only in the
``vectorized`` knob.  Each query carries two mining predicates over the
same model, so the per-(model, batch) memoization is on the measured
path.  The report records per-family model-application timings, the
speedup, and an equality invariant verified on the serialized rows;
an invariant violation raises instead of reporting a number for a
broken execution.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core.catalog import ModelCatalog
from repro.core.optimizer import MiningQuery
from repro.core.rewrite import PredictionEquals, PredictionIn
from repro.exceptions import WorkloadError
from repro.experiments.config import DEFAULT_CONFIG, ExperimentConfig
from repro.experiments.harness import dataset_for, numeric_feature_columns
from repro.mining.base import MiningModel
from repro.mining.decision_tree import DecisionTreeLearner
from repro.mining.density import DensityClusterLearner
from repro.mining.gmm import GaussianMixtureLearner
from repro.mining.kmeans import KMeansLearner
from repro.mining.naive_bayes import NaiveBayesLearner
from repro.mining.rules import RuleLearner
from repro.sql.miningext import ExecutionReport, PredictionJoinExecutor
from repro.workload.runner import load_dataset

#: Dataset used for the benchmark; present at every experiment scale.
BENCH_DATASET = "diabetes"


def _train_all_families(
    dataset, config: ExperimentConfig
) -> list[tuple[str, MiningModel]]:
    """One trained model per supported family, on the dataset's rows."""
    rows = dataset.train_rows
    features = dataset.feature_columns
    target = dataset.target_column
    numeric = numeric_feature_columns(dataset)
    models: list[tuple[str, MiningModel]] = [
        (
            "decision_tree",
            DecisionTreeLearner(
                features,
                target,
                max_depth=config.tree_max_depth,
                name="bench_tree",
            ).fit(rows),
        ),
        (
            "naive_bayes",
            NaiveBayesLearner(
                features, target, bins=config.nb_bins, name="bench_nb"
            ).fit(rows),
        ),
        (
            "rules",
            RuleLearner(features, target, name="bench_rules").fit(rows),
        ),
    ]
    if numeric:
        models.extend(
            [
                (
                    "kmeans",
                    KMeansLearner(
                        numeric, 3, seed=config.seed, name="bench_kmeans"
                    ).fit(rows),
                ),
                (
                    "gmm",
                    GaussianMixtureLearner(
                        numeric, 3, seed=config.seed, name="bench_gmm"
                    ).fit(rows),
                ),
                (
                    "density",
                    DensityClusterLearner(
                        numeric,
                        bins=config.cluster_bins,
                        name="bench_density",
                    ).fit(rows),
                ),
            ]
        )
    return models


def _query_for(model: MiningModel, table: str) -> MiningQuery:
    """A two-predicate query over one model (memoization on the hot path).

    The IN predicate admits every label (the model must still run to
    prove it) and the equality predicate narrows to one class, so both
    predicates need the same per-batch predictions.
    """
    labels = model.class_labels
    return MiningQuery(
        table,
        mining_predicates=(
            PredictionIn(model.name, labels),
            PredictionEquals(model.name, labels[0]),
        ),
    )


def _best_naive(
    executor: PredictionJoinExecutor, query: MiningQuery, repeats: int
) -> ExecutionReport:
    """The run with the lowest residual-scoring time."""
    best: ExecutionReport | None = None
    for _ in range(max(1, repeats)):
        report = executor.execute_naive(query)
        if best is None or report.model_seconds < best.model_seconds:
            best = report
    assert best is not None
    return best


def _row_bytes(report: ExecutionReport) -> bytes:
    """Canonical serialization of the result rows, for identity checks."""
    return json.dumps(
        [sorted(row.items()) for row in report.rows], default=repr
    ).encode()


def benchmark_vectorized_scoring(
    config: ExperimentConfig = DEFAULT_CONFIG,
    repeats: int = 3,
    path: str | Path = "BENCH_vectorized_scoring.json",
    scale: str | None = None,
    batch_size: int = 2048,
) -> dict:
    """Time scalar vs vectorized residual scoring; write a report.

    Raises :class:`~repro.exceptions.WorkloadError` if any family's
    vectorized rows differ from the scalar rows — the equality invariant
    is the point, the timings are only meaningful when it holds.
    """
    dataset = dataset_for(config, BENCH_DATASET)
    loaded = load_dataset(dataset, config.rows_target)
    started = time.perf_counter()
    models = _train_all_families(dataset, config)
    train_seconds = time.perf_counter() - started
    catalog = ModelCatalog()
    for _, model in models:
        # Envelopes are irrelevant to extract-and-mine scoring; skip the
        # derivation cost by registering empty envelope sets.
        catalog.register(model, envelopes={})
    scalar = PredictionJoinExecutor(
        loaded.db, catalog, selectivity_gate=None, vectorized=False
    )
    vectorized = PredictionJoinExecutor(
        loaded.db,
        catalog,
        selectivity_gate=None,
        vectorized=True,
        batch_size=batch_size,
    )
    families = []
    total_scalar = 0.0
    total_vectorized = 0.0
    try:
        for family, model in models:
            query = _query_for(model, loaded.table)
            scalar_report = _best_naive(scalar, query, repeats)
            vectorized_report = _best_naive(vectorized, query, repeats)
            identical = _row_bytes(scalar_report) == _row_bytes(
                vectorized_report
            )
            if not identical:
                raise WorkloadError(
                    f"vectorized rows differ from scalar rows for "
                    f"{family} model {model.name!r}"
                )
            total_scalar += scalar_report.model_seconds
            total_vectorized += vectorized_report.model_seconds
            families.append(
                {
                    "family": family,
                    "model": model.name,
                    "rows_fetched": scalar_report.rows_fetched,
                    "rows_returned": scalar_report.rows_returned,
                    "scalar_model_seconds": scalar_report.model_seconds,
                    "vectorized_model_seconds": (
                        vectorized_report.model_seconds
                    ),
                    "speedup": (
                        scalar_report.model_seconds
                        / vectorized_report.model_seconds
                        if vectorized_report.model_seconds > 0
                        else None
                    ),
                    "rows_identical": identical,
                }
            )
    finally:
        loaded.db.close()
    report = {
        "benchmark": "vectorized_scoring",
        "scale": scale,
        "dataset": BENCH_DATASET,
        "rows_in_table": loaded.rows_total,
        "batch_size": vectorized.batch_size,
        "repeats": repeats,
        "train_seconds": train_seconds,
        "families": families,
        "total_scalar_model_seconds": total_scalar,
        "total_vectorized_model_seconds": total_vectorized,
        "overall_speedup": (
            total_scalar / total_vectorized if total_vectorized > 0 else None
        ),
        "all_rows_identical": all(f["rows_identical"] for f in families),
    }
    Path(path).write_text(json.dumps(report, indent=2) + "\n")
    return report
