"""Experiment configuration.

The paper runs on >1M-row tables on SQL Server; this reproduction scales
row counts so the full ten-dataset suite runs on a laptop in minutes while
preserving the quantities the paper reports (plan changes, selectivities,
relative running-time reductions — all scale-free or ratio-based).
``PAPER_SCALE`` restores the paper's 1M+ row targets for a long run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.specs import DATASETS
from repro.workload.measurement import FAMILIES


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by every Section 5 experiment."""

    seed: int = 0
    #: Test-table size the doubling expansion must exceed.
    rows_target: int = 40_000
    #: Cap on training rows (None = the spec's full training size).
    #: 15,000 gives every dataset except KDD its full paper training size;
    #: model parameters estimated from too few rows per class carry
    #: per-member noise that both loosens envelopes and distorts skew.
    train_cap: int | None = 15_000
    #: Discretization bins for naive Bayes / clustering envelopes.
    nb_bins: int = 8
    cluster_bins: int = 8
    #: Node budget of the top-down envelope search (paper's Threshold).
    max_nodes: int = 600
    #: Maximum decision-tree depth.
    tree_max_depth: int = 10
    #: Selectivity gate stripping useless envelopes (Section 4.2).
    selectivity_gate: float | None = 0.2
    index_budget: int = 8
    #: Timed queries run this many times; the best time is kept.
    repeats: int = 2
    datasets: tuple[str, ...] = field(
        default_factory=lambda: tuple(DATASETS)
    )
    families: tuple[str, ...] = field(default_factory=lambda: FAMILIES)

    def train_size(self, spec_train_size: int) -> int:
        if self.train_cap is None:
            return spec_train_size
        return min(spec_train_size, self.train_cap)


#: Default bench-scale configuration (all ten datasets, ~40k-row tables).
DEFAULT_CONFIG = ExperimentConfig()

#: Reduced configuration for unit/integration tests.
SMOKE_CONFIG = ExperimentConfig(
    rows_target=6_000,
    train_cap=300,
    nb_bins=4,
    cluster_bins=4,
    max_nodes=150,
    tree_max_depth=8,
    repeats=1,
    datasets=("diabetes", "hypothyroid", "balance_scale"),
)

#: Paper-scale configuration (>1M-row tables, full training sizes).
PAPER_SCALE = ExperimentConfig(
    rows_target=1_000_000,
    train_cap=None,
    max_nodes=1_000,
)
