"""Experiment configuration.

The paper runs on >1M-row tables on SQL Server; this reproduction scales
row counts so the full ten-dataset suite runs on a laptop in minutes while
preserving the quantities the paper reports (plan changes, selectivities,
relative running-time reductions — all scale-free or ratio-based).
``PAPER_SCALE`` restores the paper's 1M+ row targets for a long run.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.data.specs import DATASETS
from repro.workload.measurement import FAMILIES

#: Programmatic default for the sweep worker count (``set_default_jobs``).
_DEFAULT_JOBS_OVERRIDE: int | None = None


def set_default_jobs(jobs: int | None) -> None:
    """Set the process-wide default worker count (CLI ``--jobs``).

    ``None`` clears the override, falling back to ``REPRO_JOBS``.
    """
    global _DEFAULT_JOBS_OVERRIDE
    if jobs is not None and jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    _DEFAULT_JOBS_OVERRIDE = jobs


def default_jobs() -> int:
    """Worker count for sweeps: override, then ``REPRO_JOBS``, then 1.

    ``REPRO_JOBS=auto`` (or ``0``) uses every available core.
    """
    if _DEFAULT_JOBS_OVERRIDE is not None:
        return _DEFAULT_JOBS_OVERRIDE
    raw = os.environ.get("REPRO_JOBS", "").strip().lower()
    if not raw:
        return 1
    if raw == "auto":
        return os.cpu_count() or 1
    try:
        jobs = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_JOBS must be an integer or 'auto', got {raw!r}"
        ) from None
    if jobs < 0:
        raise ValueError(f"REPRO_JOBS must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def resolve_jobs(jobs: int | None) -> int:
    """Validate an explicit worker count or fall back to the defaults."""
    if jobs is None:
        return default_jobs()
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by every Section 5 experiment."""

    seed: int = 0
    #: Test-table size the doubling expansion must exceed.
    rows_target: int = 40_000
    #: Cap on training rows (None = the spec's full training size).
    #: 15,000 gives every dataset except KDD its full paper training size;
    #: model parameters estimated from too few rows per class carry
    #: per-member noise that both loosens envelopes and distorts skew.
    train_cap: int | None = 15_000
    #: Discretization bins for naive Bayes / clustering envelopes.
    nb_bins: int = 8
    cluster_bins: int = 8
    #: Node budget of the top-down envelope search (paper's Threshold).
    max_nodes: int = 600
    #: Maximum decision-tree depth.
    tree_max_depth: int = 10
    #: Selectivity gate stripping useless envelopes (Section 4.2).
    selectivity_gate: float | None = 0.2
    index_budget: int = 8
    #: Timed queries run this many times; the best time is kept.
    repeats: int = 2
    datasets: tuple[str, ...] = field(
        default_factory=lambda: tuple(DATASETS)
    )
    families: tuple[str, ...] = field(default_factory=lambda: FAMILIES)

    def train_size(self, spec_train_size: int) -> int:
        if self.train_cap is None:
            return spec_train_size
        return min(spec_train_size, self.train_cap)


#: Default bench-scale configuration (all ten datasets, ~40k-row tables).
DEFAULT_CONFIG = ExperimentConfig()

#: Reduced configuration for unit/integration tests.
SMOKE_CONFIG = ExperimentConfig(
    rows_target=6_000,
    train_cap=300,
    nb_bins=4,
    cluster_bins=4,
    max_nodes=150,
    tree_max_depth=8,
    repeats=1,
    datasets=("diabetes", "hypothyroid", "balance_scale"),
)

#: Paper-scale configuration (>1M-row tables, full training sizes).
PAPER_SCALE = ExperimentConfig(
    rows_target=1_000_000,
    train_cap=None,
    max_nodes=1_000,
)
