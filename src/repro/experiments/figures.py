"""Figure reproductions: Figures 3-7 of the paper.

The paper's figures are bar charts and a scatter plot; these runners emit
the same series as data tables (and ASCII bars), which is what
EXPERIMENTS.md records next to the published shapes.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.experiments.config import DEFAULT_CONFIG, ExperimentConfig
from repro.experiments.harness import run_all
from repro.workload.measurement import (
    FAMILY_CLUSTERING,
    FAMILY_DECISION_TREE,
    FAMILY_NAIVE_BAYES,
    QueryMeasurement,
)
from repro.workload.report import (
    SelectivityBucketRow,
    TightnessPoint,
    format_table,
    plan_change_by_dataset,
    reduction_by_selectivity,
    tightness_scatter,
    tightness_summary,
)

_FIGURE_FAMILY = {
    3: FAMILY_DECISION_TREE,
    4: FAMILY_NAIVE_BAYES,
    5: FAMILY_CLUSTERING,
}


def figure_plan_change(
    figure: int,
    config: ExperimentConfig = DEFAULT_CONFIG,
    measurements: Sequence[QueryMeasurement] | None = None,
) -> dict[str, float]:
    """Figures 3/4/5: per-dataset % plan change for one model family."""
    family = _FIGURE_FAMILY[figure]
    if measurements is None:
        measurements = run_all(config)
    return plan_change_by_dataset(list(measurements), family)


def print_figure_plan_change(
    figure: int, config: ExperimentConfig = DEFAULT_CONFIG
) -> str:
    """Print one of Figures 3-5 as a table with ASCII bars."""
    family = _FIGURE_FAMILY[figure]
    series = figure_plan_change(figure, config)
    rows = [
        (dataset, pct, _bar(pct))
        for dataset, pct in sorted(series.items())
    ]
    text = (
        f"Figure {figure}: % queries with changed plan — {family}\n"
        + format_table(["Data set", "% changed", ""], rows)
    )
    print(text)
    return text


def figure6_selectivity(
    config: ExperimentConfig = DEFAULT_CONFIG,
    measurements: Sequence[QueryMeasurement] | None = None,
) -> list[SelectivityBucketRow]:
    """Figure 6: average runtime reduction per selectivity bucket."""
    if measurements is None:
        measurements = run_all(config)
    return reduction_by_selectivity(list(measurements))


def print_figure6(config: ExperimentConfig = DEFAULT_CONFIG) -> str:
    """Print the Figure 6 selectivity-bucket table."""
    rows = figure6_selectivity(config)
    text = (
        "Figure 6: runtime improvement vs selectivity "
        "(original | upper-envelope buckets)\n"
        + format_table(
            [
                "Selectivity",
                "Reduction% (orig)",
                "n",
                "Reduction% (envelope)",
                "n",
            ],
            [
                (
                    r.bucket,
                    r.original_reduction_pct,
                    r.original_count,
                    r.envelope_reduction_pct,
                    r.envelope_count,
                )
                for r in rows
            ],
        )
    )
    print(text)
    return text


def figure7_tightness(
    config: ExperimentConfig = DEFAULT_CONFIG,
    measurements: Sequence[QueryMeasurement] | None = None,
) -> list[TightnessPoint]:
    """Figure 7: original vs envelope selectivity (NB and clustering)."""
    if measurements is None:
        measurements = run_all(config)
    return tightness_scatter(list(measurements))


def print_figure7(config: ExperimentConfig = DEFAULT_CONFIG) -> str:
    """Print the Figure 7 tightness scatter and its summary line."""
    points = figure7_tightness(config)
    summary = tightness_summary(points)
    rows = [
        (
            p.dataset,
            p.family,
            str(p.class_label),
            f"{p.original_selectivity:.4f}",
            f"{p.envelope_selectivity:.4f}",
        )
        for p in sorted(
            points, key=lambda p: (p.family, p.dataset, str(p.class_label))
        )
    ]
    text = (
        "Figure 7: tightness of approximation (per-class scatter)\n"
        + format_table(
            ["Data set", "Family", "Class", "Orig. sel", "Envelope sel"],
            rows,
        )
        + "\n"
        + (
            f"tight (<=2x orig or <=1%): {summary['tight_fraction']:.1%}; "
            f"loose but small enough for indexes (<=10%): "
            f"{summary['small_enough_fraction']:.1%}; "
            f"useful overall: {summary['useful_fraction']:.1%}"
        )
    )
    print(text)
    return text


def _bar(pct: float, width: int = 30) -> str:
    filled = int(round(pct / 100.0 * width))
    return "#" * filled


def main() -> None:
    """Print every figure at the default scale."""
    for figure in (3, 4, 5):
        print_figure_plan_change(figure)
        print()
    print_figure6()
    print()
    print_figure7()


if __name__ == "__main__":
    main()
