"""Shared experiment harness: train, derive, load, measure — with caching.

Every table/figure of Section 5 aggregates the same underlying measurement
sweep (all datasets x all model families x all classes).  ``run_all``
performs that sweep once per configuration and caches it in-process so each
benchmark regenerates its artifact from the same run, exactly as the paper
derives all its tables and figures from one experimental campaign.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.derive import derive_envelopes
from repro.core.envelope import UpperEnvelope
from repro.core.predicates import Value
from repro.data.generators import Dataset, generate
from repro.data.specs import dataset_spec
from repro.exceptions import WorkloadError
from repro.core.cluster_envelope import clustering_space
from repro.mining.base import MiningModel
from repro.mining.decision_tree import DecisionTreeLearner
from repro.mining.discretized_cluster import DiscretizedClusterModel
from repro.mining.kmeans import KMeansLearner
from repro.mining.naive_bayes import NaiveBayesLearner
from repro.experiments.config import DEFAULT_CONFIG, ExperimentConfig
from repro.workload.measurement import (
    FAMILY_CLUSTERING,
    FAMILY_DECISION_TREE,
    FAMILY_NAIVE_BAYES,
    QueryMeasurement,
)
from repro.workload.runner import load_dataset, run_family


@dataclass(frozen=True)
class TrainedFamily:
    """One trained model with envelopes and timing for the overhead study."""

    family: str
    model: MiningModel
    envelopes: dict[Value, UpperEnvelope]
    train_seconds: float
    derive_seconds: float


_MEASUREMENT_CACHE: dict[ExperimentConfig, list[QueryMeasurement]] = {}
_TRAINED_CACHE: dict[
    tuple[ExperimentConfig, str, str], TrainedFamily
] = {}


def numeric_feature_columns(dataset: Dataset) -> tuple[str, ...]:
    """Feature columns usable by distance-based clustering (non-string)."""
    first = dataset.train_rows[0]
    return tuple(
        c for c in dataset.feature_columns if not isinstance(first[c], str)
    )


def train_family(
    dataset: Dataset, family: str, config: ExperimentConfig
) -> TrainedFamily:
    """Train one model family on a dataset and derive its envelopes."""
    key = (config, dataset.name, family)
    if key in _TRAINED_CACHE:
        return _TRAINED_CACHE[key]
    started = time.perf_counter()
    if family == FAMILY_DECISION_TREE:
        model: MiningModel = DecisionTreeLearner(
            dataset.feature_columns,
            dataset.target_column,
            max_depth=config.tree_max_depth,
            name=f"tree_{dataset.name}",
        ).fit(dataset.train_rows)
        train_seconds = time.perf_counter() - started
        envelopes = derive_envelopes(model)
    elif family == FAMILY_NAIVE_BAYES:
        model = NaiveBayesLearner(
            dataset.feature_columns,
            dataset.target_column,
            bins=config.nb_bins,
            name=f"nb_{dataset.name}",
        ).fit(dataset.train_rows)
        train_seconds = time.perf_counter() - started
        envelopes = derive_envelopes(model, max_nodes=config.max_nodes)
    elif family == FAMILY_CLUSTERING:
        columns = numeric_feature_columns(dataset)
        if not columns:
            raise WorkloadError(
                f"dataset {dataset.name!r} has no numeric columns to cluster"
            )
        kmeans = KMeansLearner(
            columns,
            dataset.spec.n_clusters,
            seed=config.seed,
            weighting="kurtosis",
            name=f"kmeans_{dataset.name}",
        ).fit(dataset.train_rows)
        # Cluster models are deployed over discretized attributes, as in
        # Analysis Server's DISCRETIZED columns (paper Section 2.2) — the
        # setting under which the Section 3.3 NB reduction is exact.
        space = clustering_space(kmeans, dataset.train_rows, bins=config.cluster_bins)
        model = DiscretizedClusterModel(kmeans, space)
        train_seconds = time.perf_counter() - started
        envelopes = derive_envelopes(model, max_nodes=config.max_nodes)
    else:
        raise WorkloadError(f"unknown model family {family!r}")
    derive_seconds = sum(e.seconds for e in envelopes.values())
    trained = TrainedFamily(
        family=family,
        model=model,
        envelopes=envelopes,
        train_seconds=train_seconds,
        derive_seconds=derive_seconds,
    )
    _TRAINED_CACHE[key] = trained
    return trained


def dataset_for(config: ExperimentConfig, name: str) -> Dataset:
    """Generate one dataset at the configuration's training scale."""
    spec = dataset_spec(name)
    return generate(
        spec, train_size=config.train_size(spec.train_size), seed=config.seed
    )


def run_task(
    config: ExperimentConfig, name: str, family: str
) -> list[QueryMeasurement]:
    """Run one self-contained (dataset, family) task of the sweep grid.

    The task regenerates its dataset, opens its own database, trains its
    model, derives envelopes, and measures — no shared state, so the
    parallel engine can run tasks in worker processes.
    """
    dataset = dataset_for(config, name)
    loaded = load_dataset(dataset, config.rows_target)
    try:
        trained = train_family(dataset, family, config)
        return run_family(
            loaded,
            family,
            trained.model,
            trained.envelopes,
            selectivity_gate=config.selectivity_gate,
            index_budget=config.index_budget,
            repeats=config.repeats,
        )
    finally:
        loaded.db.close()


def run_all(
    config: ExperimentConfig = DEFAULT_CONFIG,
    jobs: int | None = None,
) -> list[QueryMeasurement]:
    """The full measurement sweep.

    Results are memoized in-process and persisted to a sharded per-task
    disk cache (see :mod:`repro.experiments.persistence`) so benchmark
    sessions do not re-run a multi-minute sweep for every invocation and
    an interrupted sweep resumes from its finished tasks.

    ``jobs`` (default: ``REPRO_JOBS`` / CLI ``--jobs``, else 1) selects
    the worker count; above 1 the independent (dataset, family) tasks run
    across a process pool (:mod:`repro.experiments.parallel`) and are
    merged deterministically, so the result is identical to the serial
    path modulo wall-clock fields.
    """
    from repro.experiments import parallel, persistence
    from repro.experiments.config import resolve_jobs

    jobs = resolve_jobs(jobs)
    if config in _MEASUREMENT_CACHE:
        return _MEASUREMENT_CACHE[config]
    use_cache = persistence.cache_enabled()
    if use_cache:
        cached = persistence.load_sweep(config)
        if cached is not None:
            _MEASUREMENT_CACHE[config] = cached
            return cached
    tasks = parallel.sweep_tasks(config)
    results: dict[tuple[str, str], list[QueryMeasurement]] = {}
    missing: list[tuple[str, str]] = []
    for task in tasks:
        entry = persistence.load_task(config, *task) if use_cache else None
        if entry is not None:
            results[task] = entry
        else:
            missing.append(task)
    if missing:
        def persist(task, measurements):
            persistence.save_task(config, task[0], task[1], measurements)

        on_result = persist if use_cache else None
        if jobs > 1:
            results.update(
                parallel.run_tasks(
                    config, missing, jobs=jobs, on_result=on_result
                )
            )
        else:
            # Serial fallback: group by dataset so one expanded table is
            # loaded once and shared by its families, as the paper runs
            # the evaluation.
            by_dataset: dict[str, list[str]] = {}
            for name, family in missing:
                by_dataset.setdefault(name, []).append(family)
            for name, families in by_dataset.items():
                dataset = dataset_for(config, name)
                loaded = load_dataset(dataset, config.rows_target)
                try:
                    for family in families:
                        trained = train_family(dataset, family, config)
                        measurements = run_family(
                            loaded,
                            family,
                            trained.model,
                            trained.envelopes,
                            selectivity_gate=config.selectivity_gate,
                            index_budget=config.index_budget,
                            repeats=config.repeats,
                        )
                        results[(name, family)] = measurements
                        if on_result is not None:
                            on_result((name, family), measurements)
                finally:
                    loaded.db.close()
    measurements = [m for task in tasks for m in results[task]]
    _MEASUREMENT_CACHE[config] = measurements
    return measurements


def clear_caches() -> None:
    """Reset memoized sweeps (tests use this to force fresh runs)."""
    _MEASUREMENT_CACHE.clear()
    _TRAINED_CACHE.clear()
