"""Experiment E8: optimization and precompute overheads (Section 5, item iii).

The paper reports — without a table, "due to lack of space" — that (a) the
time to precompute upper envelopes per class is "a negligible fraction of
the model training time", and (b) looking up atomic envelopes is
insignificant next to query optimization.  This runner produces the numbers
behind both claims for our reproduction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.catalog import ModelCatalog
from repro.core.optimizer import MiningQuery, optimize
from repro.core.rewrite import PredictionEquals
from repro.experiments.config import DEFAULT_CONFIG, ExperimentConfig
from repro.experiments.harness import dataset_for, train_family
from repro.workload.report import format_table


@dataclass(frozen=True)
class OverheadRow:
    """Training-vs-derivation timing for one (dataset, family) pair."""

    dataset: str
    family: str
    train_seconds: float
    derive_seconds: float
    n_classes: int
    optimize_seconds: float
    lookup_fraction: float

    @property
    def derive_fraction(self) -> float:
        if self.train_seconds <= 0:
            return 0.0
        return self.derive_seconds / self.train_seconds


def overhead_rows(
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> list[OverheadRow]:
    """Measure per-family training, derivation, and optimization times."""
    rows: list[OverheadRow] = []
    for name in config.datasets:
        dataset = dataset_for(config, name)
        for family in config.families:
            trained = train_family(dataset, family, config)
            catalog = ModelCatalog()
            catalog.register(
                trained.model,
                rows=dataset.train_rows,
                envelopes=trained.envelopes,
            )
            # Time the full optimization of one atomic mining query and,
            # inside it, the share spent looking up atomic envelopes.
            label = trained.model.class_labels[0]
            query = MiningQuery(
                dataset.name,
                mining_predicates=(
                    PredictionEquals(trained.model.name, label),
                ),
            )
            started = time.perf_counter()
            optimize(query, catalog)
            optimize_seconds = time.perf_counter() - started
            started = time.perf_counter()
            catalog.envelope(trained.model.name, label)
            lookup_seconds = time.perf_counter() - started
            rows.append(
                OverheadRow(
                    dataset=name,
                    family=family,
                    train_seconds=trained.train_seconds,
                    derive_seconds=trained.derive_seconds,
                    n_classes=len(trained.model.class_labels),
                    optimize_seconds=optimize_seconds,
                    lookup_fraction=(
                        lookup_seconds / optimize_seconds
                        if optimize_seconds > 0
                        else 0.0
                    ),
                )
            )
    return rows


def print_overheads(config: ExperimentConfig = DEFAULT_CONFIG) -> str:
    """Print the E8 overhead table; returns the rendered text."""
    rows = overhead_rows(config)
    text = (
        "Envelope precompute vs training time; lookup vs optimize time\n"
        + format_table(
            [
                "Data set",
                "Family",
                "Train s",
                "Derive s",
                "Derive/Train",
                "Optimize ms",
                "Lookup share",
            ],
            [
                (
                    r.dataset,
                    r.family,
                    f"{r.train_seconds:.3f}",
                    f"{r.derive_seconds:.3f}",
                    f"{r.derive_fraction:.2f}",
                    f"{r.optimize_seconds * 1000:.1f}",
                    f"{r.lookup_fraction:.1%}",
                )
                for r in rows
            ],
        )
    )
    print(text)
    return text


def main() -> None:
    """CLI entry point for the overhead table."""
    print_overheads()


if __name__ == "__main__":
    main()
