"""Parallel sweep/derivation engine.

The Section 5 evaluation is a dataset x model-family grid of *independent*
measurements: each (dataset, family) task trains its own model, derives
its own envelopes, loads its own expanded table, and times its own
queries.  Nothing couples two tasks, so the grid shards cleanly across a
:class:`~concurrent.futures.ProcessPoolExecutor` — the same observation
that lets disjunctive-predicate engines evaluate independent branches
concurrently.

Workers are self-contained: each one regenerates its dataset from the
(picklable) :class:`~repro.experiments.config.ExperimentConfig`, opens its
own in-memory :class:`~repro.sql.database.Database`, trains, derives, and
measures.  Only the finished ``QueryMeasurement`` list crosses the process
boundary.  The parent merges results in configuration order, so the sweep
output is identical to the serial path modulo wall-clock fields (model
training, envelope derivation, dataset expansion, and plan selection are
all seeded and deterministic).

The worker count comes from ``REPRO_JOBS`` / ``--jobs`` (see
:func:`repro.experiments.config.default_jobs`); ``run_all`` falls back to
the serial path when it resolves to 1.
"""

from __future__ import annotations

import json
import os
import time
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor, as_completed
from pathlib import Path

from repro import obs
from repro.experiments.config import DEFAULT_CONFIG, ExperimentConfig
from repro.workload.measurement import QueryMeasurement

#: One independent unit of the sweep grid.
SweepTask = tuple[str, str]

#: ``QueryMeasurement`` fields that record wall-clock time.  Everything
#: else is deterministic, so serial and parallel sweeps must agree on it.
TIMING_FIELDS = frozenset(
    {"scan_seconds", "query_seconds", "derive_seconds"}
)


def sweep_tasks(config: ExperimentConfig) -> list[SweepTask]:
    """The (dataset, family) grid, in deterministic configuration order."""
    return [
        (dataset, family)
        for dataset in config.datasets
        for family in config.families
    ]


def measurement_key(measurement: QueryMeasurement) -> tuple:
    """All non-timing fields of a measurement, for determinism checks."""
    return tuple(
        getattr(measurement, name)
        for name in sorted(QueryMeasurement.__dataclass_fields__)
        if name not in TIMING_FIELDS
    )


def _execute_task(
    config: ExperimentConfig,
    dataset: str,
    family: str,
    trace_dir: str | None = None,
) -> list[QueryMeasurement]:
    """Worker entry point: run one self-contained (dataset, family) task.

    When the parent session is tracing, each worker writes its own
    per-task trace file (``trace_task_<dataset>__<family>.jsonl``) into
    the shared trace directory — the same shard-per-task layout as the
    sweep cache, merged deterministically by the reader's sorted-filename
    walk (:func:`repro.obs.trace_files`).
    """
    from repro.experiments import harness

    if trace_dir is not None:
        obs.configure(trace_dir, label=f"task_{dataset}__{family}")
    try:
        with obs.span("sweep.task", dataset=dataset, family=family):
            return harness.run_task(config, dataset, family)
    finally:
        if trace_dir is not None:
            obs.flush()


def run_tasks(
    config: ExperimentConfig,
    tasks: Sequence[SweepTask],
    jobs: int,
    on_result: Callable[[SweepTask, list[QueryMeasurement]], None]
    | None = None,
) -> dict[SweepTask, list[QueryMeasurement]]:
    """Run sweep tasks across ``jobs`` worker processes.

    ``on_result`` fires in the parent as each task completes (the harness
    uses it to persist per-task cache shards incrementally, so an
    interrupted sweep resumes from the finished tasks).  The returned
    mapping is keyed by task; callers merge in their own order, so the
    nondeterministic completion order never leaks into results.
    """
    results: dict[SweepTask, list[QueryMeasurement]] = {}
    if jobs <= 1 or len(tasks) <= 1:
        for dataset, family in tasks:
            measurements = _execute_task(config, dataset, family)
            results[(dataset, family)] = measurements
            if on_result is not None:
                on_result((dataset, family), measurements)
        return results
    # Workers cannot inherit the parent's tracer (the fork-safety guard
    # drops their writes), so hand them the directory and let each open
    # its own per-task file.
    trace_dir = obs.trace_directory()
    with ProcessPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
        futures = {
            pool.submit(
                _execute_task, config, dataset, family, trace_dir
            ): (dataset, family)
            for dataset, family in tasks
        }
        for future in as_completed(futures):
            task = futures[future]
            measurements = future.result()
            results[task] = measurements
            if on_result is not None:
                on_result(task, measurements)
    return results


def benchmark_parallel_sweep(
    config: ExperimentConfig = DEFAULT_CONFIG,
    jobs: Iterable[int] = (1, 4),
    path: str | Path = "BENCH_parallel_sweep.json",
    scale: str | None = None,
) -> dict:
    """Time the same sweep serially and in parallel; write a report.

    Disk and in-process caches are bypassed so every run measures real
    compute.  The report records per-run wall-clock, the speedup of each
    parallel run over the serial baseline, and whether all runs produced
    identical measurement sets (ignoring timing fields).
    """
    from repro.experiments import harness

    jobs_list = sorted(set(int(j) for j in jobs))
    if not jobs_list or jobs_list[0] < 1:
        raise ValueError(f"jobs must all be >= 1, got {jobs_list}")
    previous_cache = os.environ.get("REPRO_SWEEP_CACHE")
    os.environ["REPRO_SWEEP_CACHE"] = "off"
    runs: list[dict] = []
    keys: list[list[tuple]] = []
    try:
        for job_count in jobs_list:
            harness.clear_caches()
            started = time.perf_counter()
            measurements = harness.run_all(config, jobs=job_count)
            elapsed = time.perf_counter() - started
            runs.append(
                {
                    "jobs": job_count,
                    "seconds": elapsed,
                    "measurements": len(measurements),
                }
            )
            keys.append([measurement_key(m) for m in measurements])
    finally:
        if previous_cache is None:
            os.environ.pop("REPRO_SWEEP_CACHE", None)
        else:
            os.environ["REPRO_SWEEP_CACHE"] = previous_cache
        harness.clear_caches()
    serial_seconds = next(
        r["seconds"] for r in runs if r["jobs"] == jobs_list[0]
    )
    for run in runs:
        run["speedup_vs_first"] = (
            serial_seconds / run["seconds"] if run["seconds"] > 0 else None
        )
    report = {
        "benchmark": "parallel_sweep",
        "scale": scale,
        "cpu_count": os.cpu_count(),
        "tasks": len(sweep_tasks(config)),
        "datasets": list(config.datasets),
        "families": list(config.families),
        "rows_target": config.rows_target,
        "runs": runs,
        "identical_measurements": all(k == keys[0] for k in keys[1:]),
    }
    Path(path).write_text(json.dumps(report, indent=2) + "\n")
    return report
