"""Disk persistence for measurement sweeps, sharded per task.

A full DEFAULT-scale sweep takes many minutes (it trains thirty models,
derives several hundred envelopes, and loads ten doubled datasets), so the
harness caches finished sweeps on disk keyed by a fingerprint of the
configuration and the library version.  Delete the cache directory (or set
``REPRO_SWEEP_CACHE=off``) to force fresh measurements.

Layout (format 3): each sweep owns a directory
``<cache_dir>/sweep_<fingerprint>/`` holding one JSON shard per
(dataset, model-family) task, e.g. ``task_diabetes__naive_bayes.json``.
Shards are written atomically (tempfile + ``os.replace``) so an
interrupted writer never leaves a half-written file behind and concurrent
workers of the parallel engine (:mod:`repro.experiments.parallel`) can
persist their tasks without clobbering each other.  Legacy single-file
format-2 caches are migrated to shards on first read.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
from dataclasses import asdict
from pathlib import Path

from repro.experiments.config import ExperimentConfig
from repro.sql.planner import AccessPath
from repro.workload.measurement import QueryMeasurement

#: Cache format version: bump when QueryMeasurement's shape or the shard
#: layout changes.  Format 2 was one monolithic JSON file per sweep;
#: format 3 shards the sweep into per-task files (see module docstring).
_FORMAT = 3
_LEGACY_FORMAT = 2


def cache_enabled() -> bool:
    """Whether sweep caching is on (``REPRO_SWEEP_CACHE`` opt-out)."""
    return os.environ.get("REPRO_SWEEP_CACHE", "on").lower() not in (
        "off",
        "0",
        "no",
    )


def default_cache_dir() -> Path:
    """Cache directory (``REPRO_SWEEP_CACHE_DIR`` or ``.repro_cache``)."""
    override = os.environ.get("REPRO_SWEEP_CACHE_DIR")
    if override:
        return Path(override)
    return Path(".repro_cache")


def config_fingerprint(config: ExperimentConfig, fmt: int = _FORMAT) -> str:
    """Stable hash of a configuration plus the library version."""
    from repro import __version__

    payload = json.dumps(
        {"config": asdict(config), "version": __version__, "fmt": fmt},
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:20]


def sweep_dir(
    config: ExperimentConfig, cache_dir: Path | None = None
) -> Path:
    """Directory holding one sweep's per-task shards."""
    directory = cache_dir if cache_dir is not None else default_cache_dir()
    return directory / f"sweep_{config_fingerprint(config)}"


def task_path(
    config: ExperimentConfig,
    dataset: str,
    family: str,
    cache_dir: Path | None = None,
) -> Path:
    """Shard file for one (dataset, family) task of a sweep."""
    return sweep_dir(config, cache_dir) / f"task_{dataset}__{family}.json"


def _measurement_to_dict(measurement: QueryMeasurement) -> dict:
    payload = asdict(measurement)
    payload["access_path"] = measurement.access_path.value
    return payload


def _measurement_from_dict(payload: dict) -> QueryMeasurement:
    payload = dict(payload)
    payload["access_path"] = AccessPath(payload["access_path"])
    return QueryMeasurement(**payload)


def _atomic_write_json(path: Path, payload: dict) -> None:
    """Write JSON via a same-directory tempfile and ``os.replace``.

    Readers either see the previous complete file or the new complete
    file, never a torn write — the invariant the parallel engine's
    concurrent workers rely on.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    handle, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "w") as stream:
            stream.write(json.dumps(payload))
        os.replace(tmp_name, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)
        raise


def save_task(
    config: ExperimentConfig,
    dataset: str,
    family: str,
    measurements: list[QueryMeasurement],
    cache_dir: Path | None = None,
) -> Path:
    """Atomically write one task's measurements; returns the shard path."""
    path = task_path(config, dataset, family, cache_dir)
    payload = {
        "format": _FORMAT,
        "dataset": dataset,
        "family": family,
        "measurements": [_measurement_to_dict(m) for m in measurements],
    }
    _atomic_write_json(path, payload)
    return path


def load_task(
    config: ExperimentConfig,
    dataset: str,
    family: str,
    cache_dir: Path | None = None,
) -> list[QueryMeasurement] | None:
    """Load one task's cached measurements, or ``None`` if absent/stale."""
    path = task_path(config, dataset, family, cache_dir)
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text())
        if (
            payload.get("format") != _FORMAT
            or payload.get("dataset") != dataset
            or payload.get("family") != family
        ):
            return None
        return [
            _measurement_from_dict(entry)
            for entry in payload["measurements"]
        ]
    except (ValueError, KeyError, TypeError):
        # A corrupt or torn shard is treated as a miss, never an error.
        return None


def save_sweep(
    config: ExperimentConfig,
    measurements: list[QueryMeasurement],
    cache_dir: Path | None = None,
) -> Path:
    """Write a finished sweep as per-task shards; returns the sweep dir."""
    by_task: dict[tuple[str, str], list[QueryMeasurement]] = {}
    for measurement in measurements:
        key = (measurement.dataset, measurement.family)
        by_task.setdefault(key, []).append(measurement)
    for (dataset, family), task_measurements in by_task.items():
        save_task(config, dataset, family, task_measurements, cache_dir)
    return sweep_dir(config, cache_dir)


def load_sweep(
    config: ExperimentConfig,
    cache_dir: Path | None = None,
) -> list[QueryMeasurement] | None:
    """Load a complete cached sweep for ``config``, or ``None``.

    A sweep is complete when every (dataset, family) task of the
    configuration has a valid shard; otherwise the harness re-runs only
    the missing tasks via :func:`load_task`.  A legacy format-2 single
    file is migrated to shards on first read.
    """
    measurements: list[QueryMeasurement] = []
    for dataset in config.datasets:
        for family in config.families:
            entry = load_task(config, dataset, family, cache_dir)
            if entry is None:
                return _migrate_legacy(config, cache_dir)
            measurements.extend(entry)
    return measurements


def _migrate_legacy(
    config: ExperimentConfig,
    cache_dir: Path | None = None,
) -> list[QueryMeasurement] | None:
    """Split a format-2 monolithic sweep file into format-3 shards."""
    directory = cache_dir if cache_dir is not None else default_cache_dir()
    legacy = (
        directory
        / f"sweep_{config_fingerprint(config, fmt=_LEGACY_FORMAT)}.json"
    )
    if not legacy.exists():
        return None
    try:
        payload = json.loads(legacy.read_text())
        if payload.get("format") != _LEGACY_FORMAT:
            return None
        loaded = [
            _measurement_from_dict(entry)
            for entry in payload["measurements"]
        ]
    except (ValueError, KeyError, TypeError):
        return None
    # Reassemble in configuration order and require completeness before
    # committing any shard, so a truncated legacy file stays a miss.
    by_task: dict[tuple[str, str], list[QueryMeasurement]] = {}
    for measurement in loaded:
        key = (measurement.dataset, measurement.family)
        by_task.setdefault(key, []).append(measurement)
    ordered: list[QueryMeasurement] = []
    for dataset in config.datasets:
        for family in config.families:
            entry = by_task.get((dataset, family))
            if not entry:
                return None
            ordered.extend(entry)
    for (dataset, family), task_measurements in by_task.items():
        save_task(config, dataset, family, task_measurements, cache_dir)
    return ordered
