"""Disk persistence for measurement sweeps.

A full DEFAULT-scale sweep takes many minutes (it trains thirty models,
derives several hundred envelopes, and loads ten doubled datasets), so the
harness caches finished sweeps on disk keyed by a fingerprint of the
configuration and the library version.  Delete the cache directory (or set
``REPRO_SWEEP_CACHE=off``) to force fresh measurements.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict
from pathlib import Path

from repro.experiments.config import ExperimentConfig
from repro.sql.planner import AccessPath
from repro.workload.measurement import QueryMeasurement

#: Cache format version: bump when QueryMeasurement's shape changes.
_FORMAT = 2


def cache_enabled() -> bool:
    """Whether sweep caching is on (``REPRO_SWEEP_CACHE`` opt-out)."""
    return os.environ.get("REPRO_SWEEP_CACHE", "on").lower() not in (
        "off",
        "0",
        "no",
    )


def default_cache_dir() -> Path:
    """Cache directory (``REPRO_SWEEP_CACHE_DIR`` or ``.repro_cache``)."""
    override = os.environ.get("REPRO_SWEEP_CACHE_DIR")
    if override:
        return Path(override)
    return Path(".repro_cache")


def config_fingerprint(config: ExperimentConfig) -> str:
    """Stable hash of a configuration plus the library version."""
    from repro import __version__

    payload = json.dumps(
        {"config": asdict(config), "version": __version__, "fmt": _FORMAT},
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:20]


def _measurement_to_dict(measurement: QueryMeasurement) -> dict:
    payload = asdict(measurement)
    payload["access_path"] = measurement.access_path.value
    return payload


def _measurement_from_dict(payload: dict) -> QueryMeasurement:
    payload = dict(payload)
    payload["access_path"] = AccessPath(payload["access_path"])
    return QueryMeasurement(**payload)


def save_sweep(
    config: ExperimentConfig,
    measurements: list[QueryMeasurement],
    cache_dir: Path | None = None,
) -> Path:
    """Write a finished sweep to the cache; returns the file path."""
    directory = cache_dir if cache_dir is not None else default_cache_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"sweep_{config_fingerprint(config)}.json"
    payload = {
        "format": _FORMAT,
        "measurements": [
            _measurement_to_dict(m) for m in measurements
        ],
    }
    path.write_text(json.dumps(payload))
    return path


def load_sweep(
    config: ExperimentConfig,
    cache_dir: Path | None = None,
) -> list[QueryMeasurement] | None:
    """Load a cached sweep for ``config``, or ``None`` if absent/stale."""
    directory = cache_dir if cache_dir is not None else default_cache_dir()
    path = directory / f"sweep_{config_fingerprint(config)}.json"
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text())
        if payload.get("format") != _FORMAT:
            return None
        return [
            _measurement_from_dict(entry)
            for entry in payload["measurements"]
        ]
    except (ValueError, KeyError, TypeError):
        # A corrupt cache entry is treated as a miss, never an error.
        return None
