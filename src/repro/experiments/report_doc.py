"""Generate EXPERIMENTS.md — the paper-versus-measured record.

``python -m repro report`` (or :func:`write_experiments_md`) renders every
table and figure reproduction side by side with the paper's published
values, from an actual measurement sweep.  Committing the generated file
keeps the recorded numbers honest: they are whatever the harness measured,
not hand-typed.
"""

from __future__ import annotations

from pathlib import Path

from repro.data.specs import dataset_spec
from repro.experiments.config import DEFAULT_CONFIG, ExperimentConfig
from repro.experiments.harness import run_all
from repro.experiments.tables import (
    PAPER_PLAN_CHANGE,
    PAPER_RUNTIME_REDUCTION,
    table2_rows,
)
from repro.workload.measurement import FAMILIES
from repro.workload.report import (
    plan_change_by_dataset,
    plan_change_by_family,
    reduction_by_selectivity,
    runtime_reduction_by_family,
    tightness_scatter,
    tightness_summary,
)

_FAMILY_TITLES = {
    "decision_tree": "Decision tree",
    "naive_bayes": "Naive Bayes",
    "clustering": "Clustering",
}


def _md_table(headers: list[str], rows: list[list[str]]) -> str:
    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def render_experiments_md(config: ExperimentConfig = DEFAULT_CONFIG) -> str:
    """Render the full document from a (possibly cached) sweep."""
    measurements = run_all(config)
    sections: list[str] = []
    sections.append(
        "# EXPERIMENTS — paper versus measured\n\n"
        "Every number in this file was produced by "
        "`repro.experiments.report_doc` from an actual measurement sweep "
        f"over all {len(config.datasets)} datasets "
        f"({len(measurements)} per-class workload queries; "
        f"test tables doubled past {config.rows_target:,} rows, "
        "training sizes per Table 2 capped at "
        f"{config.train_cap:,}).\n\n"
        "Absolute times are SQLite-on-this-machine, not SQL Server 2000 on "
        "2002 hardware; the comparisons below are about *shape*: which "
        "model families benefit, which datasets' plans change, where the "
        "selectivity crossover falls. Regenerate with "
        "`python -m repro report`.\n"
    )

    # -- Table 2 ------------------------------------------------------------
    sections.append("## Table 2 — data sets\n")
    rows2 = table2_rows(config)
    sections.append(
        _md_table(
            [
                "Data set",
                "Test size (ours)",
                "Test size (paper, M)",
                "Training size",
                "# classes",
                "# clusters",
            ],
            [
                [
                    r.dataset,
                    f"{r.test_size:,}",
                    f"{dataset_spec(r.dataset).paper_test_size_millions}",
                    f"{r.train_size:,}",
                    str(r.n_classes),
                    str(r.n_clusters),
                ]
                for r in rows2
            ],
        )
    )
    sections.append(
        "\nThe paper doubles each training set past 1M rows; the same "
        "construction runs here at a laptop-friendly target "
        "(`PAPER_SCALE` restores >1M).\n"
    )

    # -- §5.2.1 tables --------------------------------------------------------
    reduction = runtime_reduction_by_family(measurements)
    plans = plan_change_by_family(measurements)
    sections.append("## §5.2.1 — average reduction in running time (%)\n")
    sections.append(
        _md_table(
            ["Family", "Paper", "Measured"],
            [
                [
                    _FAMILY_TITLES[f],
                    f"{PAPER_RUNTIME_REDUCTION[f]:.1f}",
                    f"{reduction.get(f, 0.0):.1f}",
                ]
                for f in FAMILIES
            ],
        )
    )
    sections.append("\n## §5.2.1 — queries with changed physical plan (%)\n")
    sections.append(
        _md_table(
            ["Family", "Paper", "Measured"],
            [
                [
                    _FAMILY_TITLES[f],
                    f"{PAPER_PLAN_CHANGE[f]:.1f}",
                    f"{plans.get(f, 0.0):.1f}",
                ]
                for f in FAMILIES
            ],
        )
    )
    sections.append(
        "\nShape notes: the decision-tree family (exact envelopes) "
        "reproduces most closely. Naive Bayes and clustering reproduce the "
        "paper's *mechanism* — selective classes get indexed plans or "
        "constant scans, dominant classes are left alone — at lower "
        "aggregate percentages: our synthetic replicas are harder for "
        "axis-aligned envelopes than the original UCI data on some "
        "datasets, and the SQLite planner demands more selective "
        "per-disjunct atoms than SQL Server's before switching plans.\n"
    )

    # -- Figures 3-5 ----------------------------------------------------------
    for figure, family in ((3, "decision_tree"), (4, "naive_bayes"), (5, "clustering")):
        series = plan_change_by_dataset(measurements, family)
        sections.append(
            f"## Figure {figure} — % plan change per data set "
            f"({_FAMILY_TITLES[family]})\n"
        )
        sections.append(
            _md_table(
                ["Data set", "Measured %", ""],
                [
                    [
                        name,
                        f"{value:.0f}",
                        "#" * int(round(value / 4)),
                    ]
                    for name, value in sorted(series.items())
                ],
            )
        )
        sections.append(
            "\nPaper's reading: \"upper envelope predicates have greater "
            "impact on the plan for data sets where the number of classes "
            "is relatively large (e.g., kddcup, letter, shuttle), and less "
            "impact for data sets where number of classes is small (e.g., "
            "Diabetes, Parity)\" — visible above.\n"
        )

    # -- Figure 6 -------------------------------------------------------------
    sections.append(
        "## Figure 6 — running-time improvement vs selectivity\n"
    )
    buckets = reduction_by_selectivity(measurements)
    sections.append(
        _md_table(
            [
                "Selectivity bucket",
                "Avg reduction % (by original sel.)",
                "n",
                "Avg reduction % (by envelope sel.)",
                "n",
            ],
            [
                [
                    b.bucket,
                    f"{b.original_reduction_pct:.1f}",
                    str(b.original_count),
                    f"{b.envelope_reduction_pct:.1f}",
                    str(b.envelope_count),
                ]
                for b in buckets
            ],
        )
    )
    sections.append(
        "\nPaper: \"the reduction in running time is most significant when "
        "the selectivity is below 10%\" — the measured gradient matches, "
        "collapsing to zero above 50%.\n"
    )

    # -- Figure 7 -------------------------------------------------------------
    points = tightness_scatter(measurements)
    summary = tightness_summary(points)
    loose = [
        p
        for p in points
        if p.envelope_selectivity > max(2 * p.original_selectivity, 0.1)
    ]
    tight = [p for p in points if p not in loose]

    def mean(xs):
        return sum(xs) / len(xs) if xs else float("nan")

    loose_mean = mean([p.original_selectivity for p in loose])
    tight_mean = mean([p.original_selectivity for p in tight])
    sections.append("## Figure 7 — tightness of approximation\n")
    sections.append(
        f"- {len(points)} (class, dataset) points from naive Bayes and "
        "clustering models; soundness holds on every point (no envelope "
        "below the diagonal).\n"
        f"- tight (≤2× original selectivity, or ≤1%): "
        f"{summary['tight_fraction']:.0%}\n"
        f"- loose but ≤10% (still index-worthy): "
        f"{summary['small_enough_fraction']:.0%}\n"
        f"- useful overall: {summary['useful_fraction']:.0%}\n"
        f"- mean original selectivity: loose points {loose_mean:.3f} vs "
        f"tight points {tight_mean:.3f}. The paper attributes its tightness "
        "failures to classes whose original selectivity \"is large to start "
        "with\"; here high-selectivity classes also fail (their envelopes "
        "are stripped by the gate anyway), but a share of *rare* classes "
        "on the hardest multi-class datasets stays loose too — the node "
        "budget runs out before the region search can isolate them.\n"
    )

    # -- Overheads ------------------------------------------------------------
    derive_total = sum(m.derive_seconds for m in measurements)
    sections.append("## §5(iii) — overheads\n")
    sections.append(
        f"- Total atomic-envelope precompute time across every model and "
        f"class: {derive_total:.1f} s (training-time, once per model).\n"
        "- Decision-tree envelope extraction is a negligible fraction of "
        "tree training (see `benchmarks/test_exp8_overhead.py`); the "
        "region search for naive Bayes/clustering costs seconds per class "
        "— heavier than the paper reports relative to (counting-based) "
        "training, but still 'little overhead' in absolute terms.\n"
        "- Atomic-envelope lookup during optimization is a dictionary "
        "access: far below 50% of even a sub-millisecond optimize call "
        "(asserted in the E8 benchmark).\n"
    )

    sections.append(
        "## Ablations (beyond the paper's tables)\n\n"
        "- **A1 node budget** (`benchmarks/test_ablation_threshold.py`): "
        "larger Algorithm 1 budgets monotonically tighten envelopes at "
        "linear derivation cost.\n"
        "- **A2 two-class bounds** (`benchmarks/test_ablation_twoclass.py`): "
        "Lemma 3.2 exact bounds never lose tightness versus the generic "
        "bounds at equal budget.\n"
        "- **A3 enumeration** (`benchmarks/test_ablation_enumeration.py`): "
        "the naive enumerate-and-cover baseline is exact while feasible "
        "and is refused beyond ~10^5 cells, while the top-down search "
        "keeps answering in seconds — the paper's '>24 hours' cliff in "
        "miniature.\n"
        "- **A4 bounds mode** (`benchmarks/test_ablation_bounds_mode.py`): "
        "the pairwise-difference generalization of Lemma 3.2 is never "
        "looser than the paper's separate bounds at equal budget, and "
        "substantially tighter on skewed multi-class models.\n"
        "- **A5 simplification** "
        "(`benchmarks/test_ablation_simplification.py`): mass-aware "
        "coarsening plus weak-constraint pruning cut predicate size "
        "sharply for a bounded selectivity dilution — the Section 4.2 "
        "complexity/tightness trade made measurable.\n"
    )

    sections.append(
        "## Execution knobs\n\n"
        "- **Vectorized residual scoring** "
        "(`PredictionJoinExecutor(vectorized=..., batch_size=...)`): the "
        "residual model filter scores fetched rows in columnar batches "
        "(default 2048 rows) through each family's `predict_batch`; "
        "`vectorized=False` restores the scalar row-at-a-time path. Both "
        "paths return byte-identical rows — `python -m repro "
        "bench-vectorized` (optionally `--batch-size N`) measures the "
        "speedup per model family and asserts the identity into "
        "`BENCH_vectorized_scoring.json`.\n"
        "- **Parallel sweep** (`--jobs`/`REPRO_JOBS`): shards the "
        "measurement grid across worker processes; `python -m repro "
        "bench-parallel` records serial-vs-parallel timings.\n"
        "- **Tracing** (`--trace DIR`/`REPRO_TRACE_DIR`): every "
        "derivation/optimization/execution phase is traced to JSON-lines "
        "files (one per process; sweep workers write per-task shards). "
        "`python -m repro trace-report --trace DIR` summarizes them. Read "
        "the *estimator accuracy* section as estimate-vs-reality feedback "
        "for the selectivity gate: each record pairs the independence-model "
        "estimate of a pushed predicate with its measured selectivity, and "
        "the report prints absolute-error quantiles (p50/p90/max). Errors "
        "near the gate threshold (default 0.2) matter most — an "
        "overestimate there strips an envelope that would have paid off, "
        "an underestimate pushes one that won't; large p90 error is the "
        "signal to revisit the histogram resolution or the independence "
        "assumption before trusting gate-sensitive measurements.\n"
    )
    return "\n".join(sections)


def write_experiments_md(
    path: str | Path = "EXPERIMENTS.md",
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> Path:
    """Render and write the document; returns the path."""
    path = Path(path)
    path.write_text(render_experiments_md(config))
    return path


def main() -> None:
    """CLI entry point: write EXPERIMENTS.md in the working directory."""
    target = write_experiments_md()
    print(f"wrote {target}")


if __name__ == "__main__":
    main()
