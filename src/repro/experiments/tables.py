"""Table reproductions: Table 2 and the two Section 5.2.1 summary tables."""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.expansion import doubled_size
from repro.data.specs import dataset_spec
from repro.experiments.config import DEFAULT_CONFIG, ExperimentConfig
from repro.experiments.harness import run_all
from repro.workload.measurement import QueryMeasurement
from repro.workload.report import (
    format_table,
    plan_change_by_family,
    runtime_reduction_by_family,
)

#: Paper values for the Section 5.2.1 tables, for side-by-side reporting.
PAPER_RUNTIME_REDUCTION = {
    "decision_tree": 73.7,
    "naive_bayes": 63.5,
    "clustering": 79.0,
}
PAPER_PLAN_CHANGE = {
    "decision_tree": 72.7,
    "naive_bayes": 75.3,
    "clustering": 76.6,
}


@dataclass(frozen=True)
class Table2Row:
    """One row of the dataset-summary table."""

    dataset: str
    test_size: int
    train_size: int
    n_classes: int
    n_clusters: int


def table2_rows(config: ExperimentConfig = DEFAULT_CONFIG) -> list[Table2Row]:
    """Reproduce Table 2 at the configuration's scale.

    Test sizes are computed from the same doubling rule the paper uses;
    at ``PAPER_SCALE`` they land just above 1M rows as in the original.
    """
    rows = []
    for name in config.datasets:
        spec = dataset_spec(name)
        train = config.train_size(spec.train_size)
        rows.append(
            Table2Row(
                dataset=name,
                test_size=doubled_size(train, config.rows_target),
                train_size=train,
                n_classes=spec.n_classes,
                n_clusters=spec.n_clusters,
            )
        )
    return rows


def print_table2(config: ExperimentConfig = DEFAULT_CONFIG) -> str:
    """Print the Table 2 dataset summary; returns the rendered text."""
    rows = table2_rows(config)
    text = format_table(
        ["Data Set", "Test size", "Training size", "# classes", "# clusters"],
        [
            (r.dataset, r.test_size, r.train_size, r.n_classes, r.n_clusters)
            for r in rows
        ],
    )
    print(text)
    return text


def table3_runtime_reduction(
    config: ExperimentConfig = DEFAULT_CONFIG,
    measurements: list[QueryMeasurement] | None = None,
) -> dict[str, float]:
    """The average-runtime-reduction table (paper: 73.7 / 63.5 / 79.0)."""
    if measurements is None:
        measurements = run_all(config)
    return runtime_reduction_by_family(measurements)


def table4_plan_change(
    config: ExperimentConfig = DEFAULT_CONFIG,
    measurements: list[QueryMeasurement] | None = None,
) -> dict[str, float]:
    """The plan-change-percentage table (paper: 72.7 / 75.3 / 76.6)."""
    if measurements is None:
        measurements = run_all(config)
    return plan_change_by_family(measurements)


def print_summary_tables(
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> str:
    """Print both Section 5.2.1 tables with the paper's values alongside."""
    measurements = run_all(config)
    reduction = table3_runtime_reduction(config, measurements)
    plans = table4_plan_change(config, measurements)
    lines = []
    lines.append("Average reduction in running time vs full scan (%):")
    lines.append(
        format_table(
            ["Family", "Measured", "Paper"],
            [
                (family, reduction.get(family, 0.0), PAPER_RUNTIME_REDUCTION[family])
                for family in PAPER_RUNTIME_REDUCTION
            ],
        )
    )
    lines.append("")
    lines.append("Queries with changed physical plan (%):")
    lines.append(
        format_table(
            ["Family", "Measured", "Paper"],
            [
                (family, plans.get(family, 0.0), PAPER_PLAN_CHANGE[family])
                for family in PAPER_PLAN_CHANGE
            ],
        )
    )
    text = "\n".join(lines)
    print(text)
    return text


def main() -> None:
    """Print Table 2 and both summary tables at the default scale."""
    print_table2()
    print()
    print_summary_tables()


if __name__ == "__main__":
    main()
