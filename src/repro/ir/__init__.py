"""The predicate intermediate representation (IR).

Every layer of the reproduction manipulates one object — the upper
envelope, an AND/OR expression over data columns (paper Section 3) — and
this package is the single canonical home for working with it:

* :mod:`repro.ir.interning` — hash-consing: :func:`intern` maps every
  predicate tree to one canonical instance (O(1) ``is`` equality between
  interned nodes) and :func:`fingerprint` gives a stable structural
  digest, the key the plan cache and any cross-query sharing use.
* :mod:`repro.ir.visitor` — :class:`PredicateVisitor` /
  :class:`PredicateTransformer`, the one dispatch mechanism shared by
  every traversal (simplification passes, SQL lowering, batch lowering).
* :mod:`repro.ir.passes` — the staged simplification pipeline:
  :class:`Pass`, :class:`PassPipeline`, and :func:`simplify_pipeline`,
  the named, individually-traced decomposition of the old monolithic
  ``simplify``.
* :mod:`repro.ir.batch` — vectorized evaluation as a lowering from the
  same IR (the kernels behind ``Predicate.evaluate_batch``).

The node classes themselves stay in :mod:`repro.core.predicates` (they
predate this package and everything imports them); ``repro.ir`` layers
identity, traversal, and transformation on top without a parallel node
hierarchy.
"""

from repro.ir.interning import (
    clear_intern_table,
    fingerprint,
    intern,
    intern_stats,
)
from repro.ir.passes import (
    Pass,
    PassAbort,
    PassPipeline,
    PassResult,
    default_pipeline,
    simplify_pipeline,
)
from repro.ir.visitor import PredicateTransformer, PredicateVisitor

__all__ = [
    "Pass",
    "PassAbort",
    "PassPipeline",
    "PassResult",
    "PredicateTransformer",
    "PredicateVisitor",
    "clear_intern_table",
    "default_pipeline",
    "fingerprint",
    "intern",
    "intern_stats",
    "simplify_pipeline",
]
