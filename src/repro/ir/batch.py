"""Vectorized (columnar) evaluation as a lowering from the predicate IR.

This module holds the batch kernels behind
:meth:`repro.core.predicates.Predicate.evaluate_batch`: a boolean mask
per batch row, bit-identical to a loop of scalar ``evaluate`` calls.
Structuring them as a :class:`~repro.ir.visitor.PredicateVisitor` makes
batch evaluation one more *lowering* of the same IR that the SQL
compiler lowers to text — one dispatch mechanism, two targets.

Connective kernels recurse through ``operand.evaluate_batch`` (virtual
dispatch) rather than ``self.visit``: predicate subclasses outside the
closed IR algebra may override ``evaluate_batch`` (instrumentation
wrappers in the tests do), and the lowering must honor those overrides.
The short-circuit compaction strategy is unchanged from the previous
in-class kernels: operands are sorted by estimated selectivity when an
estimator is given, and later operands only see still-undecided rows
(`take`-compacted batches carry their column caches along).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.predicates import (
    And,
    Comparison,
    FalsePredicate,
    InSet,
    Interval,
    Not,
    Op,
    Or,
    Predicate,
    SelectivityEstimator,
    TruePredicate,
    Value,
)
from repro.exceptions import PredicateError
from repro.ir.visitor import PredicateVisitor

if TYPE_CHECKING:
    from collections.abc import Iterable

    from repro.core.columns import ColumnBatch


#: Equality against a constant of magnitude below 2**53 may use the
#: float64 column view: every int in that range casts exactly, and any
#: int outside it casts to a float of magnitude >= 2**53, which can
#: never equal a strictly smaller constant.  At or above the bound the
#: cast rounds neighbouring ints together (float64(2**53 + 1) ==
#: float64(2**53)) and equality must fall back to the exact object view.
_EXACT_FLOAT_BOUND = 2.0**53


def _equality_column(
    batch: "ColumnBatch", column: str, value: Value
) -> np.ndarray:
    """The column view whose ``==`` matches scalar equality exactly.

    The object view is always exact (Python's ``==`` between ints and
    floats compares true values, and ``None == v`` is ``False`` just as
    in scalar ``evaluate``); the float64 view is used only when it is
    provably equivalent and therefore free to share with the ordered
    kernels' cache.
    """
    if (
        not isinstance(value, str)
        and abs(value) < _EXACT_FLOAT_BOUND
        and batch.is_numeric(column)
    ):
        return batch.numeric(column)
    return batch.column(column)


def _ordered_column(
    batch: "ColumnBatch", column: str, value: Value
) -> np.ndarray:
    """The column view to use for an ordered comparison against ``value``.

    Mirrors the scalar comparability rule: strings order only against
    string columns, numbers only against numeric columns; anything else is
    schema drift and raises :class:`~repro.exceptions.PredicateError`.
    """
    kind = batch.kind(column)
    if isinstance(value, str):
        if kind != "string":
            raise PredicateError(
                f"cannot order column {column!r} values against {value!r}"
            )
        return batch.column(column)
    if kind != "numeric":
        raise PredicateError(
            f"cannot order column {column!r} values against {value!r}"
        )
    return batch.numeric(column)


class BatchLowering(PredicateVisitor):
    """Lower an IR predicate to a boolean mask over a column batch.

    Stateless — per-call context (batch, estimator) passes through the
    visitor's ``*args``; one shared instance serves every call.
    """

    __slots__ = ()

    def visit_true(
        self,
        pred: TruePredicate,
        batch: "ColumnBatch",
        estimator: SelectivityEstimator | None,
    ) -> np.ndarray:
        return np.ones(len(batch), dtype=bool)

    def visit_false(
        self,
        pred: FalsePredicate,
        batch: "ColumnBatch",
        estimator: SelectivityEstimator | None,
    ) -> np.ndarray:
        return np.zeros(len(batch), dtype=bool)

    def visit_comparison(
        self,
        pred: Comparison,
        batch: "ColumnBatch",
        estimator: SelectivityEstimator | None,
    ) -> np.ndarray:
        if len(batch) == 0:
            return np.zeros(0, dtype=bool)
        if pred.op is Op.EQ or pred.op is Op.NE:
            actual = _equality_column(batch, pred.column, pred.value)
            mask = actual == pred.value
            return mask if pred.op is Op.EQ else ~mask
        actual = _ordered_column(batch, pred.column, pred.value)
        if pred.op is Op.LT:
            return actual < pred.value
        if pred.op is Op.LE:
            return actual <= pred.value
        if pred.op is Op.GT:
            return actual > pred.value
        return actual >= pred.value

    def visit_in_set(
        self,
        pred: InSet,
        batch: "ColumnBatch",
        estimator: SelectivityEstimator | None,
    ) -> np.ndarray:
        n = len(batch)
        if n == 0:
            return np.zeros(0, dtype=bool)
        mask = np.zeros(n, dtype=bool)
        for value in pred.values:
            mask |= _equality_column(batch, pred.column, value) == value
        return mask

    def visit_interval(
        self,
        pred: Interval,
        batch: "ColumnBatch",
        estimator: SelectivityEstimator | None,
    ) -> np.ndarray:
        n = len(batch)
        if n == 0:
            return np.zeros(0, dtype=bool)
        mask = np.ones(n, dtype=bool)
        if pred.low is not None:
            actual = _ordered_column(batch, pred.column, pred.low)
            if pred.low_closed:
                mask &= actual >= pred.low
            else:
                mask &= actual > pred.low
        if pred.high is not None:
            actual = _ordered_column(batch, pred.column, pred.high)
            if pred.high_closed:
                mask &= actual <= pred.high
            else:
                mask &= actual < pred.high
        return mask

    def visit_and(
        self,
        pred: And,
        batch: "ColumnBatch",
        estimator: SelectivityEstimator | None,
    ) -> np.ndarray:
        n = len(batch)
        if n == 0:
            return np.zeros(0, dtype=bool)
        operands: Iterable[Predicate] = pred.operands
        if estimator is not None:
            # Most-selective conjunct first: it eliminates the most rows,
            # so later (possibly expensive) conjuncts see the smallest
            # surviving batch.
            operands = sorted(pred.operands, key=estimator)
        alive: np.ndarray | None = None
        current = batch
        for operand in operands:
            mask = operand.evaluate_batch(current, estimator)
            if mask.all():
                continue
            keep = np.flatnonzero(mask)
            alive = keep if alive is None else alive[keep]
            if keep.size == 0:
                break
            current = current.take(keep)
        if alive is None:
            return np.ones(n, dtype=bool)
        out = np.zeros(n, dtype=bool)
        out[alive] = True
        return out

    def visit_or(
        self,
        pred: Or,
        batch: "ColumnBatch",
        estimator: SelectivityEstimator | None,
    ) -> np.ndarray:
        n = len(batch)
        if n == 0:
            return np.zeros(0, dtype=bool)
        operands: Iterable[Predicate] = pred.operands
        if estimator is not None:
            # Most-admitting disjunct first: it settles the most rows to
            # TRUE, so later disjuncts run on the fewest undecided rows.
            operands = sorted(pred.operands, key=estimator, reverse=True)
        out = np.zeros(n, dtype=bool)
        pending: np.ndarray | None = None
        current = batch
        for operand in operands:
            mask = operand.evaluate_batch(current, estimator)
            if pending is None:
                out |= mask
                pending = np.flatnonzero(~mask)
            else:
                out[pending[mask]] = True
                pending = pending[~mask]
            if pending.size == 0:
                break
            current = batch.take(pending)
        return out

    def visit_not(
        self,
        pred: Not,
        batch: "ColumnBatch",
        estimator: SelectivityEstimator | None,
    ) -> np.ndarray:
        return ~pred.operand.evaluate_batch(batch, estimator)


#: Shared stateless lowering instance behind ``Predicate.evaluate_batch``.
_LOWERING = BatchLowering()


def evaluate_batch(
    pred: Predicate,
    batch: "ColumnBatch",
    estimator: SelectivityEstimator | None = None,
) -> np.ndarray:
    """Boolean mask of ``pred`` over ``batch`` (the IR batch lowering)."""
    return _LOWERING.visit(pred, batch, estimator)
