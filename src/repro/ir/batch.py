"""Vectorized (columnar) evaluation as a lowering from the predicate IR.

This module holds the batch kernels behind
:meth:`repro.core.predicates.Predicate.evaluate_batch`: a boolean mask
per batch row, bit-identical to a loop of scalar ``evaluate`` calls.
Structuring them as a :class:`~repro.ir.visitor.PredicateVisitor` makes
batch evaluation one more *lowering* of the same IR that the SQL
compiler lowers to text — one dispatch mechanism, two targets.

Disjunction-aware strategy
--------------------------

Machine-derived envelopes are wide ORs-of-ANDs built from a small atom
vocabulary, so the same atom (often the same whole conjunct) recurs in
many disjuncts.  Because published predicates are interned
(:mod:`repro.ir.interning`), that repetition is visible as *pointer
identity*, and :class:`BatchLowering` is an **evaluation context** that
exploits it: a per-batch mask cache keyed on ``id(node)`` lowers each
distinct subtree once, at full batch width, and connectives combine the
cached masks with ``&``/``|``/``~``.  Full-width masks are what makes
them shareable — a short-circuit-compacted mask is relative to a
sub-batch and could not be reused by the next disjunct containing the
same atom.  Compaction (``ColumnBatch.take``) is reserved for operands
that *override* ``evaluate_batch`` (model/residual predicates,
instrumentation wrappers): those are expensive and identity-unique, so
restricting them to still-undecided rows is the win, exactly as before.

Operand order is planned **once** per ``(connective node,
estimator-stats version)`` and memoized in a bounded module-level table:
``sorted(operands, key=estimator)`` used to run on every visit — every
batch, and again on every recursive sub-batch evaluation — for an
ordering that only changes when the statistics do.

Raise parity with the scalar algebra is preserved.  Evaluating a later
operand at full width can touch rows the scalar loop would have
short-circuited past (and raise on a ``None`` it never sees); when a
cached full-width evaluation raises :class:`~repro.exceptions.\
PredicateError`, the connective falls back to evaluating that operand on
the still-undecided rows only — precisely the rows the scalar loop
evaluates — so the call raises if and only if the scalar loop raises.

:class:`NaiveBatchLowering` keeps the previous clause-by-clause
strategy (per-visit sorting, compaction everywhere, no mask sharing) as
the reference oracle the disjunction bench verifies byte-identity and
measures speedup against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro import obs
from repro.core.predicates import (
    And,
    Comparison,
    FalsePredicate,
    InSet,
    Interval,
    Not,
    Op,
    Or,
    Predicate,
    SelectivityEstimator,
    TruePredicate,
    Value,
)
from repro.exceptions import PredicateError
from repro.ir.visitor import PredicateVisitor

if TYPE_CHECKING:
    from collections.abc import Iterable

    from repro.core.columns import ColumnBatch


#: Equality against a constant of magnitude below 2**53 may use the
#: float64 column view: every int in that range casts exactly, and any
#: int outside it casts to a float of magnitude >= 2**53, which can
#: never equal a strictly smaller constant.  At or above the bound the
#: cast rounds neighbouring ints together (float64(2**53 + 1) ==
#: float64(2**53)) and equality must fall back to the exact object view.
_EXACT_FLOAT_BOUND = 2.0**53


@dataclass
class MaskCacheStats:
    """Per-evaluation cache traffic (also mirrored as obs counters).

    One stats type serves both the single-predicate lowering
    (``ir.batch.mask.*`` counters) and the segment-set evaluator
    (``segments.mask.*``): ``computed`` counts distinct node
    evaluations, ``shared`` counts evaluations answered from the cache,
    ``constants_skipped`` counts TRUE/FALSE segment envelopes answered
    without touching the cache at all.  ``plan_hits``/``plan_misses``
    track the plan-once operand-ordering memo.
    """

    computed: int = 0
    shared: int = 0
    constants_skipped: int = 0
    plan_hits: int = 0
    plan_misses: int = 0

    @property
    def share_ratio(self) -> float:
        """Fraction of node evaluations answered from the cache."""
        total = self.computed + self.shared
        return self.shared / total if total else 0.0


def _equality_column(
    batch: "ColumnBatch", column: str, value: Value
) -> np.ndarray:
    """The column view whose ``==`` matches scalar equality exactly.

    The object view is always exact (Python's ``==`` between ints and
    floats compares true values, and ``None == v`` is ``False`` just as
    in scalar ``evaluate``); the float64 view is used only when it is
    provably equivalent and therefore free to share with the ordered
    kernels' cache.
    """
    if (
        not isinstance(value, str)
        and abs(value) < _EXACT_FLOAT_BOUND
        and batch.is_numeric(column)
    ):
        return batch.numeric(column)
    return batch.column(column)


def _ordered_column(
    batch: "ColumnBatch", column: str, value: Value
) -> np.ndarray:
    """The column view to use for an ordered comparison against ``value``.

    Mirrors the scalar comparability rule: strings order only against
    string columns, numbers only against numeric columns; anything else is
    schema drift and raises :class:`~repro.exceptions.PredicateError`.
    """
    kind = batch.kind(column)
    if isinstance(value, str):
        if kind != "string":
            raise PredicateError(
                f"cannot order column {column!r} values against {value!r}"
            )
        return batch.column(column)
    if kind != "numeric":
        raise PredicateError(
            f"cannot order column {column!r} values against {value!r}"
        )
    return batch.numeric(column)


# ---------------------------------------------------------------------------
# Atom kernels (shared by the caching context and the naive reference path)
# ---------------------------------------------------------------------------


def _exact_bound_view(
    batch: "ColumnBatch", column: str, actual: np.ndarray, bound: Value
) -> np.ndarray:
    """The view to order against ``bound`` without float64 rounding.

    Ordering through the float64 view is exact whenever ``|bound| <
    2**53``: a cell inside the exact range casts losslessly, and a cell
    outside it rounds while staying on its side of the (strictly
    smaller) bound.  At or past the bound, rounding can cross it —
    ``float64(-(2**53 + 1)) == -2.0**53`` turns a true ``< -(2**53)``
    into False — so those comparisons fall back to the object view,
    where NumPy applies Python's exact int/float ordering elementwise.
    The kind check in :func:`_ordered_column` already ran, so every
    cell here is a real number and the exact compare cannot raise.
    """
    if not isinstance(bound, str) and abs(bound) >= _EXACT_FLOAT_BOUND:
        return batch.column(column)
    return actual


def _comparison_mask(pred: Comparison, batch: "ColumnBatch") -> np.ndarray:
    if len(batch) == 0:
        return np.zeros(0, dtype=bool)
    if pred.op is Op.EQ or pred.op is Op.NE:
        actual = _equality_column(batch, pred.column, pred.value)
        mask = actual == pred.value
        return mask if pred.op is Op.EQ else ~mask
    actual = _ordered_column(batch, pred.column, pred.value)
    actual = _exact_bound_view(batch, pred.column, actual, pred.value)
    if pred.op is Op.LT:
        return actual < pred.value
    if pred.op is Op.LE:
        return actual <= pred.value
    if pred.op is Op.GT:
        return actual > pred.value
    return actual >= pred.value


def _in_set_mask(pred: InSet, batch: "ColumnBatch") -> np.ndarray:
    """Membership mask in one vectorized pass instead of k comparisons.

    Numeric fast path: when every IN value is a float64-exact number and
    the column is numeric, one ``np.isin`` over the float view decides
    membership (a value outside the exact range, or a string, can still
    match only via the object view).  Otherwise a single hashed-set pass
    over the object view replaces the old per-value ``==`` scans —
    ``x in set`` agrees with the scalar tuple containment for every
    value the algebra admits (hash/eq-consistent ints, floats, strings,
    bools and None cells).
    """
    n = len(batch)
    if n == 0:
        return np.zeros(0, dtype=bool)
    values = pred.values
    if batch.is_numeric(pred.column) and all(
        not isinstance(value, str) and abs(value) < _EXACT_FLOAT_BOUND
        for value in values
    ):
        targets = np.fromiter(
            (float(value) for value in values),
            dtype=np.float64,
            count=len(values),
        )
        return np.isin(batch.numeric(pred.column), targets)
    lookup = frozenset(values)
    return np.fromiter(
        (cell in lookup for cell in batch.column(pred.column)),
        dtype=bool,
        count=n,
    )


def _interval_mask(pred: Interval, batch: "ColumnBatch") -> np.ndarray:
    n = len(batch)
    if n == 0:
        return np.zeros(0, dtype=bool)
    low, high = pred.low, pred.high
    if (
        low is not None
        and high is not None
        and isinstance(low, str) == isinstance(high, str)
    ):
        # Same-kind bounds resolve the ordered view once; the raise
        # behaviour of the second fetch would be identical.
        actual = _ordered_column(batch, pred.column, low)
        lo_view = _exact_bound_view(batch, pred.column, actual, low)
        hi_view = _exact_bound_view(batch, pred.column, actual, high)
        mask = (lo_view >= low) if pred.low_closed else (lo_view > low)
        if pred.high_closed:
            mask &= hi_view <= high
        else:
            mask &= hi_view < high
        return mask
    mask = np.ones(n, dtype=bool)
    if low is not None:
        actual = _ordered_column(batch, pred.column, low)
        actual = _exact_bound_view(batch, pred.column, actual, low)
        if pred.low_closed:
            mask &= actual >= low
        else:
            mask &= actual > low
    if high is not None:
        actual = _ordered_column(batch, pred.column, high)
        actual = _exact_bound_view(batch, pred.column, actual, high)
        if pred.high_closed:
            mask &= actual <= high
        else:
            mask &= actual < high
    return mask


# ---------------------------------------------------------------------------
# Plan-once operand ordering
# ---------------------------------------------------------------------------

#: ``(id(connective), stats token) -> (connective, estimator anchor,
#: ordered operands)``.  The strong reference to the connective keeps its
#: ``id`` from being reused while the entry lives; estimators without a
#: ``stats_version`` are keyed (and anchored) by identity for the same
#: reason.  Estimators *with* a ``stats_version`` share plans across
#: instances: the version names the statistics snapshot, which is the
#: only input the ordering depends on.
_PLAN_MEMO: dict[
    tuple[int, object],
    tuple[Predicate, object, tuple[Predicate, ...]],
] = {}

#: Leak backstop, mirroring the intern table: planning is cheap enough
#: that wholesale clearing beats bookkeeping an LRU.
_PLAN_MEMO_LIMIT = 4096


def reset_plan_memo() -> None:
    """Drop all memoized operand orderings (tests and leak backstop)."""
    _PLAN_MEMO.clear()


def _planned_operands(
    pred: And | Or,
    estimator: SelectivityEstimator | None,
    reverse: bool,
    stats: MaskCacheStats,
) -> tuple[Predicate, ...]:
    """Estimator-ordered operands, computed once per (node, stats version)."""
    if estimator is None:
        return pred.operands
    token = getattr(estimator, "stats_version", None)
    anchor: object = None
    if token is None:
        token = id(estimator)
        anchor = estimator
    key = (id(pred), token)
    entry = _PLAN_MEMO.get(key)
    if entry is not None and entry[0] is pred:
        stats.plan_hits += 1
        return entry[2]
    ordered = tuple(sorted(pred.operands, key=estimator, reverse=reverse))
    if len(_PLAN_MEMO) >= _PLAN_MEMO_LIMIT:
        _PLAN_MEMO.clear()
    _PLAN_MEMO[key] = (pred, anchor, ordered)
    stats.plan_misses += 1
    return ordered


def _has_override(operand: Predicate) -> bool:
    """Whether ``operand`` carries a custom ``evaluate_batch``.

    Subclasses outside the closed IR algebra (model/residual predicates,
    instrumentation wrappers in the tests) may override
    ``evaluate_batch``; the lowering must honor those overrides, and it
    treats them as expensive non-cacheable operands — evaluated on
    compacted still-undecided rows instead of at full width.
    """
    return type(operand).evaluate_batch is not Predicate.evaluate_batch


# ---------------------------------------------------------------------------
# The caching evaluation context
# ---------------------------------------------------------------------------


class BatchLowering(PredicateVisitor):
    """Per-batch evaluation context with an interned-node mask cache.

    One context serves one ``ColumnBatch``: :meth:`mask` memoizes the
    full-width truth vector of every node it lowers by ``id(node)``, so
    a subtree shared (via interning) across disjuncts — or across the
    many predicates of a segment catalog — is evaluated once.  ``id``
    keys are stable because the cache holds no node alive longer than
    the caller does and a fresh batch gets a fresh context.

    Cached arrays are shared: callers combine them with allocating NumPy
    ops (or copy first) and never mutate them in place.
    """

    __slots__ = ("batch", "estimator", "stats", "_cache")

    def __init__(
        self,
        batch: "ColumnBatch",
        estimator: SelectivityEstimator | None = None,
        stats: MaskCacheStats | None = None,
    ) -> None:
        self.batch = batch
        self.estimator = estimator
        self.stats = stats if stats is not None else MaskCacheStats()
        self._cache: dict[int, np.ndarray] = {}

    # -- cache entry point -------------------------------------------------

    def mask(self, pred: Predicate) -> np.ndarray:
        """Full-batch truth mask of one node, memoized by identity."""
        key = id(pred)
        cached = self._cache.get(key)
        if cached is not None:
            self.stats.shared += 1
            return cached
        result = self.visit(pred)
        self.stats.computed += 1
        self._cache[key] = result
        return result

    # -- atoms and constants ----------------------------------------------

    def visit_true(self, pred: TruePredicate) -> np.ndarray:
        return np.ones(len(self.batch), dtype=bool)

    def visit_false(self, pred: FalsePredicate) -> np.ndarray:
        return np.zeros(len(self.batch), dtype=bool)

    def visit_comparison(self, pred: Comparison) -> np.ndarray:
        return _comparison_mask(pred, self.batch)

    def visit_in_set(self, pred: InSet) -> np.ndarray:
        return _in_set_mask(pred, self.batch)

    def visit_interval(self, pred: Interval) -> np.ndarray:
        return _interval_mask(pred, self.batch)

    # -- connectives -------------------------------------------------------

    def _restrict_and(
        self, operand: Predicate, result: np.ndarray | None
    ) -> np.ndarray:
        """Evaluate ``operand`` on still-alive rows only (compaction).

        ``result`` is the private running conjunction; rows already
        False cannot be resurrected, so the operand — an override, or a
        cacheable node whose full-width evaluation raised — runs on the
        compacted alive rows, exactly the rows a scalar short-circuit
        loop would evaluate it on.
        """
        if result is None:
            return np.array(
                operand.evaluate_batch(self.batch, self.estimator),
                dtype=bool,
            )
        alive = np.flatnonzero(result)
        if alive.size:
            sub = operand.evaluate_batch(
                self.batch.take(alive), self.estimator
            )
            result[alive[~np.asarray(sub, dtype=bool)]] = False
        return result

    def _restrict_or(
        self, operand: Predicate, result: np.ndarray | None
    ) -> np.ndarray:
        """Evaluate ``operand`` on still-pending rows only (compaction)."""
        if result is None:
            return np.array(
                operand.evaluate_batch(self.batch, self.estimator),
                dtype=bool,
            )
        pending = np.flatnonzero(~result)
        if pending.size:
            sub = operand.evaluate_batch(
                self.batch.take(pending), self.estimator
            )
            result[pending[np.asarray(sub, dtype=bool)]] = True
        return result

    def visit_and(self, pred: And) -> np.ndarray:
        result: np.ndarray | None = None
        for operand in _planned_operands(
            pred, self.estimator, False, self.stats
        ):
            if _has_override(operand):
                result = self._restrict_and(operand, result)
                continue
            try:
                mask = self.mask(operand)
            except PredicateError:
                if result is None:
                    # The first operand sees every row in the scalar
                    # loop too: the raise is genuine.
                    raise
                result = self._restrict_and(operand, result)
                continue
            if result is None:
                result = np.array(mask)
            else:
                result &= mask
        if result is None:
            return np.ones(len(self.batch), dtype=bool)
        return result

    def visit_or(self, pred: Or) -> np.ndarray:
        result: np.ndarray | None = None
        for operand in _planned_operands(
            pred, self.estimator, True, self.stats
        ):
            if _has_override(operand):
                result = self._restrict_or(operand, result)
                continue
            try:
                mask = self.mask(operand)
            except PredicateError:
                if result is None:
                    raise
                result = self._restrict_or(operand, result)
                continue
            if result is None:
                result = np.array(mask)
            else:
                result |= mask
        if result is None:
            return np.zeros(len(self.batch), dtype=bool)
        return result

    def visit_not(self, pred: Not) -> np.ndarray:
        operand = pred.operand
        if _has_override(operand):
            return ~np.asarray(
                operand.evaluate_batch(self.batch, self.estimator),
                dtype=bool,
            )
        return ~self.mask(operand)


# ---------------------------------------------------------------------------
# Naive reference lowering (the pre-cache clause-by-clause strategy)
# ---------------------------------------------------------------------------


class NaiveBatchLowering(PredicateVisitor):
    """The previous short-circuit compaction strategy, kept as an oracle.

    Stateless — per-call context (batch, estimator) passes through the
    visitor's ``*args``.  Every connective re-sorts its operands per
    visit and re-evaluates every atom in every disjunct it appears in;
    the disjunction bench verifies the caching context byte-identical
    against this path and measures its speedup.
    """

    __slots__ = ()

    def _operand(
        self,
        operand: Predicate,
        batch: "ColumnBatch",
        estimator: SelectivityEstimator | None,
    ) -> np.ndarray:
        if _has_override(operand):
            return operand.evaluate_batch(batch, estimator)
        return self.visit(operand, batch, estimator)

    def visit_true(
        self,
        pred: TruePredicate,
        batch: "ColumnBatch",
        estimator: SelectivityEstimator | None,
    ) -> np.ndarray:
        return np.ones(len(batch), dtype=bool)

    def visit_false(
        self,
        pred: FalsePredicate,
        batch: "ColumnBatch",
        estimator: SelectivityEstimator | None,
    ) -> np.ndarray:
        return np.zeros(len(batch), dtype=bool)

    def visit_comparison(
        self,
        pred: Comparison,
        batch: "ColumnBatch",
        estimator: SelectivityEstimator | None,
    ) -> np.ndarray:
        return _comparison_mask(pred, batch)

    def visit_in_set(
        self,
        pred: InSet,
        batch: "ColumnBatch",
        estimator: SelectivityEstimator | None,
    ) -> np.ndarray:
        return _in_set_mask(pred, batch)

    def visit_interval(
        self,
        pred: Interval,
        batch: "ColumnBatch",
        estimator: SelectivityEstimator | None,
    ) -> np.ndarray:
        return _interval_mask(pred, batch)

    def visit_and(
        self,
        pred: And,
        batch: "ColumnBatch",
        estimator: SelectivityEstimator | None,
    ) -> np.ndarray:
        n = len(batch)
        if n == 0:
            return np.zeros(0, dtype=bool)
        operands: Iterable[Predicate] = pred.operands
        if estimator is not None:
            # Most-selective conjunct first: it eliminates the most rows,
            # so later (possibly expensive) conjuncts see the smallest
            # surviving batch.
            operands = sorted(pred.operands, key=estimator)
        alive: np.ndarray | None = None
        current = batch
        for operand in operands:
            mask = self._operand(operand, current, estimator)
            if mask.all():
                continue
            keep = np.flatnonzero(mask)
            alive = keep if alive is None else alive[keep]
            if keep.size == 0:
                break
            current = current.take(keep)
        if alive is None:
            return np.ones(n, dtype=bool)
        out = np.zeros(n, dtype=bool)
        out[alive] = True
        return out

    def visit_or(
        self,
        pred: Or,
        batch: "ColumnBatch",
        estimator: SelectivityEstimator | None,
    ) -> np.ndarray:
        n = len(batch)
        if n == 0:
            return np.zeros(0, dtype=bool)
        operands: Iterable[Predicate] = pred.operands
        if estimator is not None:
            # Most-admitting disjunct first: it settles the most rows to
            # TRUE, so later disjuncts run on the fewest undecided rows.
            operands = sorted(pred.operands, key=estimator, reverse=True)
        out = np.zeros(n, dtype=bool)
        pending: np.ndarray | None = None
        current = batch
        for operand in operands:
            mask = self._operand(operand, current, estimator)
            if pending is None:
                out |= mask
                pending = np.flatnonzero(~mask)
            else:
                out[pending[mask]] = True
                pending = pending[~mask]
            if pending.size == 0:
                break
            current = batch.take(pending)
        return out

    def visit_not(
        self,
        pred: Not,
        batch: "ColumnBatch",
        estimator: SelectivityEstimator | None,
    ) -> np.ndarray:
        return ~self._operand(pred.operand, batch, estimator)


#: Shared stateless reference instance behind :func:`evaluate_batch_naive`.
_NAIVE = NaiveBatchLowering()


def evaluate_batch(
    pred: Predicate,
    batch: "ColumnBatch",
    estimator: SelectivityEstimator | None = None,
) -> np.ndarray:
    """Boolean mask of ``pred`` over ``batch`` (the IR batch lowering).

    Builds a fresh :class:`BatchLowering` context per call, so mask
    sharing spans one predicate tree; callers that evaluate many
    predicates against the same batch (the segment evaluator) hold one
    context across all of them instead.
    """
    context = BatchLowering(batch, estimator)
    result = context.mask(pred)
    if obs.enabled():
        stats = context.stats
        if stats.computed:
            obs.add_counter("ir.batch.mask.computed", stats.computed)
        if stats.shared:
            obs.add_counter("ir.batch.mask.shared", stats.shared)
        if stats.plan_hits:
            obs.add_counter("ir.batch.plan.hit", stats.plan_hits)
        if stats.plan_misses:
            obs.add_counter("ir.batch.plan.miss", stats.plan_misses)
    return result


def evaluate_batch_naive(
    pred: Predicate,
    batch: "ColumnBatch",
    estimator: SelectivityEstimator | None = None,
) -> np.ndarray:
    """Reference clause-by-clause evaluation (no mask cache, no plan memo)."""
    return _NAIVE.visit(pred, batch, estimator)
