"""Hash-consing and structural fingerprints for predicate IR nodes.

:func:`intern` maps any predicate tree to a *canonical instance*: two
structurally equal trees (after the constructors' canonical operand
ordering) intern to the very same object, so equality between interned
nodes is a pointer comparison (``a is b``) and shared substructure is
stored once.  Envelope derivation interns every published predicate;
the simplification pipeline interns its output; downstream layers may
therefore rely on interned inputs being cheap to compare, hash, and
deduplicate.

:func:`fingerprint` is the stable structural digest built on top: a
SHA-256 over a tagged, length-prefixed serialization of the tree.  It is
deterministic across processes and runs (unlike ``hash()``, which is
salted for strings), which is what lets the plan cache — and eventually
cross-query envelope sharing — key on predicate *structure* instead of
``repr`` text.  Fingerprints are memoized per canonical instance, so
repeated cache lookups pay the O(size) serialization once.

The intern table is bounded (:data:`MAX_INTERN_ENTRIES`): when full it is
cleared wholesale (with the memoized fingerprints, whose id-keyed memo is
only valid while the table holds its nodes strongly) and a ``resets``
statistic is incremented.  Predicate workloads here derive from model
content, so the table stays far below the bound in practice; the bound is
a leak backstop, not an LRU.

Hit/miss traffic is exposed through :func:`intern_stats` and, when
tracing is enabled, the ``ir.intern.hit`` / ``ir.intern.miss`` counters
(``trace-report`` derives the hit ratio automatically).
"""

from __future__ import annotations

import hashlib
import threading

from repro import obs
from repro.core.predicates import (
    FALSE,
    TRUE,
    And,
    Comparison,
    FalsePredicate,
    InSet,
    Interval,
    Not,
    Or,
    Predicate,
    TruePredicate,
    Value,
)
from repro.exceptions import PredicateError

#: Ceiling on intern-table entries; the table is cleared wholesale when
#: a miss would push it past this (a leak backstop, not an LRU).
MAX_INTERN_ENTRIES = 65536

_TABLE: dict[Predicate, Predicate] = {}
_FINGERPRINTS: dict[int, str] = {}
_STATS = {"hits": 0, "misses": 0, "resets": 0}

#: Guards the intern table, fingerprint memo, and statistics.  The serving
#: layer interns predicates from many worker threads at once; a reentrant
#: lock is required because :func:`intern` recurses through
#: :func:`_intern_children`.
_LOCK = threading.RLock()

#: Node types the interner understands.  Subclassed predicates outside
#: the closed IR algebra (tests wrap nodes for instrumentation) pass
#: through :func:`intern` untouched rather than polluting the table.
_IR_TYPES = (
    TruePredicate,
    FalsePredicate,
    Comparison,
    InSet,
    Interval,
    And,
    Or,
    Not,
)
_IR_TYPE_SET = frozenset(_IR_TYPES)


def intern(pred: Predicate) -> Predicate:
    """The canonical instance structurally equal to ``pred``.

    Children are interned recursively, so equal subtrees of different
    envelopes collapse to shared objects.  Interned nodes satisfy
    ``intern(a) is intern(b)`` iff ``a == b`` — O(1) structural equality.
    Non-IR predicate subclasses are returned unchanged.
    """
    if type(pred) not in _IR_TYPE_SET:
        return pred
    if isinstance(pred, TruePredicate):
        return TRUE
    if isinstance(pred, FalsePredicate):
        return FALSE
    with _LOCK:
        cached = _TABLE.get(pred)
        if cached is not None:
            _STATS["hits"] += 1
            obs.add_counter("ir.intern.hit")
            return cached
        _STATS["misses"] += 1
        obs.add_counter("ir.intern.miss")
        canonical = _intern_children(pred)
        if len(_TABLE) >= MAX_INTERN_ENTRIES:
            clear_intern_table()
            _STATS["resets"] += 1
            obs.add_counter("ir.intern.reset")
        _TABLE[canonical] = canonical
        return canonical


def _intern_children(pred: Predicate) -> Predicate:
    """Rebuild ``pred`` over interned children (identity when unchanged)."""
    if isinstance(pred, (And, Or)):
        kids = tuple(intern(o) for o in pred.operands)
        if all(a is b for a, b in zip(kids, pred.operands)):
            return pred
        return type(pred)(kids)
    if isinstance(pred, Not):
        kid = intern(pred.operand)
        return pred if kid is pred.operand else Not(kid)
    return pred


def fingerprint(pred: Predicate) -> str:
    """Stable structural digest of ``pred`` (64 hex chars).

    Interns ``pred`` first so the digest is memoized on the canonical
    instance; equal predicates — including commutative-equivalent
    connectives, which canonical operand ordering makes equal — share one
    fingerprint, and the digest is identical across processes.
    """
    canonical = intern(pred)
    with _LOCK:
        memo = _FINGERPRINTS.get(id(canonical))
    if memo is not None:
        return memo
    out: list[str] = []
    _serialize(canonical, out)
    digest = hashlib.sha256("".join(out).encode("utf-8")).hexdigest()
    with _LOCK:
        if canonical in _TABLE:
            # Memoize by object id — safe only while the intern table keeps
            # the node alive (the memo is cleared together with the table).
            _FINGERPRINTS[id(canonical)] = digest
    return digest


def _value_token(value: Value) -> str:
    """Serialize one comparison constant, respecting numeric equality.

    ``5 == 5.0`` in Python (and in the dataclass equality of the nodes),
    so integral floats serialize like ints — equal nodes must never
    produce different digests.
    """
    if isinstance(value, str):
        return f"s{len(value)}:{value}"
    if isinstance(value, float) and not value.is_integer():
        return f"f{value!r}"
    return f"i{int(value)}"


def _serialize(pred: Predicate, out: list[str]) -> None:
    """Append a tagged, length-prefixed encoding of ``pred`` to ``out``."""
    if isinstance(pred, TruePredicate):
        out.append("T")
    elif isinstance(pred, FalsePredicate):
        out.append("F")
    elif isinstance(pred, Comparison):
        out.append(
            f"C{pred.op.value};{len(pred.column)}:{pred.column};"
            f"{_value_token(pred.value)}"
        )
    elif isinstance(pred, InSet):
        out.append(f"S{len(pred.column)}:{pred.column};{len(pred.values)}[")
        for value in pred.values:
            out.append(_value_token(value))
            out.append(",")
        out.append("]")
    elif isinstance(pred, Interval):
        low = "_" if pred.low is None else _value_token(pred.low)
        high = "_" if pred.high is None else _value_token(pred.high)
        closed = ("[" if pred.low_closed else "(") + (
            "]" if pred.high_closed else ")"
        )
        out.append(
            f"I{len(pred.column)}:{pred.column};{low};{high};{closed}"
        )
    elif isinstance(pred, (And, Or)):
        out.append(("A" if isinstance(pred, And) else "O"))
        out.append(f"{len(pred.operands)}(")
        for operand in pred.operands:
            _serialize(operand, out)
            out.append(",")
        out.append(")")
    elif isinstance(pred, Not):
        out.append("N(")
        _serialize(pred.operand, out)
        out.append(")")
    else:
        raise PredicateError(
            f"cannot fingerprint non-IR node {type(pred).__name__}"
        )


def intern_stats() -> dict[str, int]:
    """Lifetime hit/miss/reset counts and the current table size."""
    with _LOCK:
        return {**_STATS, "size": len(_TABLE)}


def clear_intern_table() -> None:
    """Drop every interned node and memoized fingerprint (tests, resets)."""
    with _LOCK:
        _TABLE.clear()
        _FINGERPRINTS.clear()
