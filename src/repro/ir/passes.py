"""The staged simplification pipeline over the predicate IR.

Historically ``normalize.simplify`` was one opaque call; this module
splits it into named passes — the same machinery, now individually
composable, traceable, and measurable:

``nnf``
    negation normal form (:func:`repro.core.normalize.to_nnf`),
``dnf``
    budgeted disjunctive normal form
    (:func:`repro.core.normalize.dnf_of_nnf`); a budget overflow raises
    :class:`PassAbort`, which makes the pipeline keep its *input*
    predicate — simplification is an optimization, never a requirement,
``solve``
    per-conjunct column-constraint solving
    (:func:`repro.core.normalize.solve_dnf`),
``absorb``
    subsumption between disjuncts (:func:`repro.core.normalize.absorb`),
``factor``
    common-atom hoisting (:func:`repro.core.normalize.factor`).

Each pass runs inside an ``ir.pass.<pipeline>.<name>`` span with
``atoms_before``/``atoms_after``/``changed`` attributes and accumulates
``ir.pass.<name>.runs`` / ``.rewrites`` / ``.atoms_before`` /
``.atoms_after`` counters, so ``trace-report`` shows where envelope
simplification spends its time and which passes actually rewrite.
Pipeline output is always interned (:func:`repro.ir.interning.intern`).
"""

from __future__ import annotations

import time
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass
from typing import Any

from repro import obs
from repro.core import normalize
from repro.core.normalize import DEFAULT_DNF_BUDGET
from repro.core.predicates import Predicate, atom_count
from repro.exceptions import NormalizationError
from repro.ir.interning import intern

#: A pass body: ``(predicate, context) -> predicate``.  ``context`` is the
#: read-only keyword mapping given to :meth:`PassPipeline.run` (e.g. the
#: DNF budget); passes must be pure in the predicate.
PassFn = Callable[[Predicate, Mapping[str, Any]], Predicate]


class PassAbort(Exception):
    """A pass declining to run (e.g. DNF budget overflow).

    Aborting is not an error: the pipeline stops and returns the
    predicate it was *given*, interned but otherwise untouched, exactly
    the historic ``simplify`` contract on budget overflow.
    """


@dataclass(frozen=True)
class Pass:
    """One named, traceable rewrite stage."""

    name: str
    fn: PassFn

    def __call__(
        self, pred: Predicate, context: Mapping[str, Any]
    ) -> Predicate:
        return self.fn(pred, context)


@dataclass(frozen=True)
class PassResult:
    """Per-pass outcome of one :meth:`PassPipeline.run_detailed` call."""

    name: str
    atoms_before: int
    atoms_after: int
    seconds: float
    changed: bool
    aborted: bool = False


class PassPipeline:
    """An ordered sequence of passes run under observability.

    The pipeline is immutable once built; :func:`default_pipeline`
    returns the standard simplification pipeline, and callers composing
    custom pipelines (e.g. a lowering prefixed by ``nnf`` only) construct
    their own.
    """

    def __init__(self, name: str, passes: Sequence[Pass]) -> None:
        self.name = name
        self.passes = tuple(passes)

    def __repr__(self) -> str:
        names = ", ".join(p.name for p in self.passes)
        return f"PassPipeline({self.name!r}: {names})"

    def run(self, pred: Predicate, **context: Any) -> Predicate:
        """Run every pass in order; the result is interned.

        A :class:`PassAbort` from any pass returns the interned *input*
        predicate (rewrites from earlier passes are discarded too: a
        half-simplified predicate is no better than the original, and
        returning the input keeps the contract trivial to reason about).
        """
        result, _ = self._execute(pred, context, detailed=False)
        return result

    def run_detailed(
        self, pred: Predicate, **context: Any
    ) -> tuple[Predicate, list[PassResult]]:
        """Like :meth:`run`, also returning per-pass rewrite statistics."""
        return self._execute(pred, context, detailed=True)

    def _execute(
        self,
        pred: Predicate,
        context: Mapping[str, Any],
        detailed: bool,
    ) -> tuple[Predicate, list[PassResult]]:
        original = pred
        results: list[PassResult] = []
        traced = obs.enabled()
        for stage in self.passes:
            measured = traced or detailed
            before = atom_count(pred) if measured else 0
            started = time.perf_counter() if detailed else 0.0
            with obs.span(
                f"ir.pass.{self.name}.{stage.name}", atoms_before=before
            ) as sp:
                try:
                    out = stage(pred, context)
                except PassAbort:
                    sp.update(aborted=True)
                    obs.add_counter(f"ir.pass.{stage.name}.aborted")
                    if detailed:
                        results.append(
                            PassResult(
                                name=stage.name,
                                atoms_before=before,
                                atoms_after=before,
                                seconds=time.perf_counter() - started,
                                changed=False,
                                aborted=True,
                            )
                        )
                    return intern(original), results
                if measured:
                    after = atom_count(out)
                    changed = out != pred
                    sp.update(atoms_after=after, changed=changed)
                    obs.add_counter(f"ir.pass.{stage.name}.runs")
                    if changed:
                        obs.add_counter(f"ir.pass.{stage.name}.rewrites")
                    obs.add_counter(
                        f"ir.pass.{stage.name}.atoms_before", before
                    )
                    obs.add_counter(
                        f"ir.pass.{stage.name}.atoms_after", after
                    )
                    if detailed:
                        results.append(
                            PassResult(
                                name=stage.name,
                                atoms_before=before,
                                atoms_after=after,
                                seconds=time.perf_counter() - started,
                                changed=changed,
                            )
                        )
            pred = out
        return intern(pred), results


def _nnf_pass(pred: Predicate, context: Mapping[str, Any]) -> Predicate:
    return normalize.to_nnf(pred)


def _dnf_pass(pred: Predicate, context: Mapping[str, Any]) -> Predicate:
    max_terms = context.get("max_terms", DEFAULT_DNF_BUDGET)
    try:
        return normalize.dnf_of_nnf(pred, max_terms)
    except NormalizationError as exc:
        raise PassAbort(str(exc)) from exc


def _solve_pass(pred: Predicate, context: Mapping[str, Any]) -> Predicate:
    return normalize.solve_dnf(pred)


def _absorb_pass(pred: Predicate, context: Mapping[str, Any]) -> Predicate:
    return normalize.absorb(pred)


def _factor_pass(pred: Predicate, context: Mapping[str, Any]) -> Predicate:
    return normalize.factor(pred)


_DEFAULT = PassPipeline(
    "simplify",
    (
        Pass("nnf", _nnf_pass),
        Pass("dnf", _dnf_pass),
        Pass("solve", _solve_pass),
        Pass("absorb", _absorb_pass),
        Pass("factor", _factor_pass),
    ),
)


def default_pipeline() -> PassPipeline:
    """The standard simplification pipeline (shared, immutable)."""
    return _DEFAULT


def simplify_pipeline(
    pred: Predicate, max_terms: int = DEFAULT_DNF_BUDGET
) -> Predicate:
    """Run the standard pipeline — the engine behind ``simplify``."""
    return _DEFAULT.run(pred, max_terms=max_terms)
