"""Generic traversal over predicate IR trees.

Before this module existed, every consumer of the predicate algebra —
normalization, SQL compilation, batch evaluation, envelope derivation —
re-implemented its own ``isinstance`` ladder.  :class:`PredicateVisitor`
centralizes that dispatch: subclasses implement ``visit_<node>`` methods
and call :meth:`PredicateVisitor.visit`, which routes on the concrete
node type.  Extra positional arguments pass through untouched, so
lowerings can thread per-call context (a column batch, a selectivity
estimator) without instance state.

:class:`PredicateTransformer` adds the standard bottom-up rewrite
skeleton: the default methods rebuild connectives through the smart
constructors (:func:`~repro.core.predicates.conjunction` etc.), so a
transformer that only overrides, say, ``visit_comparison`` gets
flattening and constant folding of the rewritten tree for free.
"""

from __future__ import annotations

from typing import Any

from repro.core.predicates import (
    And,
    Comparison,
    FalsePredicate,
    InSet,
    Interval,
    Not,
    Or,
    Predicate,
    TruePredicate,
    conjunction,
    disjunction,
)
from repro.exceptions import PredicateError

#: Concrete node type -> visitor method name.  Keyed by exact type, not
#: ``isinstance``: IR nodes form a closed algebra, and exact-type dispatch
#: is what makes the visit loop cheap.
_DISPATCH: dict[type, str] = {
    TruePredicate: "visit_true",
    FalsePredicate: "visit_false",
    Comparison: "visit_comparison",
    InSet: "visit_in_set",
    Interval: "visit_interval",
    And: "visit_and",
    Or: "visit_or",
    Not: "visit_not",
}


class PredicateVisitor:
    """Dispatch a predicate tree to per-node-type ``visit_*`` methods.

    Unhandled node types fall through to :meth:`generic_visit`, which
    raises; a visitor therefore fails loudly on nodes it does not know
    rather than silently mis-lowering them.
    """

    __slots__ = ()

    def visit(self, pred: Predicate, *args: Any) -> Any:
        """Route ``pred`` to its ``visit_<node>`` method."""
        name = _DISPATCH.get(type(pred))
        if name is None:
            return self.generic_visit(pred, *args)
        return getattr(self, name)(pred, *args)

    def generic_visit(self, pred: Predicate, *args: Any) -> Any:
        raise PredicateError(
            f"{type(self).__name__} has no rule for "
            f"{type(pred).__name__} nodes"
        )


class PredicateTransformer(PredicateVisitor):
    """Bottom-up predicate-to-predicate rewriter.

    The default implementation is the identity transform: atoms and
    constants return themselves, connectives rebuild from transformed
    children via the smart constructors (which flatten and constant-fold),
    and an unchanged child set returns the original node — transformers
    preserve object identity wherever they do not rewrite, which keeps
    interned trees interned.
    """

    __slots__ = ()

    def visit_true(self, pred: TruePredicate, *args: Any) -> Predicate:
        return pred

    def visit_false(self, pred: FalsePredicate, *args: Any) -> Predicate:
        return pred

    def visit_comparison(self, pred: Comparison, *args: Any) -> Predicate:
        return pred

    def visit_in_set(self, pred: InSet, *args: Any) -> Predicate:
        return pred

    def visit_interval(self, pred: Interval, *args: Any) -> Predicate:
        return pred

    def visit_and(self, pred: And, *args: Any) -> Predicate:
        rewritten = [self.visit(o, *args) for o in pred.operands]
        if all(a is b for a, b in zip(rewritten, pred.operands)):
            return pred
        return conjunction(rewritten)

    def visit_or(self, pred: Or, *args: Any) -> Predicate:
        rewritten = [self.visit(o, *args) for o in pred.operands]
        if all(a is b for a, b in zip(rewritten, pred.operands)):
            return pred
        return disjunction(rewritten)

    def visit_not(self, pred: Not, *args: Any) -> Predicate:
        inner = self.visit(pred.operand, *args)
        if inner is pred.operand:
            return pred
        return Not(inner)
