"""Open-loop SLO load harness (``repro.load``).

A closed-loop benchmark (issue, wait, issue again) silently slows its
own offered load down whenever the server slows — the *coordinated
omission* artifact — so it cannot answer the question serving actually
has to answer: what happens when traffic keeps arriving at a rate the
service does not control?  This package is the open-loop counterpart to
:mod:`repro.serve.bench`:

* :mod:`repro.load.arrivals` — seeded, deterministic arrival processes
  (constant / poisson / burst / ramp) materialized as absolute issue
  offsets, so the *same seed reproduces the exact same schedule*;
* :mod:`repro.load.runner` — fires requests at their scheduled times
  against any :class:`~repro.serve.transport.Transport`, regardless of
  completions, and measures each request from its **scheduled** time
  (not its issue time), so queueing delay the schedule caused is
  charged to the service, not hidden;
* :mod:`repro.load.slo` — per-run SLO accounting: latency and jitter
  percentiles, goodput vs offered load, deadline-miss and shed rates —
  published as ``load.*`` metrics for the trace report's "Load / SLO"
  section;
* :mod:`repro.load.bench` — the ``load-bench`` CLI artifact
  (``BENCH_load.json``): determinism gates, the static-vs-adaptive
  admission comparison under overload, and the micro-batch window
  frontier.
"""

from repro.load.arrivals import (
    ARRIVAL_KINDS,
    ArrivalSchedule,
    build_arrivals,
    burst_arrivals,
    constant_arrivals,
    poisson_arrivals,
    ramp_arrivals,
)
from repro.load.runner import LoadResult, RequestRecord, run_load
from repro.load.slo import SLOReport, summarize_load

__all__ = [
    "ARRIVAL_KINDS",
    "ArrivalSchedule",
    "LoadResult",
    "RequestRecord",
    "SLOReport",
    "build_arrivals",
    "burst_arrivals",
    "constant_arrivals",
    "poisson_arrivals",
    "ramp_arrivals",
    "run_load",
    "summarize_load",
]
