"""The ``load-bench`` CLI artifact (``BENCH_load.json``).

Open-loop counterpart to :mod:`repro.serve.bench`, answering the two
questions closed-loop replay cannot:

1. **Is the harness itself deterministic?**  The same seed must produce
   the identical arrival schedule (same offsets, float-for-float) and —
   replayed twice below capacity through the chosen transport —
   byte-identical result rows, gated by digest equality.
2. **What does admission control buy under overload?**  The *same*
   over-capacity schedule is replayed against a static
   :class:`~repro.serve.admission.AdmissionController` (the bounded
   queue alone) and against the
   :class:`~repro.serve.admission.AdaptiveAdmissionController` (AIMD
   concurrency limit plus deadline-aware shedding).  The bench gates on
   the adaptive controller achieving **strictly higher goodput and
   lower p99** on the same schedule, and on it converting queued
   timeouts (the expensive failure: callers burn their whole deadline)
   into admission-time sheds (the cheap one: callers learn instantly).

Rates and deadlines are **auto-calibrated** from a serial probe of the
actual machine — mean service time ``s̄`` gives capacity
``workers / s̄``; the determinism runs offer half of it, the overload
runs three times it, and the per-request deadline is
``max(8 s̄, 0.25 · max_pending · s̄ / workers)`` — far above a normal
round trip, far below the full-queue wait, so a static controller
*must* strand requests in queue past their deadlines under overload.
A third, report-only section sweeps the micro-batch accumulation
window (0 / 0.5 ms / 2 ms) over the same schedule to place the window
on the throughput/latency frontier.
"""

from __future__ import annotations

import time

from repro import obs
from repro.exceptions import ReproError
from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import dataset_for, train_family
from repro.load.arrivals import (
    DEFAULT_BURST_DUTY,
    ArrivalSchedule,
    build_arrivals,
)
from repro.load.runner import LoadResult, run_load
from repro.load.slo import SLOReport, summarize_load
from repro.serve.bench import build_queries, build_schedule, rows_digest
from repro.serve.engine import DeployRequest, QueryRequest, ServeEngine
from repro.serve.registry import ModelRegistry
from repro.serve.router import ProcessRouter
from repro.serve.transport import (
    LoopbackTransport,
    TCPServer,
    connect_tcp,
    serve_socketpair,
)
from repro.sql.plancache import PlanCache
from repro.workload.measurement import (
    FAMILY_DECISION_TREE,
    FAMILY_NAIVE_BAYES,
)
from repro.workload.runner import load_dataset

__all__ = ["run_load_bench"]

#: Micro-batch accumulation windows swept by the frontier section (s).
BATCH_WINDOWS = (0.0, 0.0005, 0.002)

#: Offered-load multipliers relative to measured capacity.
DETERMINISM_FRACTION = 0.5
OVERLOAD_FACTOR = 3.0

#: Fraction of requests the adaptive run may still lose to queued
#: timeouts (estimator warm-up transients) and pass the "≈ 0" gate.
ADAPTIVE_TIMEOUT_TOLERANCE = 0.05


def _build_engine(
    db,
    registry,
    config: ExperimentConfig,
    workers: int,
    max_pending: int,
    admission: str = "static",
    collapsing: bool = True,
    batch_window: float = 0.0,
    result_ttl: float | None = None,
) -> ServeEngine:
    return ServeEngine(
        db,
        registry,
        workers=workers,
        max_pending=max_pending,
        plan_cache=PlanCache(256),
        selectivity_gate=config.selectivity_gate,
        admission=admission,
        collapsing=collapsing,
        batch_window=batch_window,
        result_ttl=result_ttl,
    )


def _load_router_bootstrap(
    config: ExperimentConfig, dataset_name: str, max_pending: int
):
    """One router worker's engine for the determinism section.

    Top-level (picklable); each worker rebuilds the dataset
    deterministically and receives models as deploy broadcasts.
    """
    dataset = dataset_for(config, dataset_name)
    loaded = load_dataset(dataset, config.rows_target)
    registry = ModelRegistry(max_nodes=config.max_nodes)
    return ServeEngine(
        loaded.db,
        registry,
        workers=2,
        max_pending=max_pending,
        plan_cache=PlanCache(256),
        selectivity_gate=config.selectivity_gate,
    )


def _report_row(report: SLOReport) -> dict:
    row = report.to_dict()
    row["latency_ms"] = {
        name: round(seconds * 1000.0, 3)
        for name, seconds in report.latency.items()
    }
    row["jitter_ms"] = {
        name: round(seconds * 1000.0, 3)
        for name, seconds in report.jitter.items()
    }
    del row["latency_seconds"], row["jitter_seconds"]
    for key in (
        "duration_seconds",
        "offered_rate",
        "goodput",
        "miss_rate",
        "shed_rate",
        "latency_mean_seconds",
        "latency_max_seconds",
        "queue_mean_seconds",
        "service_mean_seconds",
        "issue_lag_max_seconds",
    ):
        row[key] = round(row[key], 4)
    return row


def _run_open_loop(
    transport,
    queries,
    indices,
    schedule: ArrivalSchedule,
    deadline: float,
    keep_results: bool = False,
) -> "tuple[LoadResult, SLOReport]":
    requests = [
        QueryRequest(queries[index], timeout=deadline) for index in indices
    ]
    result = run_load(
        transport, schedule, requests, keep_results=keep_results
    )
    return result, summarize_load(result)


def run_load_bench(
    config: ExperimentConfig,
    arrivals: str = "poisson",
    rate: float | None = None,
    requests: int = 200,
    workers: int = 2,
    max_pending: int = 64,
    deadline: float | None = None,
    transport: str = "inproc",
    dataset_name: str | None = None,
    result_ttl: float | None = None,
    batch_windows: "tuple[float, ...]" = BATCH_WINDOWS,
) -> dict:
    """The full open-loop bench; returns the ``BENCH_load.json`` payload.

    ``rate`` overrides the auto-calibrated overload rate; ``deadline``
    (seconds) overrides the auto-calibrated per-request deadline;
    ``transport`` picks the adapter for the determinism section (the
    admission comparison always runs in-process, where the two
    controllers are the only variable).
    """
    with obs.span("load.bench", requests=requests, arrivals=arrivals):
        name = dataset_name or config.datasets[0]
        dataset = dataset_for(config, name)
        loaded = load_dataset(dataset, config.rows_target)
        db = loaded.db

        registry = ModelRegistry(max_nodes=config.max_nodes)
        model_payloads: list[dict] = []
        for family in (FAMILY_DECISION_TREE, FAMILY_NAIVE_BAYES):
            trained = train_family(dataset, family, config)
            model_payloads.append(trained.model.to_dict())
            registry.register(trained.model, deploy=True)

        queries = build_queries(registry, loaded)
        indices = build_schedule(len(queries), requests, config.seed)

        # -- serial capacity probe ------------------------------------
        # One warmed engine, one request at a time: mean service time
        # s̄ calibrates every rate and deadline below to this machine.
        probe = _build_engine(db, registry, config, 1, max_pending)
        try:
            for query in queries:  # warm plans + stats off the clock
                probe.execute(QueryRequest(query))
            started = time.perf_counter()
            for index in indices:
                probe.execute(QueryRequest(queries[index]))
            service_mean = (time.perf_counter() - started) / len(indices)
        finally:
            probe.shutdown()

        capacity = workers / service_mean
        if deadline is None:
            deadline = max(
                8.0 * service_mean,
                0.25 * max_pending * service_mean / workers,
            )
        # The determinism pass must never drop a request, so it is
        # sized against *peak* intensity, not the mean: burst arrivals
        # concentrate the whole mean rate into the duty fraction of
        # each period (instantaneous rate = rate / duty).
        peak_factor = (
            1.0 / DEFAULT_BURST_DUTY if arrivals == "burst" else 1.0
        )
        determinism_rate = DETERMINISM_FRACTION * capacity / peak_factor
        overload_rate = (
            rate if rate is not None else OVERLOAD_FACTOR * capacity
        )

        payload: dict = {
            "benchmark": "load",
            "dataset": dataset.name,
            "rows": loaded.rows_total,
            "models": registry.deployed_names(),
            "distinct_queries": len(queries),
            "requests": requests,
            "arrivals": arrivals,
            "seed": config.seed,
            "workers": workers,
            "max_pending": max_pending,
            "transport": transport,
            "calibration": {
                "service_mean_ms": round(service_mean * 1000.0, 3),
                "capacity_rps": round(capacity, 2),
                "deadline_ms": round(deadline * 1000.0, 3),
                "determinism_rate_rps": round(determinism_rate, 2),
                "overload_rate_rps": round(overload_rate, 2),
            },
        }

        payload["determinism"] = _determinism_section(
            config,
            name,
            db,
            registry,
            model_payloads,
            queries,
            indices,
            arrivals,
            determinism_rate,
            requests,
            deadline,
            transport,
            workers,
            max_pending,
            result_ttl,
        )
        payload["overload"] = _overload_section(
            db,
            registry,
            config,
            queries,
            indices,
            arrivals,
            overload_rate,
            requests,
            deadline,
            workers,
            max_pending,
        )
        payload["batch_window_frontier"] = _frontier_section(
            db,
            registry,
            config,
            queries,
            indices,
            arrivals,
            capacity,
            requests,
            deadline,
            workers,
            max_pending,
            batch_windows,
        )
        db.close()
        return payload


def _determinism_section(
    config,
    dataset_name,
    db,
    registry,
    model_payloads,
    queries,
    indices,
    arrivals,
    rate,
    requests,
    deadline,
    transport,
    workers,
    max_pending,
    result_ttl,
) -> dict:
    """Same seed twice: identical offsets, byte-identical rows."""
    schedule_a = build_arrivals(arrivals, rate, requests, config.seed)
    schedule_b = build_arrivals(arrivals, rate, requests, config.seed)
    if schedule_a.offsets != schedule_b.offsets:
        raise ReproError(
            "load-bench: same-seed arrival schedules differ"
        )

    digests: list[str] = []
    reports: list[SLOReport] = []
    for _ in range(2):
        result, report = _run_determinism_pass(
            config,
            dataset_name,
            db,
            registry,
            model_payloads,
            queries,
            indices,
            schedule_a,
            deadline,
            transport,
            workers,
            max_pending,
            result_ttl,
        )
        dropped = (
            report.shed + report.queued_timeout + report.errors
        )
        if dropped:
            raise ReproError(
                "load-bench: determinism run dropped requests below "
                f"capacity (shed={report.shed} "
                f"timeouts={report.queued_timeout} "
                f"errors={report.errors})"
            )
        digests.append(
            rows_digest(
                [r.result.rows for r in result.completed_records()]
            )
        )
        reports.append(report)
    if digests[0] != digests[1]:
        raise ReproError(
            "load-bench: same-seed replays produced different rows"
        )
    return {
        "transport": transport,
        "rate_rps": round(rate, 2),
        "offsets_identical": True,
        "rows_digest": digests[0],
        "rows_identical": True,
        "runs": [_report_row(report) for report in reports],
    }


def _run_determinism_pass(
    config,
    dataset_name,
    db,
    registry,
    model_payloads,
    queries,
    indices,
    schedule,
    deadline,
    transport,
    workers,
    max_pending,
    result_ttl,
):
    """One below-capacity replay through the chosen transport."""
    if transport == "router":
        trace_dir = obs.trace_directory()
        router = ProcessRouter(
            _load_router_bootstrap,
            args=(config, dataset_name, max_pending),
            processes=2,
            trace_dir=None if trace_dir is None else str(trace_dir),
        )
        try:
            for payload in model_payloads:
                router.control(DeployRequest(model=payload))
            for query in queries:  # warm every worker replica
                router.request(QueryRequest(query))
            return _run_open_loop(
                router,
                queries,
                indices,
                schedule,
                deadline,
                keep_results=True,
            )
        finally:
            router.close()

    engine = _build_engine(
        db,
        registry,
        config,
        workers,
        max_pending,
        result_ttl=result_ttl,
    )
    server = None
    client = None
    try:
        for query in queries:  # warm this engine's caches
            engine.execute(QueryRequest(query))
        if transport == "inproc":
            client = LoopbackTransport(engine)
        elif transport == "socketpair":
            client, server = serve_socketpair(engine)
        elif transport == "tcp":
            server = TCPServer(engine)
            client = connect_tcp(*server.address)
        else:
            raise ReproError(
                f"load-bench: unknown transport {transport!r}"
            )
        return _run_open_loop(
            client, queries, indices, schedule, deadline, keep_results=True
        )
    finally:
        if client is not None:
            client.close()
        if server is not None:
            server.close()
        engine.shutdown()


def _overload_section(
    db,
    registry,
    config,
    queries,
    indices,
    arrivals,
    rate,
    requests,
    deadline,
    workers,
    max_pending,
) -> dict:
    """Static vs adaptive admission on the identical overload schedule.

    Collapsing is off for both engines so the comparison measures
    admission policy, not request dedup; both engines are warmed the
    same way (the warm-up also seeds the adaptive estimator).

    The gates pin a claim about *sustained* overload, so they are
    enforced only for the homogeneous arrival kinds (constant,
    poisson).  Under burst/ramp arrivals the instantaneous rate swings
    far from the mean — both controllers shed through the on-phases
    and idle between them, so the comparison is still reported but a
    gate miss is informational, not an error.
    """
    enforce_gates = arrivals in ("constant", "poisson")
    schedule = build_arrivals(arrivals, rate, requests, config.seed)
    reports: dict[str, SLOReport] = {}
    rows: dict[str, dict] = {}
    for admission in ("static", "adaptive"):
        engine = _build_engine(
            db,
            registry,
            config,
            workers,
            max_pending,
            admission=admission,
            collapsing=False,
        )
        try:
            for query in queries:
                engine.execute(QueryRequest(query))
            _, report = _run_open_loop(
                LoopbackTransport(engine),
                queries,
                indices,
                schedule,
                deadline,
            )
            reports[admission] = report
            row = _report_row(report)
            if admission == "adaptive":
                row["admission_limit_final"] = round(
                    engine.admission.limit, 2
                )
            rows[admission] = row
        finally:
            engine.shutdown()

    static, adaptive = reports["static"], reports["adaptive"]
    gates = {
        "adaptive_goodput_higher": adaptive.goodput > static.goodput,
        "adaptive_p99_lower": (
            adaptive.latency["p99"] < static.latency["p99"]
        ),
        "adaptive_sheds_at_admit": adaptive.shed > 0,
        "adaptive_queued_timeouts_near_zero": (
            adaptive.queued_timeout
            <= ADAPTIVE_TIMEOUT_TOLERANCE * requests
        ),
        "static_times_out_in_queue": static.queued_timeout > 0,
    }
    failed = sorted(name for name, passed in gates.items() if not passed)
    if failed and enforce_gates:
        raise ReproError(
            "load-bench: overload gates failed: "
            + ", ".join(failed)
            + f" (static goodput={static.goodput:.1f} "
            f"p99={static.latency['p99'] * 1000:.1f}ms "
            f"timeouts={static.queued_timeout} shed={static.shed}; "
            f"adaptive goodput={adaptive.goodput:.1f} "
            f"p99={adaptive.latency['p99'] * 1000:.1f}ms "
            f"timeouts={adaptive.queued_timeout} "
            f"shed={adaptive.shed})"
        )
    return {
        "rate_rps": round(rate, 2),
        "static": rows["static"],
        "adaptive": rows["adaptive"],
        "gates": gates,
        "gates_enforced": enforce_gates,
    }


def _frontier_section(
    db,
    registry,
    config,
    queries,
    indices,
    arrivals,
    capacity,
    requests,
    deadline,
    workers,
    max_pending,
    batch_windows,
) -> list[dict]:
    """Micro-batch window sweep at capacity — report-only."""
    schedule = build_arrivals(arrivals, capacity, requests, config.seed)
    frontier = []
    for window in batch_windows:
        engine = _build_engine(
            db,
            registry,
            config,
            workers,
            max_pending,
            batch_window=window,
        )
        try:
            for query in queries:
                engine.execute(QueryRequest(query))
            _, report = _run_open_loop(
                LoopbackTransport(engine),
                queries,
                indices,
                schedule,
                deadline,
            )
            batcher = engine.batcher
            frontier.append(
                {
                    "window_ms": round(window * 1000.0, 3),
                    "goodput_rps": round(report.goodput, 2),
                    "p50_ms": round(
                        report.latency["p50"] * 1000.0, 3
                    ),
                    "p99_ms": round(
                        report.latency["p99"] * 1000.0, 3
                    ),
                    "ok": report.ok,
                    "late": report.late,
                    "batch_calls": batcher.calls if batcher else 0,
                    "batch_requests": (
                        batcher.requests if batcher else 0
                    ),
                    "batch_coalesced": (
                        batcher.coalesced if batcher else 0
                    ),
                }
            )
        finally:
            engine.shutdown()
    return frontier
