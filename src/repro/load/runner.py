"""The open-loop load runner.

:func:`run_load` walks an :class:`~repro.load.arrivals.ArrivalSchedule`
and fires one request per offset at ``start + offset`` **whether or not
earlier requests have completed** — the defining property of an
open-loop harness.  Completions resolve on transport callback threads;
the issuing loop never waits on them, so a slow service faces the full
configured arrival rate instead of an accidentally throttled one.

Measurement avoids coordinated omission twice over:

* **latency is charged from the scheduled time**, not the actual issue
  time — if the issuing loop itself falls behind (it can, the OS is not
  a hard-real-time scheduler), that lag counts against the measured
  latency rather than disappearing;
* **every scheduled request is accounted for** in exactly one outcome
  bucket: ``ok``, ``late`` (completed, but after its deadline),
  ``shed`` (rejected at admission — queue full or predicted deadline
  miss), ``queued_timeout`` (admitted but expired waiting in queue),
  or ``error`` (anything else).  Sheds and deadline misses are *not*
  errors: they are the service's load-management answers, and the SLO
  report scores them as such.

The per-request record splits total latency into queue and service
components when the result carries its execution time (``ok``/``late``
outcomes), supporting the queue-vs-service attribution the SLO report
prints.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass

from collections.abc import Callable, Sequence

from repro import obs
from repro.exceptions import (
    AdmissionError,
    RequestTimeoutError,
)
from repro.load.arrivals import ArrivalSchedule
from repro.serve.engine import MatchRequest, QueryRequest
from repro.serve.transport import Transport

__all__ = ["LoadResult", "RequestRecord", "run_load", "OUTCOMES"]

#: Every outcome bucket a scheduled request can land in.
OUTCOMES = ("ok", "late", "shed", "queued_timeout", "error")


@dataclass(frozen=True)
class RequestRecord:
    """One scheduled request, fully accounted.

    All times are seconds relative to the run's start.  ``latency`` is
    ``completed - scheduled`` (coordinated-omission corrected); it is
    ``None`` for requests that never completed (sheds resolve at issue
    time, so they do carry a latency — the cost the *caller* paid to
    learn the request was rejected).
    """

    index: int
    scheduled: float
    issued: float
    completed: float | None
    outcome: str
    latency: float | None
    service_seconds: float | None = None
    error: str | None = None
    result: object | None = None

    @property
    def issue_lag(self) -> float:
        """How late the issuing loop itself fired this request."""
        return self.issued - self.scheduled

    @property
    def queue_seconds(self) -> float | None:
        """Latency not explained by service time (queue + transport)."""
        if self.latency is None or self.service_seconds is None:
            return None
        return max(0.0, self.latency - self.service_seconds)


@dataclass(frozen=True)
class LoadResult:
    """Everything one open-loop run produced."""

    schedule: ArrivalSchedule
    records: tuple[RequestRecord, ...]
    duration: float

    def outcome_counts(self) -> dict[str, int]:
        counts = {outcome: 0 for outcome in OUTCOMES}
        for record in self.records:
            counts[record.outcome] += 1
        return counts

    def completed_records(self) -> list[RequestRecord]:
        """Records that produced a result (``ok`` and ``late``)."""
        return [r for r in self.records if r.outcome in ("ok", "late")]


def _service_seconds(result: object) -> float | None:
    """Pull the server-measured execution time off a result, if any."""
    for attribute in ("execute_seconds", "match_seconds"):
        seconds = getattr(result, attribute, None)
        if seconds is not None:
            return float(seconds)
    return None


def _classify_error(error: BaseException) -> str:
    if isinstance(error, AdmissionError):
        return "shed"
    if isinstance(error, RequestTimeoutError):
        return "queued_timeout"
    return "error"


class _Slot:
    """Mutable completion slot one in-flight request resolves into."""

    __slots__ = (
        "index",
        "scheduled",
        "issued",
        "timeout",
        "completed",
        "outcome",
        "error",
        "result",
    )

    def __init__(
        self,
        index: int,
        scheduled: float,
        issued: float,
        timeout: float | None,
    ) -> None:
        self.index = index
        self.scheduled = scheduled
        self.issued = issued
        self.timeout = timeout
        self.completed: float | None = None
        self.outcome: str | None = None
        self.error: str | None = None
        self.result: object | None = None


def run_load(
    transport: Transport,
    schedule: ArrivalSchedule,
    requests: "Sequence[QueryRequest | MatchRequest] | Callable[[int], QueryRequest | MatchRequest]",
    grace: float = 30.0,
    keep_results: bool = False,
) -> LoadResult:
    """Fire ``requests`` open-loop at the schedule's offsets.

    ``requests`` is either a sequence aligned index-for-index with the
    schedule or a factory called with each index at issue time.  After
    the last issue, completions are awaited for at most ``grace``
    seconds; anything still unresolved is recorded as an ``error``
    (outcome ``error``, error ``"unresolved after grace period"``) —
    the harness never blocks forever on a hung service.

    With ``keep_results=True`` each completed record keeps a reference
    to its result object, which the bench uses for byte-identity
    digests; leave it off for long runs.
    """
    if not callable(requests):
        if len(requests) != schedule.count:
            raise ValueError(
                f"{len(requests)} requests for "
                f"{schedule.count} scheduled arrivals"
            )
        sequence = requests
        requests = lambda index: sequence[index]  # noqa: E731
    if grace < 0:
        raise ValueError(f"grace must be >= 0, got {grace}")

    slots: list[_Slot] = []
    futures: list["Future | None"] = []
    done = threading.Semaphore(0)
    start = time.perf_counter()

    def _resolve(slot: _Slot, future: "Future") -> None:
        slot.completed = time.perf_counter() - start
        error = future.exception()
        if error is not None:
            slot.outcome = _classify_error(error)
            slot.error = f"{type(error).__name__}: {error}"
        else:
            slot.result = future.result()
        done.release()

    for index, offset in enumerate(schedule.offsets):
        remaining = start + offset - time.perf_counter()
        if remaining > 0:
            time.sleep(remaining)
        request = requests(index)
        slot = _Slot(
            index,
            offset,
            time.perf_counter() - start,
            getattr(request, "timeout", None),
        )
        slots.append(slot)
        obs.add_counter("load.request.issued")
        try:
            future = transport.submit(request)
        except BaseException as error:  # noqa: BLE001 — every outcome is data
            # In-process transports raise admission errors synchronously;
            # byte transports deliver them through the future instead.
            slot.completed = time.perf_counter() - start
            slot.outcome = _classify_error(error)
            slot.error = f"{type(error).__name__}: {error}"
            futures.append(None)
            continue
        futures.append(future)
        future.add_done_callback(
            lambda f, s=slot: _resolve(s, f)
        )

    # -- wait for completions, bounded by the grace period ----------------
    pending = sum(1 for future in futures if future is not None)
    deadline = time.perf_counter() + grace
    for _ in range(pending):
        remaining = deadline - time.perf_counter()
        if remaining <= 0 or not done.acquire(timeout=remaining):
            break

    duration = time.perf_counter() - start
    records = []
    for slot, future in zip(slots, futures):
        outcome = slot.outcome
        result = slot.result
        if outcome is None:
            if slot.completed is not None:
                # Completed with a result: late iff it outlived its own
                # deadline, measured from when it was actually issued
                # (the deadline clock starts at admission, not at the
                # scheduled time the issuing loop aimed for).
                elapsed = slot.completed - slot.issued
                late = slot.timeout is not None and elapsed > slot.timeout
                outcome = "late" if late else "ok"
            else:
                outcome = "error"
                slot.error = "unresolved after grace period"
        obs.add_counter(f"load.request.{outcome}")
        records.append(
            RequestRecord(
                index=slot.index,
                scheduled=slot.scheduled,
                issued=slot.issued,
                completed=slot.completed,
                outcome=outcome,
                latency=(
                    None
                    if slot.completed is None
                    else slot.completed - slot.scheduled
                ),
                service_seconds=(
                    None if result is None else _service_seconds(result)
                ),
                error=slot.error,
                result=result if keep_results else None,
            )
        )
    return LoadResult(
        schedule=schedule, records=tuple(records), duration=duration
    )
