"""SLO accounting over one open-loop run.

:func:`summarize_load` reduces a :class:`~repro.load.runner.LoadResult`
to the numbers an SLO conversation is actually about:

* **latency percentiles** (p50/p95/p99, coordinated-omission corrected:
  every latency is measured from the *scheduled* arrival time) over
  completed requests;
* **jitter percentiles** — absolute latency deltas between consecutive
  completions, the "how bumpy is the experience" companion to raw
  percentiles (two services with equal p99 can feel very different if
  one alternates 1 ms / 200 ms);
* **goodput vs offered load** — completed-in-deadline requests per
  second against the schedule's empirical arrival rate.  Under
  overload, goodput below offered rate is expected; goodput *collapse*
  is what admission control exists to prevent;
* **miss / shed rates** — deadline misses (late completions plus
  queued timeouts) and admission sheds as separate rates, because they
  are different failure modes: a shed costs the caller microseconds, a
  queued timeout costs the full deadline.

Everything is published as ``load.*`` gauges/counters through
:mod:`repro.obs`, which the trace report renders as the "Load / SLO"
section.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.load.runner import LoadResult

__all__ = ["SLOReport", "summarize_load"]

_QUANTILES = (("p50", 50.0), ("p95", 95.0), ("p99", 99.0))


def _percentiles(values: "list[float]") -> dict[str, float]:
    if not values:
        return {name: 0.0 for name, _ in _QUANTILES}
    data = np.asarray(values, dtype=np.float64)
    return {
        name: float(np.percentile(data, q)) for name, q in _QUANTILES
    }


@dataclass(frozen=True)
class SLOReport:
    """One run's SLO summary; ``to_dict`` is its JSON form."""

    requests: int
    ok: int
    late: int
    shed: int
    queued_timeout: int
    errors: int
    duration: float
    offered_rate: float
    goodput: float
    miss_rate: float
    shed_rate: float
    latency: dict[str, float]
    jitter: dict[str, float]
    latency_mean: float
    latency_max: float
    queue_mean: float
    service_mean: float
    issue_lag_max: float

    @property
    def completed(self) -> int:
        return self.ok + self.late

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "ok": self.ok,
            "late": self.late,
            "shed": self.shed,
            "queued_timeout": self.queued_timeout,
            "errors": self.errors,
            "duration_seconds": self.duration,
            "offered_rate": self.offered_rate,
            "goodput": self.goodput,
            "miss_rate": self.miss_rate,
            "shed_rate": self.shed_rate,
            "latency_seconds": dict(self.latency),
            "jitter_seconds": dict(self.jitter),
            "latency_mean_seconds": self.latency_mean,
            "latency_max_seconds": self.latency_max,
            "queue_mean_seconds": self.queue_mean,
            "service_mean_seconds": self.service_mean,
            "issue_lag_max_seconds": self.issue_lag_max,
        }


def summarize_load(result: LoadResult, publish: bool = True) -> SLOReport:
    """Reduce one run to its SLO report; optionally publish ``load.*``
    gauges for the trace report."""
    counts = result.outcome_counts()
    completed = result.completed_records()
    latencies = [
        r.latency for r in completed if r.latency is not None
    ]
    # Jitter: consecutive-completion latency deltas, in completion order.
    ordered = sorted(
        (r for r in completed if r.completed is not None),
        key=lambda r: r.completed,
    )
    deltas = [
        abs(b.latency - a.latency)
        for a, b in zip(ordered, ordered[1:])
        if a.latency is not None and b.latency is not None
    ]
    queue_values = [
        r.queue_seconds for r in completed if r.queue_seconds is not None
    ]
    service_values = [
        r.service_seconds
        for r in completed
        if r.service_seconds is not None
    ]
    duration = result.duration
    report = SLOReport(
        requests=len(result.records),
        ok=counts["ok"],
        late=counts["late"],
        shed=counts["shed"],
        queued_timeout=counts["queued_timeout"],
        errors=counts["error"],
        duration=duration,
        offered_rate=result.schedule.empirical_rate(),
        goodput=counts["ok"] / duration if duration > 0 else 0.0,
        miss_rate=(
            (counts["late"] + counts["queued_timeout"])
            / len(result.records)
            if result.records
            else 0.0
        ),
        shed_rate=(
            counts["shed"] / len(result.records) if result.records else 0.0
        ),
        latency=_percentiles(latencies),
        jitter=_percentiles(deltas),
        latency_mean=float(np.mean(latencies)) if latencies else 0.0,
        latency_max=max(latencies, default=0.0),
        queue_mean=float(np.mean(queue_values)) if queue_values else 0.0,
        service_mean=(
            float(np.mean(service_values)) if service_values else 0.0
        ),
        issue_lag_max=max(
            (r.issue_lag for r in result.records), default=0.0
        ),
    )
    if publish:
        obs.set_gauge("load.offered_rate", report.offered_rate)
        obs.set_gauge("load.goodput", report.goodput)
        obs.set_gauge("load.miss_rate", report.miss_rate)
        obs.set_gauge("load.shed_rate", report.shed_rate)
        for name, value in report.latency.items():
            obs.set_gauge(f"load.latency.{name}", value)
        for name, value in report.jitter.items():
            obs.set_gauge(f"load.jitter.{name}", value)
    return report
