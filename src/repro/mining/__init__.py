"""From-scratch mining models (the substrate the paper applies in queries).

Learners and trained-model classes for the three families the paper derives
upper envelopes for — decision trees, naive Bayes, and clustering (centroid,
model-based, boundary-based) — plus rule sets, discretization utilities, and
JSON model interchange.
"""

from repro.mining.base import MiningModel, ModelKind, Row
from repro.mining.decision_tree import DecisionTreeLearner, DecisionTreeModel
from repro.mining.density import (
    NOISE_LABEL,
    DensityClusterLearner,
    DensityClusterModel,
)
from repro.mining.discretize import BinningMethod
from repro.mining.discretized_cluster import DiscretizedClusterModel
from repro.mining.gmm import GaussianMixtureLearner, GaussianMixtureModel
from repro.mining.fuzzy import FuzzyCMeansLearner
from repro.mining.hierarchical import AgglomerativeClusterLearner, MergeStep
from repro.mining.interchange import load_model, model_from_dict, save_model
from repro.mining.kmeans import KMeansLearner, KMeansModel
from repro.mining.naive_bayes import (
    NaiveBayesLearner,
    NaiveBayesModel,
    naive_bayes_from_tables,
)
from repro.mining.rules import Rule, RuleLearner, RuleSetModel

__all__ = [
    "AgglomerativeClusterLearner",
    "BinningMethod",
    "DecisionTreeLearner",
    "DecisionTreeModel",
    "DensityClusterLearner",
    "DensityClusterModel",
    "DiscretizedClusterModel",
    "FuzzyCMeansLearner",
    "GaussianMixtureLearner",
    "GaussianMixtureModel",
    "KMeansLearner",
    "KMeansModel",
    "MergeStep",
    "MiningModel",
    "ModelKind",
    "NaiveBayesLearner",
    "NaiveBayesModel",
    "NOISE_LABEL",
    "Row",
    "Rule",
    "RuleLearner",
    "RuleSetModel",
    "load_model",
    "model_from_dict",
    "naive_bayes_from_tables",
    "save_model",
]
