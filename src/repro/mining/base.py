"""Common interface for mining models.

The paper treats mining models as first-class database objects (Section 2):
they have a schema (source columns, one prediction column), can be applied
row-by-row (the "prediction join"), and expose their internal content so the
optimizer can derive upper envelopes from it.  :class:`MiningModel` captures
exactly that contract; each learner in this package implements it from
scratch.

Rows are plain mappings from column name to value — the same representation
the SQL layer produces — so a model can be applied to query results without
any adapter.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Mapping, Sequence
from typing import Any

import numpy as np

from repro.core.columns import ColumnBatch
from repro.core.predicates import Value
from repro.exceptions import ModelError, NotFittedError

#: A data row: column name -> value.
Row = Mapping[str, Value]


class ModelKind(enum.Enum):
    """The model families the library supports envelopes for."""

    DECISION_TREE = "decision_tree"
    NAIVE_BAYES = "naive_bayes"
    RULES = "rules"
    KMEANS = "kmeans"
    GMM = "gmm"
    DENSITY = "density"


class MiningModel:
    """Abstract base class of every trained mining model.

    Concrete models are created by their learner's ``fit`` and are immutable
    afterwards.  The two halves of the interface mirror the paper:

    * the *black box* half — :meth:`predict` / :meth:`predict_many`, which is
      all a traditional engine can use, and
    * the *white box* half — :attr:`class_labels`, model-specific parameters,
      and serialization, which is what upper-envelope derivation exploits.
    """

    #: Model name as registered in the catalog (e.g. ``Risk_Class``).
    name: str
    #: Name of the predicted column exposed in mining queries.
    prediction_column: str

    @property
    def kind(self) -> ModelKind:
        raise NotImplementedError

    @property
    def feature_columns(self) -> tuple[str, ...]:
        """Source columns consumed by :meth:`predict`."""
        raise NotImplementedError

    @property
    def class_labels(self) -> tuple[Value, ...]:
        """All labels the model may predict, in a stable order.

        The optimizer enumerates these when expanding IN predicates and join
        predicates (paper Section 4.1); the paper notes the count is small
        for typical models.
        """
        raise NotImplementedError

    def predict(self, row: Row) -> Value:
        """Predicted class (or cluster) label for one row."""
        raise NotImplementedError

    def predict_batch(self, batch: ColumnBatch) -> np.ndarray:
        """Predicted labels for a whole :class:`ColumnBatch` at once.

        Contract: the result is an object-dtype array of length
        ``len(batch)`` whose ``i``-th element **equals** (``==`` and same
        semantics under dict/set use) ``self.predict(batch.rows()[i])``.
        The scalar :meth:`predict` is the oracle — a family overrides this
        method only with matrix math proven to reduce in the same order as
        its scalar code, so predictions stay bit-identical.

        The base implementation is the scalar loop itself, which keeps
        every model usable through the batch interface.
        """
        out = np.empty(len(batch), dtype=object)
        for i, row in enumerate(batch.rows()):
            out[i] = self.predict(row)
        return out

    def supports_batch(self) -> bool:
        """Whether this model overrides :meth:`predict_batch`."""
        return type(self).predict_batch is not MiningModel.predict_batch

    def predict_many(self, rows: Iterable[Row]) -> list[Value]:
        """Predicted labels for many rows.

        Contract: equivalent to ``[self.predict(r) for r in rows]`` — same
        labels, same order, same errors on malformed rows.  When the model
        provides a vectorized :meth:`predict_batch`, the default delegates
        to it (building one :class:`ColumnBatch` over the rows) so callers
        get batch speed without opting in explicitly; otherwise it falls
        back to the scalar loop.
        """
        materialized = rows if isinstance(rows, Sequence) else list(rows)
        if materialized and self.supports_batch():
            return list(self.predict_batch(ColumnBatch(materialized)))
        return [self.predict(row) for row in materialized]

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable model content (our PMML stand-in)."""
        raise NotImplementedError

    def _require_columns(self, row: Row) -> None:
        missing = [c for c in self.feature_columns if c not in row]
        if missing:
            raise ModelError(
                f"model {self.name!r} requires columns {missing} "
                "absent from the row"
            )


def check_fitted(model: object, attribute: str) -> None:
    """Raise :class:`NotFittedError` unless ``attribute`` is set."""
    if getattr(model, attribute, None) is None:
        raise NotFittedError(
            f"{type(model).__name__} must be fitted before use"
        )


def extract_column(rows: Sequence[Row], column: str) -> list[Value]:
    """Column projection with a helpful error for missing columns."""
    try:
        return [row[column] for row in rows]
    except KeyError:
        raise ModelError(f"training rows lack column {column!r}") from None


def class_distribution(labels: Iterable[Value]) -> dict[Value, int]:
    """Counts per class label."""
    counts: dict[Value, int] = {}
    for label in labels:
        counts[label] = counts.get(label, 0) + 1
    return counts
