"""Binary decision-tree classifier (paper Section 3.1, Figure 1).

Internal nodes carry a simple test on one attribute — a numeric threshold
(``x <= t``) or a categorical equality (``x = v``) — and leaves carry a class
label.  This is the structure from which Section 3.1 extracts *exact* upper
envelopes: AND the tests along each root-to-leaf path of a class, OR the
paths together.

The learner is a from-scratch C4.5/CART hybrid: greedy binary splits by
information gain with standard stopping rules.  No pruning is performed —
pruned or unpruned, the envelope-extraction contract (every predicted row
satisfies its class envelope, exactly) is the same.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any, Union

import numpy as np

from repro.core.columns import ColumnBatch
from repro.core.predicates import Comparison, Op, Predicate, Value, equals
from repro.exceptions import ModelError
from repro.mining.base import MiningModel, ModelKind, Row, extract_column


@dataclass(frozen=True)
class NumericTest:
    """Test ``column <= threshold``; true branch is the left child."""

    column: str
    threshold: float

    def matches(self, row: Row) -> bool:
        value = row[self.column]
        if isinstance(value, str):
            raise ModelError(
                f"numeric test on {self.column!r} applied to string value"
            )
        return value <= self.threshold

    def true_predicate(self) -> Predicate:
        return Comparison(self.column, Op.LE, self.threshold)

    def false_predicate(self) -> Predicate:
        return Comparison(self.column, Op.GT, self.threshold)


@dataclass(frozen=True)
class CategoryTest:
    """Test ``column = value``; true branch is the left child."""

    column: str
    value: Value

    def matches(self, row: Row) -> bool:
        return row[self.column] == self.value

    def true_predicate(self) -> Predicate:
        return equals(self.column, self.value)

    def false_predicate(self) -> Predicate:
        return Comparison(self.column, Op.NE, self.value)


Test = Union[NumericTest, CategoryTest]


@dataclass(frozen=True)
class Leaf:
    """Terminal node predicting ``label``; ``counts`` kept for diagnostics."""

    label: Value
    counts: tuple[tuple[Value, int], ...]


@dataclass(frozen=True)
class Internal:
    """Internal node: ``test`` true -> ``left``, false -> ``right``."""

    test: Test
    left: "Node"
    right: "Node"


Node = Union[Leaf, Internal]


class DecisionTreeModel(MiningModel):
    """A trained decision tree; :attr:`root` is the white-box content."""

    def __init__(
        self,
        name: str,
        prediction_column: str,
        feature_columns: Sequence[str],
        root: Node,
    ) -> None:
        self.name = name
        self.prediction_column = prediction_column
        self._feature_columns = tuple(feature_columns)
        self.root = root
        self._class_labels = tuple(sorted(self._collect_labels(root), key=str))

    @staticmethod
    def _collect_labels(node: Node) -> set[Value]:
        if isinstance(node, Leaf):
            return {node.label}
        return DecisionTreeModel._collect_labels(
            node.left
        ) | DecisionTreeModel._collect_labels(node.right)

    @property
    def kind(self) -> ModelKind:
        return ModelKind.DECISION_TREE

    @property
    def feature_columns(self) -> tuple[str, ...]:
        return self._feature_columns

    @property
    def class_labels(self) -> tuple[Value, ...]:
        return self._class_labels

    def predict(self, row: Row) -> Value:
        self._require_columns(row)
        node = self.root
        while isinstance(node, Internal):
            node = node.left if node.test.matches(row) else node.right
        return node.label

    def predict_batch(self, batch: ColumnBatch) -> np.ndarray:
        """Batch prediction via iterative node masks.

        Rows are routed through the tree level by level: each internal
        node evaluates its test once over the index set that reached it,
        so the work per node is one vectorized comparison instead of
        ``len(batch)`` Python branch walks.
        """
        out = np.empty(len(batch), dtype=object)
        if len(batch) == 0:
            return out
        missing = [c for c in self.feature_columns if not batch.has_column(c)]
        if missing:
            raise ModelError(
                f"model {self.name!r} requires columns {missing} "
                "absent from the row"
            )
        if any(
            isinstance(test, NumericTest) and not batch.is_numeric(test.column)
            for test in _iter_tests(self.root)
        ):
            # A string value would hit a numeric node; the scalar oracle
            # raises per offending row, so let it.
            for i, row in enumerate(batch.rows()):
                out[i] = self.predict(row)
            return out
        stack: list[tuple[Node, np.ndarray]] = [
            (self.root, np.arange(len(batch), dtype=np.int64))
        ]
        while stack:
            node, indices = stack.pop()
            if indices.size == 0:
                continue
            if isinstance(node, Leaf):
                out[indices] = node.label
                continue
            test = node.test
            if isinstance(test, NumericTest):
                mask = batch.numeric(test.column)[indices] <= test.threshold
            else:
                mask = batch.column(test.column)[indices] == test.value
            stack.append((node.left, indices[mask]))
            stack.append((node.right, indices[~mask]))
        return out

    def leaf_count(self) -> int:
        return sum(1 for _ in iter_leaves(self.root))

    def depth(self) -> int:
        def walk(node: Node) -> int:
            if isinstance(node, Leaf):
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self.root)

    def to_dict(self) -> dict[str, Any]:
        def node_dict(node: Node) -> dict[str, Any]:
            if isinstance(node, Leaf):
                return {
                    "leaf": True,
                    "label": node.label,
                    "counts": [list(pair) for pair in node.counts],
                }
            test: dict[str, Any]
            if isinstance(node.test, NumericTest):
                test = {
                    "type": "numeric",
                    "column": node.test.column,
                    "threshold": node.test.threshold,
                }
            else:
                test = {
                    "type": "category",
                    "column": node.test.column,
                    "value": node.test.value,
                }
            return {
                "leaf": False,
                "test": test,
                "left": node_dict(node.left),
                "right": node_dict(node.right),
            }

        return {
            "kind": self.kind.value,
            "name": self.name,
            "prediction_column": self.prediction_column,
            "feature_columns": list(self._feature_columns),
            "root": node_dict(self.root),
        }


def _iter_tests(node: Node):
    """Yield every internal-node test in the tree."""
    if isinstance(node, Internal):
        yield node.test
        yield from _iter_tests(node.left)
        yield from _iter_tests(node.right)


def iter_leaves(node: Node, path: tuple[Predicate, ...] = ()):
    """Yield ``(path_conditions, leaf)`` pairs for every leaf.

    ``path_conditions`` is the tuple of simple predicates along the
    root-to-leaf path — exactly the conjuncts of Section 3.1's envelope.
    """
    if isinstance(node, Leaf):
        yield path, node
        return
    yield from iter_leaves(node.left, path + (node.test.true_predicate(),))
    yield from iter_leaves(node.right, path + (node.test.false_predicate(),))


class DecisionTreeLearner:
    """Greedy binary-split tree induction by information gain.

    Split search is vectorized: training rows are converted to column
    arrays once, numeric candidates are scored with prefix class-count
    sums over the sorted column, and categorical candidates with per-value
    count matrices — training on tens of thousands of rows stays fast.
    """

    def __init__(
        self,
        feature_columns: Sequence[str],
        target_column: str,
        max_depth: int = 12,
        min_samples_split: int = 4,
        min_gain: float = 1e-6,
        max_thresholds: int = 32,
        name: str = "decision_tree",
        prediction_column: str | None = None,
    ) -> None:
        if not feature_columns:
            raise ModelError("decision tree needs at least one feature column")
        if max_depth < 0:
            raise ModelError("max_depth must be >= 0")
        self.feature_columns = tuple(feature_columns)
        self.target_column = target_column
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_gain = min_gain
        self.max_thresholds = max_thresholds
        self.name = name
        self.prediction_column = prediction_column or f"predicted_{target_column}"

    def fit(self, rows: Sequence[Row]) -> DecisionTreeModel:
        if not rows:
            raise ModelError("cannot fit a tree on an empty training set")
        labels_raw = extract_column(rows, self.target_column)
        self._class_values = tuple(sorted(set(labels_raw), key=str))
        label_index = {v: i for i, v in enumerate(self._class_values)}
        self._labels = np.array(
            [label_index[v] for v in labels_raw], dtype=np.int64
        )
        # Column arrays: numeric columns as float arrays; string columns as
        # integer codes plus their value domain.
        self._numeric: dict[str, np.ndarray] = {}
        self._codes: dict[str, np.ndarray] = {}
        self._domains: dict[str, list[Value]] = {}
        for column in self.feature_columns:
            values = extract_column(rows, column)
            if any(isinstance(v, str) for v in values):
                if not all(isinstance(v, str) for v in values):
                    raise ModelError(
                        f"column {column!r} mixes strings and numbers"
                    )
                domain = sorted(set(values))
                code = {v: i for i, v in enumerate(domain)}
                self._domains[column] = list(domain)
                self._codes[column] = np.array(
                    [code[v] for v in values], dtype=np.int64
                )
            else:
                self._numeric[column] = np.asarray(values, dtype=float)
        indices = np.arange(len(rows), dtype=np.int64)
        root = self._build(indices, depth=0)
        # Release training arrays; the model keeps only the tree.
        del self._labels, self._numeric, self._codes, self._domains
        return DecisionTreeModel(
            self.name, self.prediction_column, self.feature_columns, root
        )

    # -- induction ---------------------------------------------------------

    def _build(self, indices, depth: int) -> Node:
        counts = np.bincount(
            self._labels[indices], minlength=len(self._class_values)
        )
        present = int((counts > 0).sum())
        if (
            present <= 1
            or depth >= self.max_depth
            or len(indices) < self.min_samples_split
        ):
            return self._leaf(counts)
        best = self._best_split(indices, counts)
        if best is None:
            return self._leaf(counts)
        test, left_mask = best
        return Internal(
            test,
            self._build(indices[left_mask], depth + 1),
            self._build(indices[~left_mask], depth + 1),
        )

    def _leaf(self, counts) -> Leaf:
        best_index = int(counts.argmax())
        label = self._class_values[best_index]
        ordered = tuple(
            (value, int(count))
            for value, count in zip(self._class_values, counts)
            if count
        )
        return Leaf(label, ordered)

    @staticmethod
    def _entropy_of(counts, totals) -> "float":
        """Vectorized entropy of stacked count rows (base 2)."""
        with np.errstate(divide="ignore", invalid="ignore"):
            p = counts / totals[..., None]
            terms = np.where(p > 0, p * np.log2(p), 0.0)
        return -terms.sum(axis=-1)

    def _best_split(self, indices, counts):
        total = len(indices)
        base_entropy = float(self._entropy_of(counts, np.array([total]))[0])
        labels = self._labels[indices]
        n_classes = len(self._class_values)
        best_gain = self.min_gain
        best: tuple[Test, np.ndarray] | None = None

        for column in self.feature_columns:
            if column in self._numeric:
                values = self._numeric[column][indices]
                order = np.argsort(values, kind="stable")
                ordered_values = values[order]
                ordered_labels = labels[order]
                # Candidate cut positions: boundaries between distinct
                # consecutive values.
                boundaries = np.flatnonzero(
                    ordered_values[1:] > ordered_values[:-1]
                )
                if boundaries.size == 0:
                    continue
                if boundaries.size > self.max_thresholds:
                    step = boundaries.size / self.max_thresholds
                    picks = (np.arange(self.max_thresholds) * step).astype(int)
                    boundaries = boundaries[picks]
                one_hot = np.zeros((total, n_classes))
                one_hot[np.arange(total), ordered_labels] = 1.0
                prefix = one_hot.cumsum(axis=0)
                left_counts = prefix[boundaries]
                left_totals = left_counts.sum(axis=1)
                right_counts = counts[None, :] - left_counts
                right_totals = total - left_totals
                weighted = (
                    left_totals / total
                    * self._entropy_of(left_counts, left_totals)
                    + right_totals / total
                    * self._entropy_of(right_counts, right_totals)
                )
                gains = base_entropy - weighted
                pick = int(gains.argmax())
                if gains[pick] > best_gain:
                    threshold = float(
                        (
                            ordered_values[boundaries[pick]]
                            + ordered_values[boundaries[pick] + 1]
                        )
                        / 2.0
                    )
                    best_gain = float(gains[pick])
                    best = (
                        NumericTest(column, threshold),
                        values <= threshold,
                    )
            else:
                codes = self._codes[column][indices]
                domain = self._domains[column]
                # Per-(value, class) counts in one pass.
                matrix = np.zeros((len(domain), n_classes))
                np.add.at(matrix, (codes, labels), 1.0)
                value_totals = matrix.sum(axis=1)
                usable = np.flatnonzero(
                    (value_totals > 0) & (value_totals < total)
                )
                if usable.size == 0:
                    continue
                left_counts = matrix[usable]
                left_totals = value_totals[usable]
                right_counts = counts[None, :] - left_counts
                right_totals = total - left_totals
                weighted = (
                    left_totals / total
                    * self._entropy_of(left_counts, left_totals)
                    + right_totals / total
                    * self._entropy_of(right_counts, right_totals)
                )
                gains = base_entropy - weighted
                pick = int(gains.argmax())
                if gains[pick] > best_gain:
                    value = domain[int(usable[pick])]
                    best_gain = float(gains[pick])
                    best = (
                        CategoryTest(column, value),
                        codes == usable[pick],
                    )
        return best
