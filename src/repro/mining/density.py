"""Boundary-based (density) clustering over a discretized grid.

Paper Section 3.3's third variant: "boundary-based clusters explicitly
define the boundary of a region within which a point needs to lie in order
to belong to a cluster", and "deriving upper envelopes is equivalent to
covering a geometric region with a small number of rectangles" (citing
CLIQUE and orthogonal-polygon covering).

We implement the CLIQUE-style grid-density formulation: discretize each
numeric attribute into bins, mark cells containing at least
``density_threshold`` training points as dense, and take connected
components of dense cells (axis-adjacency) as clusters.  Points falling in a
non-dense cell get the noise label.  Because each cluster is an explicit set
of grid cells, its upper envelope is an *exact* rectangle cover produced by
:func:`repro.core.covering.cover_cells`.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.core.columns import ColumnBatch
from repro.core.predicates import Value
from repro.core.regions import AttributeSpace
from repro.exceptions import ModelError
from repro.mining.base import MiningModel, ModelKind, Row
from repro.mining.discretize import BinningMethod, infer_space_dimensions

#: Label assigned to points outside every dense cluster.
NOISE_LABEL = "noise"


class DensityClusterModel(MiningModel):
    """Grid-density clustering: clusters are explicit cell sets."""

    def __init__(
        self,
        name: str,
        prediction_column: str,
        space: AttributeSpace,
        cluster_cells: Sequence[frozenset[tuple[int, ...]]],
        labels: Sequence[Value] | None = None,
    ) -> None:
        self.name = name
        self.prediction_column = prediction_column
        self.space = space
        self.cluster_cells = tuple(frozenset(c) for c in cluster_cells)
        seen: set[tuple[int, ...]] = set()
        for cells in self.cluster_cells:
            if not cells:
                raise ModelError("clusters must own at least one cell")
            if cells & seen:
                raise ModelError("cluster cell sets must be disjoint")
            seen |= cells
        if labels is None:
            labels = [f"cluster_{k}" for k in range(len(self.cluster_cells))]
        if len(labels) != len(self.cluster_cells):
            raise ModelError("labels must match the number of clusters")
        self._cluster_labels = tuple(labels)
        self._cell_to_label: dict[tuple[int, ...], Value] = {}
        for label, cells in zip(self._cluster_labels, self.cluster_cells):
            for cell in cells:
                self._cell_to_label[cell] = label
        self._code_map: tuple[np.ndarray, np.ndarray] | None = None

    @property
    def kind(self) -> ModelKind:
        return ModelKind.DENSITY

    @property
    def feature_columns(self) -> tuple[str, ...]:
        return tuple(d.name for d in self.space.dimensions)

    @property
    def class_labels(self) -> tuple[Value, ...]:
        return self._cluster_labels + (NOISE_LABEL,)

    @property
    def cluster_labels(self) -> tuple[Value, ...]:
        """Labels of actual clusters, excluding the noise label."""
        return self._cluster_labels

    def cells_for(self, label: Value) -> frozenset[tuple[int, ...]]:
        """The explicit cell set of one cluster (empty set for noise)."""
        for cluster_label, cells in zip(
            self._cluster_labels, self.cluster_cells
        ):
            if cluster_label == label:
                return cells
        if label == NOISE_LABEL:
            return frozenset()
        raise ModelError(f"model {self.name!r} has no cluster {label!r}")

    def predict(self, row: Row) -> Value:
        self._require_columns(row)
        cell = self.space.point_for_row(row)
        return self._cell_to_label.get(cell, NOISE_LABEL)

    def _cluster_code_map(self) -> tuple[np.ndarray, np.ndarray]:
        """Sorted linear codes of every cluster cell, with their labels.

        The grid may be astronomically larger than the handful of dense
        cells (``bins ** n_dims``), so the lookup is sparse: cluster
        cells are linearized in C order, sorted once, and batch codes are
        matched with a binary search.  Built lazily on first use.
        """
        if self._code_map is not None:
            return self._code_map
        codes = np.empty(len(self._cell_to_label), dtype=np.int64)
        labels = np.empty(len(self._cell_to_label), dtype=object)
        for i, (cell, label) in enumerate(self._cell_to_label.items()):
            code = 0
            for member, dim in zip(cell, self.space.dimensions):
                code = code * dim.size + member
            codes[i] = code
            labels[i] = label
        order = np.argsort(codes)
        self._code_map = (codes[order], labels[order])
        return self._code_map

    def predict_batch(self, batch: ColumnBatch) -> np.ndarray:
        """Batch prediction: vectorized binning + sparse cell lookup."""
        if len(batch) == 0:
            return np.empty(0, dtype=object)
        missing = [c for c in self.feature_columns if not batch.has_column(c)]
        if missing:
            raise ModelError(
                f"model {self.name!r} requires columns {missing} "
                "absent from the row"
            )
        grid_size = 1
        for dim in self.space.dimensions:
            grid_size *= dim.size
        if grid_size >= 2**62:
            # Linear codes would overflow int64; defer to the scalar rule.
            out = np.empty(len(batch), dtype=object)
            for i, row in enumerate(batch.rows()):
                out[i] = self.predict(row)
            return out
        codes = np.zeros(len(batch), dtype=np.int64)
        for dim in self.space.dimensions:
            members = dim.members_for_values(batch.column(dim.name))
            codes = codes * dim.size + members
        cell_codes, cell_labels = self._cluster_code_map()
        out = np.empty(len(batch), dtype=object)
        out[:] = NOISE_LABEL
        if cell_codes.size:
            positions = np.searchsorted(cell_codes, codes)
            positions[positions == cell_codes.size] = 0
            hits = cell_codes[positions] == codes
            out[hits] = cell_labels[positions[hits]]
        return out

    def to_dict(self) -> dict[str, Any]:
        from repro.mining.interchange import dimension_to_dict

        return {
            "kind": self.kind.value,
            "name": self.name,
            "prediction_column": self.prediction_column,
            "labels": list(self._cluster_labels),
            "dimensions": [
                dimension_to_dict(d) for d in self.space.dimensions
            ],
            "clusters": [
                sorted(list(cell) for cell in cells)
                for cells in self.cluster_cells
            ],
        }


class DensityClusterLearner:
    """CLIQUE-style dense-cell connected-components clustering."""

    def __init__(
        self,
        feature_columns: Sequence[str],
        bins: int = 8,
        density_threshold: int = 4,
        binning: BinningMethod = BinningMethod.EQUAL_WIDTH,
        min_cluster_cells: int = 1,
        name: str = "density",
        prediction_column: str = "cluster",
    ) -> None:
        if density_threshold < 1:
            raise ModelError("density_threshold must be >= 1")
        self.feature_columns = tuple(feature_columns)
        self.bins = bins
        self.density_threshold = density_threshold
        self.binning = binning
        self.min_cluster_cells = min_cluster_cells
        self.name = name
        self.prediction_column = prediction_column

    def fit(self, rows: Sequence[Row]) -> DensityClusterModel:
        if not rows:
            raise ModelError("cannot fit density clusters on no rows")
        dims = infer_space_dimensions(
            rows, self.feature_columns, bins=self.bins, method=self.binning
        )
        space = AttributeSpace(tuple(dims))
        counts: dict[tuple[int, ...], int] = {}
        for row in rows:
            cell = space.point_for_row(row)
            counts[cell] = counts.get(cell, 0) + 1
        dense = {
            cell for cell, n in counts.items() if n >= self.density_threshold
        }
        components = _connected_components(dense)
        components = [
            c for c in components if len(c) >= self.min_cluster_cells
        ]
        # Deterministic cluster numbering: by size descending, then lexical.
        components.sort(key=lambda c: (-len(c), sorted(c)))
        return DensityClusterModel(
            self.name,
            self.prediction_column,
            space,
            [frozenset(c) for c in components],
        )


def _connected_components(
    cells: set[tuple[int, ...]],
) -> list[set[tuple[int, ...]]]:
    """Axis-adjacent connected components of a cell set (BFS)."""
    unvisited = set(cells)
    components: list[set[tuple[int, ...]]] = []
    while unvisited:
        seed = unvisited.pop()
        component = {seed}
        queue = deque([seed])
        while queue:
            cell = queue.popleft()
            for axis in range(len(cell)):
                for delta in (-1, 1):
                    neighbor = (
                        cell[:axis] + (cell[axis] + delta,) + cell[axis + 1:]
                    )
                    if neighbor in unvisited:
                        unvisited.remove(neighbor)
                        component.add(neighbor)
                        queue.append(neighbor)
        components.append(component)
    return components
