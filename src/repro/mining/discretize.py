"""Discretization of continuous attributes.

The paper's naive-Bayes algorithm "assumes that all attributes are
discretized" (Section 3.2.1, citing Dougherty et al. for discretization
methods).  This module provides the two standard unsupervised methods —
equal-width and equal-frequency binning — and builds the corresponding
:class:`~repro.core.regions.BinnedDimension` objects used both by learners
and by envelope derivation.
"""

from __future__ import annotations

import enum
from collections.abc import Sequence

import numpy as np

from repro.core.regions import (
    BinnedDimension,
    CategoricalDimension,
    Dimension,
    OrdinalDimension,
)
from repro.core.predicates import Value
from repro.exceptions import SchemaError
from repro.mining.base import Row


class BinningMethod(enum.Enum):
    """Supported unsupervised discretization strategies."""

    EQUAL_WIDTH = "equal_width"
    EQUAL_FREQUENCY = "equal_frequency"


def equal_width_cuts(values: Sequence[float], bins: int) -> list[float]:
    """Cut points splitting ``[min, max]`` into ``bins`` equal-width bins.

    Degenerate inputs (constant columns) yield no cuts, i.e. a single bin.
    """
    if bins < 1:
        raise SchemaError(f"bins must be >= 1, got {bins}")
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise SchemaError("cannot discretize an empty column")
    low, high = float(array.min()), float(array.max())
    if low == high or bins == 1:
        return []
    edges = np.linspace(low, high, bins + 1)[1:-1]
    return sorted(set(float(e) for e in edges))


def equal_frequency_cuts(values: Sequence[float], bins: int) -> list[float]:
    """Cut points at quantile boundaries (duplicates collapsed)."""
    if bins < 1:
        raise SchemaError(f"bins must be >= 1, got {bins}")
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise SchemaError("cannot discretize an empty column")
    if bins == 1:
        return []
    quantiles = np.linspace(0.0, 1.0, bins + 1)[1:-1]
    edges = np.quantile(array, quantiles)
    low, high = float(array.min()), float(array.max())
    cuts = sorted(set(float(e) for e in edges))
    return [c for c in cuts if low < c < high]


def make_binned_dimension(
    name: str,
    values: Sequence[float],
    bins: int,
    method: BinningMethod = BinningMethod.EQUAL_FREQUENCY,
    bounded: bool = False,
) -> BinnedDimension:
    """Discretize ``values`` into a :class:`BinnedDimension`.

    With ``bounded`` the outer bins carry the observed min/max as finite
    edges (useful for clustering score bounds, where unbounded bins force
    infinitely loose distance bounds); otherwise the outer bins are open so
    the resulting envelopes stay sound for unseen out-of-range values.

    Columns with at most ``bins`` distinct values are cut at the midpoints
    between consecutive distinct values instead — one bin per value — so
    binary and small-ordinal numeric columns discretize losslessly (a
    quantile cut on a 0/1 column would otherwise collapse to a single bin).
    """
    distinct = sorted({float(v) for v in values})
    if 1 < len(distinct) <= bins:
        cuts = [
            (a + b) / 2.0 for a, b in zip(distinct, distinct[1:])
        ]
    elif method is BinningMethod.EQUAL_WIDTH:
        cuts = equal_width_cuts(values, bins)
    else:
        cuts = equal_frequency_cuts(values, bins)
    low: float | None = None
    high: float | None = None
    if bounded:
        array = np.asarray(values, dtype=float)
        data_low, data_high = float(array.min()), float(array.max())
        if not cuts:
            if data_low < data_high:
                low, high = data_low, data_high
        else:
            if data_low < cuts[0]:
                low = data_low
            if data_high > cuts[-1]:
                high = data_high
    return BinnedDimension(name, tuple(cuts), low=low, high=high)


def infer_dimension(
    name: str,
    values: Sequence[Value],
    bins: int = 8,
    method: BinningMethod = BinningMethod.EQUAL_FREQUENCY,
    max_ordinal_domain: int = 32,
    bounded: bool = False,
) -> Dimension:
    """Build an appropriate dimension from a raw training column.

    * string-valued columns become :class:`CategoricalDimension`,
    * integer columns with a small domain become :class:`OrdinalDimension`
      (exact member-per-value, the natural choice for attributes like
      Balance-Scale's 1..5 scales),
    * everything else is binned into a :class:`BinnedDimension`.
    """
    if not values:
        raise SchemaError(f"cannot infer a dimension for empty column {name!r}")
    if any(isinstance(v, str) for v in values):
        if not all(isinstance(v, str) for v in values):
            raise SchemaError(f"column {name!r} mixes strings and numbers")
        domain = tuple(sorted(set(values)))
        return CategoricalDimension(name, domain)
    distinct = sorted(set(values))
    all_int = all(isinstance(v, int) for v in values)
    if all_int and len(distinct) <= max_ordinal_domain:
        return OrdinalDimension(name, tuple(distinct))
    return make_binned_dimension(
        name, [float(v) for v in values], bins, method=method, bounded=bounded
    )


def infer_space_dimensions(
    rows: Sequence[Row],
    columns: Sequence[str],
    bins: int = 8,
    method: BinningMethod = BinningMethod.EQUAL_FREQUENCY,
    bounded: bool = False,
    max_ordinal_domain: int = 32,
) -> list[Dimension]:
    """Infer one dimension per feature column from training rows."""
    dimensions = []
    for column in columns:
        values = [row[column] for row in rows]
        dimensions.append(
            infer_dimension(
                column,
                values,
                bins=bins,
                method=method,
                bounded=bounded,
                max_ordinal_domain=max_ordinal_domain,
            )
        )
    return dimensions
