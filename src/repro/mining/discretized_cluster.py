"""Clustering over discretized attributes (the Analysis Server setting).

The paper's mining models consume *discretized* source columns — the DMX
example in Section 2.2 declares ``Purchases DOUBLE DISCRETIZED()`` — so the
deployed cluster model assigns a row by first mapping each attribute into
its bin and then scoring the bin's representative value.  Under those
semantics the per-(cluster, dimension, member) score is a single point and
the Section 3.3 reduction to naive Bayes is *exact*, which is what makes
the paper's clustering envelopes tight.

:class:`DiscretizedClusterModel` wraps a trained centroid or mixture model
with an attribute space and implements exactly that prediction rule.  The
library also supports envelopes for the *raw* (undiscretized) assignment
rule via interval score tables — see :mod:`repro.core.cluster_envelope` —
as a sound extension beyond the paper's setting.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.columns import ColumnBatch
from repro.core.predicates import Value
from repro.core.regions import AttributeSpace, BinnedDimension
from repro.exceptions import ModelError
from repro.mining.base import MiningModel, ModelKind, Row
from repro.mining.gmm import GaussianMixtureModel
from repro.mining.kmeans import KMeansModel


class DiscretizedClusterModel(MiningModel):
    """A cluster model applied to discretized attribute values.

    ``predict`` maps the row into its grid cell and assigns the cell's
    representative point with the base model's rule; all rows in one cell
    therefore share a prediction, exactly matching the grid the envelope
    algorithm searches.
    """

    def __init__(
        self,
        base: KMeansModel | GaussianMixtureModel,
        space: AttributeSpace,
        name: str | None = None,
    ) -> None:
        names = tuple(d.name for d in space.dimensions)
        if names != base.feature_columns:
            raise ModelError(
                f"space dimensions {names} do not match the base model's "
                f"features {base.feature_columns}"
            )
        for dim in space.dimensions:
            if not isinstance(dim, BinnedDimension):
                raise ModelError(
                    "discretized cluster models need binned dimensions; "
                    f"{dim.name!r} is {type(dim).__name__}"
                )
        self.base = base
        self.space = space
        self.name = name or f"{base.name}_discretized"
        self.prediction_column = base.prediction_column

    @property
    def kind(self) -> ModelKind:
        return self.base.kind

    @property
    def feature_columns(self) -> tuple[str, ...]:
        return self.base.feature_columns

    @property
    def class_labels(self) -> tuple[Value, ...]:
        return self.base.class_labels

    def representative_point(self, cell: tuple[int, ...]) -> np.ndarray:
        """The raw-space point scored for rows falling in ``cell``."""
        return np.array(
            [
                dim.representative(member)
                for dim, member in zip(self.space.dimensions, cell)
            ],
            dtype=float,
        )

    def predict_cell(self, cell: tuple[int, ...]) -> int:
        """Cluster index assigned to every row in one grid cell."""
        return self.base.assign(self.representative_point(cell))

    def predict(self, row: Row) -> Value:
        self._require_columns(row)
        cell = self.space.point_for_row(row)
        return self.class_labels[self.predict_cell(cell)]

    def predict_batch(self, batch: ColumnBatch) -> np.ndarray:
        """Batch prediction: vectorized binning, then one base assignment.

        Each row maps to its cell's representative point (vectorized per
        dimension) and the base model's ``assign_batch`` scores all
        representatives at once with the same arithmetic as scalar
        ``assign``.
        """
        if len(batch) == 0:
            return np.empty(0, dtype=object)
        missing = [c for c in self.feature_columns if not batch.has_column(c)]
        if missing:
            raise ModelError(
                f"model {self.name!r} requires columns {missing} "
                "absent from the row"
            )
        dims = self.space.dimensions
        points = np.empty((len(batch), len(dims)), dtype=float)
        for j, dim in enumerate(dims):
            members = dim.members_for_values(batch.column(dim.name))
            representatives = np.fromiter(
                (dim.representative(m) for m in range(dim.size)),
                dtype=float,
                count=dim.size,
            )
            points[:, j] = representatives[members]
        winners = self.base.assign_batch(points)
        labels = np.empty(len(self.class_labels), dtype=object)
        labels[:] = self.class_labels
        return labels[winners]

    def to_dict(self) -> dict[str, Any]:
        from repro.mining.interchange import dimension_to_dict

        return {
            "kind": "discretized_cluster",
            "name": self.name,
            "base": self.base.to_dict(),
            "dimensions": [
                dimension_to_dict(d) for d in self.space.dimensions
            ],
        }
