"""Fuzzy c-means clustering — the paper's second "ongoing work" item.

Section 3.3 names fuzzy clusters alongside hierarchical ones as ongoing
work.  Fuzzy c-means maintains soft memberships ``u_{ik}`` during training,
but a *mining predicate* needs a single predicted cluster per row; the
standard hardening rule is ``argmax_k u_{ik}``, and because FCM memberships
are a monotone function of centroid distance, the hardened assignment is
exactly *nearest centroid*.  The trained model is therefore exposed as a
:class:`~repro.mining.kmeans.KMeansModel` (optionally discretized), and the
whole Section 3.3 envelope machinery applies unchanged — which is the
observation that makes fuzzy clusters easy to support.

The learner also exposes :meth:`memberships` for callers who want the soft
assignment matrix itself.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import ModelError
from repro.mining.base import Row
from repro.mining.kmeans import KMeansModel


class FuzzyCMeansLearner:
    """Fuzzy c-means (Bezdek) with inverse-variance feature scaling."""

    def __init__(
        self,
        feature_columns: Sequence[str],
        n_clusters: int,
        fuzziness: float = 2.0,
        max_iterations: int = 100,
        tolerance: float = 1e-5,
        seed: int = 0,
        name: str = "fuzzy_cmeans",
        prediction_column: str = "cluster",
    ) -> None:
        if n_clusters < 1:
            raise ModelError("n_clusters must be >= 1")
        if fuzziness <= 1.0:
            raise ModelError("fuzziness must be > 1 (1 is hard k-means)")
        self.feature_columns = tuple(feature_columns)
        self.n_clusters = n_clusters
        self.fuzziness = fuzziness
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.seed = seed
        self.name = name
        self.prediction_column = prediction_column
        self._last_memberships: np.ndarray | None = None
        self._scale: np.ndarray | None = None

    def fit(self, rows: Sequence[Row]) -> KMeansModel:
        if len(rows) < self.n_clusters:
            raise ModelError(
                f"need at least {self.n_clusters} rows to fit "
                f"{self.n_clusters} fuzzy clusters"
            )
        data = np.array(
            [[float(row[c]) for c in self.feature_columns] for row in rows],
            dtype=float,
        )
        variance = data.var(axis=0)
        variance[variance == 0] = 1.0
        scale = 1.0 / variance
        self._scale = scale

        rng = np.random.default_rng(self.seed)
        memberships = rng.dirichlet(
            np.ones(self.n_clusters), size=len(data)
        )
        # With squared distances D, the FCM update is
        # u_ik proportional to D_ik^(-1/(m-1)).
        power = 1.0 / (self.fuzziness - 1.0)
        centroids = np.zeros((self.n_clusters, data.shape[1]))
        for _ in range(self.max_iterations):
            weights = memberships**self.fuzziness
            centroids = (weights.T @ data) / weights.sum(axis=0)[:, None]
            deltas = data[:, None, :] - centroids[None, :, :]
            distances = (scale * deltas * deltas).sum(axis=2)
            distances = np.maximum(distances, 1e-12)
            inverted = distances ** (-power)
            new_memberships = inverted / inverted.sum(axis=1, keepdims=True)
            shift = float(np.abs(new_memberships - memberships).max())
            memberships = new_memberships
            if shift < self.tolerance:
                break
        self._last_memberships = memberships
        weights_matrix = np.tile(scale, (self.n_clusters, 1))
        return KMeansModel(
            self.name,
            self.prediction_column,
            self.feature_columns,
            centroids,
            weights_matrix,
        )

    def memberships(self) -> np.ndarray:
        """Soft membership matrix of the last ``fit`` (rows x clusters)."""
        if self._last_memberships is None:
            raise ModelError("fit must be called before memberships()")
        return self._last_memberships
