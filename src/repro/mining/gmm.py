"""Model-based clustering: diagonal-covariance Gaussian mixtures via EM.

Paper Section 3.3: model-based clustering assigns a point to
``argmax_k tau_k * f_k(x | theta_k)``; when ``f_k`` treats dimensions
independently (diagonal Gaussians), the log of that criterion is additive
per dimension — the same shape as naive Bayes' Equation 2 — so the top-down
envelope algorithm applies through the adapter in
:mod:`repro.core.cluster_envelope`.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.core.columns import ColumnBatch
from repro.core.predicates import Value
from repro.exceptions import ModelError
from repro.mining.base import MiningModel, ModelKind, Row
from repro.mining.kmeans import KMeansLearner

#: Floor on variances to keep EM numerically stable.
_MIN_VARIANCE = 1e-6


class GaussianMixtureModel(MiningModel):
    """Trained diagonal Gaussian mixture.

    * :attr:`mixing` — shape ``(K,)``, the ``tau_k`` (sums to 1),
    * :attr:`means` / :attr:`variances` — shape ``(K, n)``.
    """

    def __init__(
        self,
        name: str,
        prediction_column: str,
        feature_columns: Sequence[str],
        mixing: np.ndarray,
        means: np.ndarray,
        variances: np.ndarray,
        labels: Sequence[Value] | None = None,
    ) -> None:
        mixing = np.asarray(mixing, dtype=float)
        means = np.asarray(means, dtype=float)
        variances = np.asarray(variances, dtype=float)
        if means.ndim != 2 or variances.shape != means.shape:
            raise ModelError("means/variances must be matching (K, n) arrays")
        if mixing.shape != (means.shape[0],):
            raise ModelError("mixing must have one weight per component")
        if not math.isclose(float(mixing.sum()), 1.0, rel_tol=1e-6):
            raise ModelError("mixing weights must sum to 1")
        if np.any(variances <= 0):
            raise ModelError("variances must be positive")
        if means.shape[1] != len(feature_columns):
            raise ModelError("component width must match feature columns")
        self.name = name
        self.prediction_column = prediction_column
        self._feature_columns = tuple(feature_columns)
        self.mixing = mixing
        self.means = means
        self.variances = variances
        if labels is None:
            labels = [f"cluster_{k}" for k in range(means.shape[0])]
        if len(labels) != means.shape[0]:
            raise ModelError("labels must match the number of components")
        self._class_labels = tuple(labels)

    @property
    def kind(self) -> ModelKind:
        return ModelKind.GMM

    @property
    def feature_columns(self) -> tuple[str, ...]:
        return self._feature_columns

    @property
    def class_labels(self) -> tuple[Value, ...]:
        return self._class_labels

    @property
    def n_components(self) -> int:
        return self.means.shape[0]

    def component_log_scores(self, point: np.ndarray) -> np.ndarray:
        """``log tau_k + sum_d log N(x_d; mu_dk, var_dk)`` per component."""
        deltas = point[None, :] - self.means
        log_density = -0.5 * (
            np.log(2.0 * np.pi * self.variances)
            + deltas * deltas / self.variances
        ).sum(axis=1)
        return np.log(self.mixing) + log_density

    def component_log_scores_batch(self, points: np.ndarray) -> np.ndarray:
        """Per-component log scores, shape ``(len(points), K)``.

        The inner per-dimension sum runs over the last contiguous axis —
        the same reduction :meth:`component_log_scores` performs — so each
        row matches the scalar score vector bit for bit.
        """
        deltas = points[:, None, :] - self.means[None, :, :]
        log_density = -0.5 * (
            np.log(2.0 * np.pi * self.variances)[None, :, :]
            + deltas * deltas / self.variances[None, :, :]
        ).sum(axis=2)
        return np.log(self.mixing)[None, :] + log_density

    def assign(self, point: np.ndarray) -> int:
        return int(np.argmax(self.component_log_scores(point)))

    def assign_batch(self, points: np.ndarray) -> np.ndarray:
        """Most likely component per point (lowest index wins ties)."""
        return self.component_log_scores_batch(points).argmax(axis=1)

    def predict(self, row: Row) -> Value:
        self._require_columns(row)
        point = np.array(
            [float(row[c]) for c in self._feature_columns], dtype=float
        )
        return self._class_labels[self.assign(point)]

    def predict_batch(self, batch: ColumnBatch) -> np.ndarray:
        """Batch prediction as one likelihood-matrix computation."""
        if len(batch) == 0:
            return np.empty(0, dtype=object)
        missing = [
            c for c in self._feature_columns if not batch.has_column(c)
        ]
        if missing:
            raise ModelError(
                f"model {self.name!r} requires columns {missing} "
                "absent from the row"
            )
        winners = self.assign_batch(batch.matrix(self._feature_columns))
        labels = np.empty(self.n_components, dtype=object)
        labels[:] = self._class_labels
        return labels[winners]

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind.value,
            "name": self.name,
            "prediction_column": self.prediction_column,
            "feature_columns": list(self._feature_columns),
            "labels": list(self._class_labels),
            "mixing": self.mixing.tolist(),
            "means": self.means.tolist(),
            "variances": self.variances.tolist(),
        }


class GaussianMixtureLearner:
    """EM for diagonal Gaussian mixtures, initialized from k-means."""

    def __init__(
        self,
        feature_columns: Sequence[str],
        n_components: int,
        max_iterations: int = 50,
        tolerance: float = 1e-4,
        seed: int = 0,
        name: str = "gmm",
        prediction_column: str = "cluster",
    ) -> None:
        if n_components < 1:
            raise ModelError("n_components must be >= 1")
        self.feature_columns = tuple(feature_columns)
        self.n_components = n_components
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.seed = seed
        self.name = name
        self.prediction_column = prediction_column

    def fit(self, rows: Sequence[Row]) -> GaussianMixtureModel:
        if len(rows) < self.n_components:
            raise ModelError(
                f"need at least {self.n_components} rows to fit "
                f"{self.n_components} components"
            )
        data = np.array(
            [[float(row[c]) for c in self.feature_columns] for row in rows],
            dtype=float,
        )
        kmeans = KMeansLearner(
            self.feature_columns,
            self.n_components,
            seed=self.seed,
            weighting="uniform",
        ).fit(rows)
        means = kmeans.centroids.copy()
        global_variance = np.maximum(data.var(axis=0), _MIN_VARIANCE)
        variances = np.tile(global_variance, (self.n_components, 1))
        mixing = np.full(self.n_components, 1.0 / self.n_components)

        previous = -np.inf
        for _ in range(self.max_iterations):
            # E step: responsibilities via log-sum-exp.
            deltas = data[:, None, :] - means[None, :, :]
            log_density = -0.5 * (
                np.log(2.0 * np.pi * variances)[None, :, :]
                + deltas * deltas / variances[None, :, :]
            ).sum(axis=2)
            log_joint = np.log(mixing)[None, :] + log_density
            peak = log_joint.max(axis=1, keepdims=True)
            likelihood = np.exp(log_joint - peak)
            total = likelihood.sum(axis=1, keepdims=True)
            responsibilities = likelihood / total
            log_likelihood = float((np.log(total) + peak).sum())

            # M step.
            mass = responsibilities.sum(axis=0)
            mass = np.maximum(mass, 1e-12)
            mixing = mass / mass.sum()
            means = (responsibilities.T @ data) / mass[:, None]
            deltas = data[:, None, :] - means[None, :, :]
            variances = (
                (responsibilities[:, :, None] * deltas * deltas).sum(axis=0)
                / mass[:, None]
            )
            variances = np.maximum(variances, _MIN_VARIANCE)

            if abs(log_likelihood - previous) < self.tolerance:
                break
            previous = log_likelihood

        return GaussianMixtureModel(
            self.name,
            self.prediction_column,
            self.feature_columns,
            mixing,
            means,
            variances,
        )
