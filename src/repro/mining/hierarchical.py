"""Agglomerative (hierarchical) clustering — the paper's "ongoing work".

Section 3.3: "Hierarchical and fuzzy clusters are a subject of our ongoing
work."  For the *assignment* semantics that matter to mining predicates,
cutting a dendrogram at K clusters yields a partitional model: new points
are assigned to the nearest cluster centroid.  That makes the cut
hierarchy exactly a centroid-based model, so every envelope path built for
k-means (Section 3.3's reduction, discretized or interval-bounded) applies
unchanged.

:class:`AgglomerativeClusterLearner` implements average-linkage
agglomeration (vectorized Lance-Williams update) and returns a
:class:`~repro.mining.kmeans.KMeansModel` whose centroids are the cut
clusters' means — plus the merge history for callers who want the
dendrogram itself.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ModelError
from repro.mining.base import Row
from repro.mining.kmeans import KMeansModel


@dataclass(frozen=True)
class MergeStep:
    """One dendrogram merge: clusters ``left`` and ``right`` -> ``merged``.

    Cluster ids: 0..n-1 are the leaves (input points); merge ``i`` creates
    id ``n + i`` (the scipy linkage convention).
    """

    left: int
    right: int
    distance: float
    size: int
    merged: int


class AgglomerativeClusterLearner:
    """Average-linkage agglomerative clustering cut at ``n_clusters``.

    ``max_points`` caps the points fed to the O(n^2) agglomeration: larger
    training sets are deterministically subsampled first (standard practice
    for hierarchical methods), and the returned centroid model assigns any
    point by nearest centroid regardless.
    """

    def __init__(
        self,
        feature_columns: Sequence[str],
        n_clusters: int,
        max_points: int = 600,
        weighting: str = "inverse_variance",
        name: str = "agglomerative",
        prediction_column: str = "cluster",
    ) -> None:
        if n_clusters < 1:
            raise ModelError("n_clusters must be >= 1")
        if max_points < n_clusters:
            raise ModelError("max_points must be >= n_clusters")
        if weighting not in ("inverse_variance", "uniform"):
            raise ModelError(f"unknown weighting {weighting!r}")
        self.feature_columns = tuple(feature_columns)
        self.n_clusters = n_clusters
        self.max_points = max_points
        self.weighting = weighting
        self.name = name
        self.prediction_column = prediction_column
        #: Populated by :meth:`fit`.
        self.merge_history: tuple[MergeStep, ...] = ()

    def fit(self, rows: Sequence[Row]) -> KMeansModel:
        if len(rows) < self.n_clusters:
            raise ModelError(
                f"need at least {self.n_clusters} rows to cut "
                f"{self.n_clusters} clusters"
            )
        data = np.array(
            [[float(row[c]) for c in self.feature_columns] for row in rows],
            dtype=float,
        )
        if len(data) > self.max_points:
            step = len(data) / self.max_points
            picks = (np.arange(self.max_points) * step).astype(int)
            data = data[picks]
        if self.weighting == "inverse_variance":
            variance = data.var(axis=0)
            variance[variance == 0] = 1.0
            scale = 1.0 / variance
        else:
            scale = np.ones(data.shape[1])

        n = len(data)
        # Active cluster bookkeeping: members as index lists, centroids,
        # sizes.  Average linkage over the weighted Euclidean metric.
        centroids = data.copy()
        sizes = np.ones(n)
        active = list(range(n))
        ids = list(range(n))
        history: list[MergeStep] = []
        # Pairwise average-linkage distances between centroids; with
        # average linkage over squared distances the Lance-Williams update
        # reduces to a size-weighted centroid merge, which is what we use.
        while len(active) > self.n_clusters:
            stacked = centroids[active]
            deltas = stacked[:, None, :] - stacked[None, :, :]
            distances = (scale * deltas * deltas).sum(axis=2)
            np.fill_diagonal(distances, np.inf)
            flat = int(distances.argmin())
            i, j = divmod(flat, len(active))
            if i > j:
                i, j = j, i
            a, b = active[i], active[j]
            merged_size = sizes[a] + sizes[b]
            merged_centroid = (
                sizes[a] * centroids[a] + sizes[b] * centroids[b]
            ) / merged_size
            centroids = np.vstack([centroids, merged_centroid])
            sizes = np.append(sizes, merged_size)
            merged_id = n + len(history)
            history.append(
                MergeStep(
                    left=ids[i],
                    right=ids[j],
                    distance=float(distances[i, j]),
                    size=int(merged_size),
                    merged=merged_id,
                )
            )
            new_index = len(centroids) - 1
            del active[j], ids[j]
            del active[i], ids[i]
            active.append(new_index)
            ids.append(merged_id)
        self.merge_history = tuple(history)
        final_centroids = centroids[active]
        weights = np.tile(scale, (self.n_clusters, 1))
        # Order clusters by size descending for stable labels.
        order = np.argsort(-sizes[active], kind="stable")
        return KMeansModel(
            self.name,
            self.prediction_column,
            self.feature_columns,
            final_centroids[order],
            weights,
        )
