"""Model interchange: serialize trained models to JSON and back.

The paper's systems import/export trained models through PMML or vendor
formats (Section 1, Section 2.3: DB2's ``DM_impClasFile``).  JSON plays that
interchange role here: every model's :meth:`to_dict` output round-trips
through :func:`model_from_dict` / :func:`load_model`, so envelopes can be
derived for models trained elsewhere, exactly as IM Scoring applies imported
classifiers.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.predicates import (
    Comparison,
    InSet,
    Interval,
    Not,
    Op,
    Predicate,
)
from repro.core.regions import (
    AttributeSpace,
    BinnedDimension,
    CategoricalDimension,
    Dimension,
    OrdinalDimension,
)
from repro.exceptions import ModelError
from repro.mining.base import MiningModel, ModelKind
from repro.mining.decision_tree import (
    CategoryTest,
    DecisionTreeModel,
    Internal,
    Leaf,
    Node,
    NumericTest,
)
from repro.mining.density import DensityClusterModel
from repro.mining.gmm import GaussianMixtureModel
from repro.mining.kmeans import KMeansModel
from repro.mining.naive_bayes import NaiveBayesModel
from repro.mining.rules import Rule, RuleSetModel


def dimension_to_dict(dim: Dimension) -> dict[str, Any]:
    """Serialize one attribute-space dimension."""
    if isinstance(dim, CategoricalDimension):
        return {"type": "categorical", "name": dim.name, "values": list(dim.values)}
    if isinstance(dim, OrdinalDimension):
        return {"type": "ordinal", "name": dim.name, "values": list(dim.values)}
    if isinstance(dim, BinnedDimension):
        return {
            "type": "binned",
            "name": dim.name,
            "cuts": list(dim.cuts),
            "low": dim.low,
            "high": dim.high,
        }
    raise ModelError(f"cannot serialize dimension {dim!r}")


def dimension_from_dict(payload: dict[str, Any]) -> Dimension:
    """Inverse of :func:`dimension_to_dict`."""
    kind = payload.get("type")
    if kind == "categorical":
        return CategoricalDimension(payload["name"], tuple(payload["values"]))
    if kind == "ordinal":
        return OrdinalDimension(payload["name"], tuple(payload["values"]))
    if kind == "binned":
        return BinnedDimension(
            payload["name"],
            tuple(payload["cuts"]),
            low=payload.get("low"),
            high=payload.get("high"),
        )
    raise ModelError(f"unknown dimension type {kind!r}")


def predicate_to_dict(pred: Predicate) -> dict[str, Any]:
    """Serialize the atom fragment used in rule bodies."""
    if isinstance(pred, Comparison):
        return {
            "type": "comparison",
            "column": pred.column,
            "op": pred.op.value,
            "value": pred.value,
        }
    if isinstance(pred, InSet):
        return {"type": "in", "column": pred.column, "values": list(pred.values)}
    if isinstance(pred, Interval):
        return {
            "type": "interval",
            "column": pred.column,
            "low": pred.low,
            "high": pred.high,
            "low_closed": pred.low_closed,
            "high_closed": pred.high_closed,
        }
    if isinstance(pred, Not) and isinstance(pred.operand, InSet):
        inner = predicate_to_dict(pred.operand)
        return {"type": "not", "operand": inner}
    raise ModelError(f"cannot serialize predicate {pred!r}")


def predicate_from_dict(payload: dict[str, Any]) -> Predicate:
    """Inverse of :func:`predicate_to_dict`."""
    kind = payload.get("type")
    if kind == "comparison":
        return Comparison(payload["column"], Op(payload["op"]), payload["value"])
    if kind == "in":
        return InSet(payload["column"], tuple(payload["values"]))
    if kind == "interval":
        return Interval(
            payload["column"],
            payload.get("low"),
            payload.get("high"),
            low_closed=payload.get("low_closed", True),
            high_closed=payload.get("high_closed", True),
        )
    if kind == "not":
        return Not(predicate_from_dict(payload["operand"]))
    raise ModelError(f"unknown predicate type {kind!r}")


def _tree_node_from_dict(payload: dict[str, Any]) -> Node:
    if payload["leaf"]:
        return Leaf(
            payload["label"],
            tuple((label, count) for label, count in payload["counts"]),
        )
    test_payload = payload["test"]
    if test_payload["type"] == "numeric":
        test: NumericTest | CategoryTest = NumericTest(
            test_payload["column"], test_payload["threshold"]
        )
    else:
        test = CategoryTest(test_payload["column"], test_payload["value"])
    return Internal(
        test,
        _tree_node_from_dict(payload["left"]),
        _tree_node_from_dict(payload["right"]),
    )


def model_from_dict(payload: dict[str, Any]) -> MiningModel:
    """Reconstruct any serialized model from its :meth:`to_dict` payload."""
    if payload.get("kind") == "regression_tree":
        from repro.mining.regression_tree import (
            RegressionInternal,
            RegressionLeaf,
            RegressionTreeModel,
        )

        def regression_node(entry: dict[str, Any]):
            if entry["leaf"]:
                return RegressionLeaf(entry["value"], entry["count"])
            test_payload = entry["test"]
            if test_payload["type"] == "numeric":
                test: NumericTest | CategoryTest = NumericTest(
                    test_payload["column"], test_payload["threshold"]
                )
            else:
                test = CategoryTest(
                    test_payload["column"], test_payload["value"]
                )
            return RegressionInternal(
                test,
                regression_node(entry["left"]),
                regression_node(entry["right"]),
            )

        return RegressionTreeModel(
            payload["name"],
            payload["prediction_column"],
            tuple(payload["feature_columns"]),
            regression_node(payload["root"]),
        )
    if payload.get("kind") == "discretized_cluster":
        from repro.mining.discretized_cluster import DiscretizedClusterModel

        base = model_from_dict(payload["base"])
        space = AttributeSpace(
            tuple(dimension_from_dict(d) for d in payload["dimensions"])
        )
        if not isinstance(base, (KMeansModel, GaussianMixtureModel)):
            raise ModelError(
                "discretized_cluster payload wraps an unsupported base model"
            )
        return DiscretizedClusterModel(base, space, name=payload["name"])
    try:
        kind = ModelKind(payload["kind"])
    except (KeyError, ValueError) as exc:
        raise ModelError(f"payload has no valid model kind: {exc}") from exc
    if kind is ModelKind.DECISION_TREE:
        return DecisionTreeModel(
            payload["name"],
            payload["prediction_column"],
            tuple(payload["feature_columns"]),
            _tree_node_from_dict(payload["root"]),
        )
    if kind is ModelKind.NAIVE_BAYES:
        space = AttributeSpace(
            tuple(dimension_from_dict(d) for d in payload["dimensions"])
        )
        return NaiveBayesModel(
            payload["name"],
            payload["prediction_column"],
            space,
            tuple(payload["class_labels"]),
            np.asarray(payload["log_priors"], dtype=float),
            [np.asarray(t, dtype=float) for t in payload["log_conditionals"]],
        )
    if kind is ModelKind.RULES:
        rules = tuple(
            Rule(
                tuple(predicate_from_dict(a) for a in entry["body"]),
                entry["head"],
            )
            for entry in payload["rules"]
        )
        return RuleSetModel(
            payload["name"],
            payload["prediction_column"],
            tuple(payload["feature_columns"]),
            rules,
            payload["default_label"],
        )
    if kind is ModelKind.KMEANS:
        return KMeansModel(
            payload["name"],
            payload["prediction_column"],
            tuple(payload["feature_columns"]),
            np.asarray(payload["centroids"], dtype=float),
            np.asarray(payload["weights"], dtype=float),
            labels=tuple(payload["labels"]),
        )
    if kind is ModelKind.GMM:
        return GaussianMixtureModel(
            payload["name"],
            payload["prediction_column"],
            tuple(payload["feature_columns"]),
            np.asarray(payload["mixing"], dtype=float),
            np.asarray(payload["means"], dtype=float),
            np.asarray(payload["variances"], dtype=float),
            labels=tuple(payload["labels"]),
        )
    if kind is ModelKind.DENSITY:
        space = AttributeSpace(
            tuple(dimension_from_dict(d) for d in payload["dimensions"])
        )
        clusters = [
            frozenset(tuple(cell) for cell in cells)
            for cells in payload["clusters"]
        ]
        return DensityClusterModel(
            payload["name"],
            payload["prediction_column"],
            space,
            clusters,
            labels=tuple(payload["labels"]),
        )
    raise ModelError(f"no loader registered for model kind {kind}")


def save_model(model: MiningModel, path: str | Path) -> None:
    """Write a model to a JSON file."""
    Path(path).write_text(json.dumps(model.to_dict(), indent=2))


def load_model(path: str | Path) -> MiningModel:
    """Read a model previously written by :func:`save_model`."""
    payload = json.loads(Path(path).read_text())
    return model_from_dict(payload)
