"""Centroid-based clustering with weighted Euclidean assignment.

Paper Section 3.3: each cluster has a centroid ``(c_1k .. c_nk)`` and
per-dimension weights ``(w_1k .. w_nk)``; a point joins the cluster
minimizing ``sum_d w_dk (x_d - c_dk)^2``.  That assignment rule has the same
additive per-dimension structure as naive Bayes (Equation 2), which is what
lets :mod:`repro.core.cluster_envelope` reuse the top-down envelope search.

The learner is seeded k-means++ with Lloyd iterations.  Weights default to
inverse feature variance (a common normalization that also exercises the
*weighted* variant of the paper's formula); uniform weights are available.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.core.columns import ColumnBatch
from repro.core.predicates import Value
from repro.exceptions import ModelError
from repro.mining.base import MiningModel, ModelKind, Row


class KMeansModel(MiningModel):
    """Trained centroid-based clustering model.

    * :attr:`centroids` — shape ``(K, n)``,
    * :attr:`weights` — shape ``(K, n)``, the ``w_dk`` of Section 3.3.
    """

    def __init__(
        self,
        name: str,
        prediction_column: str,
        feature_columns: Sequence[str],
        centroids: np.ndarray,
        weights: np.ndarray,
        labels: Sequence[Value] | None = None,
    ) -> None:
        centroids = np.asarray(centroids, dtype=float)
        weights = np.asarray(weights, dtype=float)
        if centroids.ndim != 2:
            raise ModelError("centroids must be a (K, n) array")
        if weights.shape != centroids.shape:
            raise ModelError("weights must match centroids in shape")
        if np.any(weights < 0):
            raise ModelError("weights must be non-negative")
        if centroids.shape[1] != len(feature_columns):
            raise ModelError("centroid width must match feature columns")
        self.name = name
        self.prediction_column = prediction_column
        self._feature_columns = tuple(feature_columns)
        self.centroids = centroids
        self.weights = weights
        if labels is None:
            labels = [f"cluster_{k}" for k in range(centroids.shape[0])]
        if len(labels) != centroids.shape[0]:
            raise ModelError("labels must match the number of centroids")
        self._class_labels = tuple(labels)

    @property
    def kind(self) -> ModelKind:
        return ModelKind.KMEANS

    @property
    def feature_columns(self) -> tuple[str, ...]:
        return self._feature_columns

    @property
    def class_labels(self) -> tuple[Value, ...]:
        return self._class_labels

    @property
    def n_clusters(self) -> int:
        return self.centroids.shape[0]

    def distances(self, point: np.ndarray) -> np.ndarray:
        """Weighted squared distances from ``point`` to every centroid."""
        deltas = point[None, :] - self.centroids
        return (self.weights * deltas * deltas).sum(axis=1)

    def assign(self, point: np.ndarray) -> int:
        """Index of the closest centroid (lowest index wins ties)."""
        return int(np.argmin(self.distances(point)))

    def distances_batch(self, points: np.ndarray) -> np.ndarray:
        """Weighted squared distances, shape ``(len(points), K)``.

        The reduction runs over the last (contiguous) axis exactly like
        :meth:`distances`, so each row of the result is bit-identical to
        the scalar distance vector for that point.
        """
        deltas = points[:, None, :] - self.centroids[None, :, :]
        return (self.weights[None, :, :] * deltas * deltas).sum(axis=2)

    def assign_batch(self, points: np.ndarray) -> np.ndarray:
        """Closest-centroid index per point (lowest index wins ties)."""
        return self.distances_batch(points).argmin(axis=1)

    def predict(self, row: Row) -> Value:
        self._require_columns(row)
        point = np.array(
            [float(row[c]) for c in self._feature_columns], dtype=float
        )
        return self._class_labels[self.assign(point)]

    def predict_batch(self, batch: ColumnBatch) -> np.ndarray:
        """Batch prediction as one distance-matrix computation."""
        if len(batch) == 0:
            return np.empty(0, dtype=object)
        missing = [
            c for c in self._feature_columns if not batch.has_column(c)
        ]
        if missing:
            raise ModelError(
                f"model {self.name!r} requires columns {missing} "
                "absent from the row"
            )
        winners = self.assign_batch(batch.matrix(self._feature_columns))
        labels = np.empty(self.n_clusters, dtype=object)
        labels[:] = self._class_labels
        return labels[winners]

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind.value,
            "name": self.name,
            "prediction_column": self.prediction_column,
            "feature_columns": list(self._feature_columns),
            "labels": list(self._class_labels),
            "centroids": self.centroids.tolist(),
            "weights": self.weights.tolist(),
        }


class KMeansLearner:
    """k-means++ initialization followed by Lloyd iterations."""

    def __init__(
        self,
        feature_columns: Sequence[str],
        n_clusters: int,
        max_iterations: int = 50,
        seed: int = 0,
        weighting: str = "inverse_variance",
        name: str = "kmeans",
        prediction_column: str = "cluster",
    ) -> None:
        if n_clusters < 1:
            raise ModelError("n_clusters must be >= 1")
        if weighting not in ("inverse_variance", "uniform", "kurtosis"):
            raise ModelError(f"unknown weighting {weighting!r}")
        self.feature_columns = tuple(feature_columns)
        self.n_clusters = n_clusters
        self.max_iterations = max_iterations
        self.seed = seed
        self.weighting = weighting
        self.name = name
        self.prediction_column = prediction_column

    def fit(self, rows: Sequence[Row]) -> KMeansModel:
        if len(rows) < self.n_clusters:
            raise ModelError(
                f"need at least {self.n_clusters} rows to fit "
                f"{self.n_clusters} clusters"
            )
        data = np.array(
            [[float(row[c]) for c in self.feature_columns] for row in rows],
            dtype=float,
        )
        variance = data.var(axis=0)
        variance[variance == 0] = 1.0
        if self.weighting == "inverse_variance":
            base_weights = 1.0 / variance
        elif self.weighting == "kurtosis":
            # Cluster-tendency weighting (projection-pursuit style): a
            # dimension holding well-separated groups is platykurtic
            # (kurtosis < 3), while unimodal noise sits near 3.  Weighting
            # by the kurtosis deficit concentrates the distance metric on
            # the dimensions that actually carry cluster structure — the
            # effect full EM obtains through per-cluster variances.
            centered = data - data.mean(axis=0)
            fourth = (centered**4).mean(axis=0)
            kurtosis = fourth / (variance**2)
            tendency = np.maximum(3.0 - kurtosis, 0.0)
            # Relative thresholding: clipped unimodal noise is mildly
            # platykurtic too, so only dimensions within 2x of the
            # strongest cluster signal keep full weight.
            peak = float(tendency.max())
            if peak > 0:
                tendency = np.where(
                    tendency >= 0.5 * peak, tendency, 0.05 * peak
                )
            else:
                tendency = np.ones_like(tendency)
            base_weights = tendency / variance
        else:
            base_weights = np.ones(data.shape[1])
        rng = np.random.default_rng(self.seed)
        centroids = self._kmeans_plus_plus(data, base_weights, rng)
        assignment = np.zeros(len(data), dtype=int)
        for _ in range(self.max_iterations):
            deltas = data[:, None, :] - centroids[None, :, :]
            distances = (base_weights * deltas * deltas).sum(axis=2)
            new_assignment = distances.argmin(axis=1)
            if np.array_equal(new_assignment, assignment):
                assignment = new_assignment
                break
            assignment = new_assignment
            for k in range(self.n_clusters):
                members = data[assignment == k]
                if len(members):
                    centroids[k] = members.mean(axis=0)
        weights = np.tile(base_weights, (self.n_clusters, 1))
        return KMeansModel(
            self.name,
            self.prediction_column,
            self.feature_columns,
            centroids,
            weights,
        )

    def _kmeans_plus_plus(
        self, data: np.ndarray, weights: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        first = int(rng.integers(len(data)))
        centroids = [data[first]]
        for _ in range(1, self.n_clusters):
            stacked = np.stack(centroids)
            deltas = data[:, None, :] - stacked[None, :, :]
            distances = (weights * deltas * deltas).sum(axis=2).min(axis=1)
            total = distances.sum()
            if total <= 0:
                # All points coincide with chosen centroids; pick uniformly.
                index = int(rng.integers(len(data)))
            else:
                index = int(rng.choice(len(data), p=distances / total))
            centroids.append(data[index])
        return np.stack(centroids).astype(float)
