"""Evaluation metrics for mining models."""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

from repro.core.predicates import Value
from repro.exceptions import ModelError
from repro.mining.base import MiningModel, Row


def accuracy(model: MiningModel, rows: Sequence[Row], target: str) -> float:
    """Fraction of rows whose prediction matches ``target``."""
    if not rows:
        raise ModelError("accuracy needs at least one row")
    hits = sum(1 for row in rows if model.predict(row) == row[target])
    return hits / len(rows)


def confusion_matrix(
    model: MiningModel, rows: Sequence[Row], target: str
) -> dict[tuple[Value, Value], int]:
    """Counts keyed by ``(actual, predicted)``."""
    matrix: dict[tuple[Value, Value], int] = {}
    for row in rows:
        key = (row[target], model.predict(row))
        matrix[key] = matrix.get(key, 0) + 1
    return matrix


def label_selectivities(
    labels: Iterable[Value],
) -> dict[Value, float]:
    """Per-label fraction of occurrences — the paper's *original selectivity*.

    The original selectivity of class ``c`` is the fraction of rows the
    model predicts as ``c``; pass the model's predictions (or the true
    labels, for ground-truth selectivity).
    """
    counts: dict[Value, int] = {}
    total = 0
    for label in labels:
        counts[label] = counts.get(label, 0) + 1
        total += 1
    if total == 0:
        raise ModelError("selectivity needs at least one label")
    return {label: count / total for label, count in counts.items()}


def entropy(probabilities: Sequence[float]) -> float:
    """Shannon entropy (bits) of a distribution; zeros contribute nothing."""
    result = 0.0
    for p in probabilities:
        if p < 0:
            raise ModelError(f"negative probability {p}")
        if p > 0:
            result -= p * math.log2(p)
    return result
