"""Discrete naive Bayes classifier (paper Section 3.2.1).

The classifier predicts ``argmax_k Pr(c_k) * prod_d Pr(x_d | c_k)`` over
discretized attributes, with ties broken toward the class with the higher
prior — exactly the prediction rule the upper-envelope bounds of
Section 3.2.2 reason about.  Probabilities are estimated from training data
with Laplace smoothing and stored (in log space) per dimension member, which
is precisely the "model content" the envelope algorithm walks.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.core.columns import ColumnBatch
from repro.core.predicates import Value
from repro.core.regions import AttributeSpace, Dimension
from repro.exceptions import ModelError
from repro.mining.base import (
    MiningModel,
    ModelKind,
    Row,
    class_distribution,
    extract_column,
)
from repro.mining.discretize import BinningMethod, infer_space_dimensions


class NaiveBayesModel(MiningModel):
    """A trained discrete naive Bayes classifier.

    Parameters are exposed read-only:

    * :attr:`log_priors` — shape ``(K,)``, log class priors,
    * :attr:`log_conditionals` — one ``(K, n_d)`` array per dimension with
      ``log Pr(member | class)``.
    """

    def __init__(
        self,
        name: str,
        prediction_column: str,
        space: AttributeSpace,
        class_labels: Sequence[Value],
        log_priors: np.ndarray,
        log_conditionals: Sequence[np.ndarray],
    ) -> None:
        if len(class_labels) != log_priors.shape[0]:
            raise ModelError("priors do not match the class labels")
        if len(log_conditionals) != space.n_dims:
            raise ModelError("conditionals do not match the attribute space")
        for dim, table in zip(space.dimensions, log_conditionals):
            if table.shape != (len(class_labels), dim.size):
                raise ModelError(
                    f"conditional table for {dim.name!r} has shape "
                    f"{table.shape}, expected {(len(class_labels), dim.size)}"
                )
        self.name = name
        self.prediction_column = prediction_column
        self.space = space
        self._class_labels = tuple(class_labels)
        self.log_priors = log_priors
        self.log_conditionals = [np.asarray(t, dtype=float) for t in log_conditionals]
        # Tie-break ranking: higher prior wins; index order breaks exact
        # prior ties deterministically.
        order = sorted(
            range(len(self._class_labels)),
            key=lambda k: (-float(log_priors[k]), k),
        )
        self._tie_rank = [0] * len(order)
        for rank, k in enumerate(order):
            self._tie_rank[k] = rank

    @property
    def kind(self) -> ModelKind:
        return ModelKind.NAIVE_BAYES

    @property
    def feature_columns(self) -> tuple[str, ...]:
        return tuple(d.name for d in self.space.dimensions)

    @property
    def class_labels(self) -> tuple[Value, ...]:
        return self._class_labels

    @property
    def n_classes(self) -> int:
        return len(self._class_labels)

    def tie_rank(self, class_index: int) -> int:
        """Rank used to resolve score ties (0 wins against larger ranks)."""
        return self._tie_rank[class_index]

    def cell_log_scores(self, cell: Sequence[int]) -> np.ndarray:
        """Per-class log score ``log Pr(c_k) + sum_d log Pr(x_d | c_k)``."""
        scores = self.log_priors.copy()
        for table, member in zip(self.log_conditionals, cell):
            scores = scores + table[:, member]
        return scores

    def predict_cell(self, cell: Sequence[int]) -> int:
        """Winning class index for a grid cell, with prior tie-breaking."""
        scores = self.cell_log_scores(cell)
        best = np.flatnonzero(scores == scores.max())
        if len(best) == 1:
            return int(best[0])
        return int(min(best, key=lambda k: self._tie_rank[k]))

    def predict(self, row: Row) -> Value:
        self._require_columns(row)
        cell = self.space.point_for_row(row)
        return self._class_labels[self.predict_cell(cell)]

    def predict_batch(self, batch: ColumnBatch) -> np.ndarray:
        """Batch prediction as log-probability matrix arithmetic.

        Per-class scores accumulate dimension by dimension in the same
        order as :meth:`cell_log_scores`, so each row's score vector is
        bit-identical to the scalar one; ties resolve through the same
        prior ranking via an ``argmin`` over masked ranks.
        """
        if len(batch) == 0:
            return np.empty(0, dtype=object)
        missing = [c for c in self.feature_columns if not batch.has_column(c)]
        if missing:
            raise ModelError(
                f"model {self.name!r} requires columns {missing} "
                "absent from the row"
            )
        scores = np.tile(self.log_priors, (len(batch), 1))
        for table, dim in zip(self.log_conditionals, self.space.dimensions):
            members = dim.members_for_values(batch.column(dim.name))
            scores = scores + table.T[members]
        ties = scores == scores.max(axis=1)[:, None]
        ranks = np.asarray(self._tie_rank, dtype=np.int64)
        masked = np.where(ties, ranks[None, :], self.n_classes)
        winners = masked.argmin(axis=1)
        labels = np.empty(self.n_classes, dtype=object)
        labels[:] = self._class_labels
        return labels[winners]

    def to_dict(self) -> dict[str, Any]:
        from repro.mining.interchange import dimension_to_dict

        return {
            "kind": self.kind.value,
            "name": self.name,
            "prediction_column": self.prediction_column,
            "class_labels": list(self._class_labels),
            "dimensions": [dimension_to_dict(d) for d in self.space.dimensions],
            "log_priors": self.log_priors.tolist(),
            "log_conditionals": [t.tolist() for t in self.log_conditionals],
        }


class NaiveBayesLearner:
    """Fits :class:`NaiveBayesModel` from rows with Laplace smoothing.

    ``bins``/``binning`` control the discretization of continuous features
    (the MLC++ inducer the paper used likewise discretizes up front).
    """

    def __init__(
        self,
        feature_columns: Sequence[str],
        target_column: str,
        bins: int = 8,
        binning: BinningMethod = BinningMethod.EQUAL_FREQUENCY,
        smoothing: float = 1.0,
        name: str = "naive_bayes",
        prediction_column: str | None = None,
        dimensions: Sequence[Dimension] | None = None,
    ) -> None:
        if not feature_columns:
            raise ModelError("naive Bayes needs at least one feature column")
        if smoothing <= 0:
            raise ModelError("Laplace smoothing must be positive")
        self.feature_columns = tuple(feature_columns)
        self.target_column = target_column
        self.bins = bins
        self.binning = binning
        self.smoothing = smoothing
        self.name = name
        self.prediction_column = prediction_column or f"predicted_{target_column}"
        self._dimensions = tuple(dimensions) if dimensions is not None else None

    def fit(self, rows: Sequence[Row]) -> NaiveBayesModel:
        if not rows:
            raise ModelError("cannot fit naive Bayes on an empty training set")
        labels = extract_column(rows, self.target_column)
        class_labels = tuple(sorted(class_distribution(labels), key=str))
        label_index = {label: k for k, label in enumerate(class_labels)}
        if self._dimensions is not None:
            dims = list(self._dimensions)
            if tuple(d.name for d in dims) != self.feature_columns:
                raise ModelError(
                    "explicit dimensions must match feature_columns in order"
                )
        else:
            # High-cardinality ordinal attributes are binned like continuous
            # ones: one member per raw value would dilute the per-member
            # counts (and, downstream, inflate the envelope search's
            # per-member bound slack) without helping accuracy.
            dims = infer_space_dimensions(
                rows,
                self.feature_columns,
                bins=self.bins,
                method=self.binning,
                max_ordinal_domain=max(self.bins, 2),
            )
        space = AttributeSpace(tuple(dims))

        n_classes = len(class_labels)
        class_counts = np.zeros(n_classes, dtype=float)
        member_counts = [
            np.zeros((n_classes, dim.size), dtype=float) for dim in dims
        ]
        for row in rows:
            k = label_index[row[self.target_column]]
            class_counts[k] += 1
            for d, dim in enumerate(dims):
                member_counts[d][k, dim.member_for_value(row[dim.name])] += 1

        priors = (class_counts + self.smoothing) / (
            class_counts.sum() + self.smoothing * n_classes
        )
        log_conditionals = []
        for d, dim in enumerate(dims):
            counts = member_counts[d]
            smoothed = counts + self.smoothing
            probabilities = smoothed / smoothed.sum(axis=1, keepdims=True)
            log_conditionals.append(np.log(probabilities))
        return NaiveBayesModel(
            self.name,
            self.prediction_column,
            space,
            class_labels,
            np.log(priors),
            log_conditionals,
        )


def naive_bayes_from_tables(
    name: str,
    prediction_column: str,
    space: AttributeSpace,
    class_labels: Sequence[Value],
    priors: Sequence[float],
    conditionals: Sequence[Sequence[Sequence[float]]],
) -> NaiveBayesModel:
    """Build a model directly from probability tables.

    Used by the tests to reproduce the worked example of the paper's
    Table 1, and by the interchange loader.  ``conditionals[d][k][m]`` is
    ``Pr(member m of dimension d | class k)``.
    """
    log_priors = np.log(np.asarray(priors, dtype=float))
    log_conditionals = [
        np.log(np.asarray(table, dtype=float)) for table in conditionals
    ]
    return NaiveBayesModel(
        name, prediction_column, space, tuple(class_labels), log_priors,
        log_conditionals,
    )
