"""Regression trees — the paper's stated future work.

Section 3 closes with: "The class of models whose prediction is real-valued
is a topic of our future work."  For regression *trees* the extension is
natural and exact, mirroring Section 3.1: every leaf predicts a constant,
so the upper envelope of a range mining predicate
``M.prediction BETWEEN low AND high`` is the OR over leaves whose constant
falls in the range of the AND of that leaf's path conditions.

The learner is vectorized variance-reduction induction (CART for
regression); the model reuses the classification tree's node structure with
float leaf values.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any, Union

import numpy as np

from repro.core.columns import ColumnBatch
from repro.core.predicates import Predicate, Value
from repro.exceptions import ModelError
from repro.mining.base import MiningModel, ModelKind, Row, extract_column
from repro.mining.decision_tree import CategoryTest, NumericTest, Test


@dataclass(frozen=True)
class RegressionLeaf:
    """Terminal node predicting a constant value."""

    value: float
    count: int


@dataclass(frozen=True)
class RegressionInternal:
    """Internal node: ``test`` true -> ``left``, false -> ``right``."""

    test: Test
    left: "RegressionNode"
    right: "RegressionNode"


RegressionNode = Union[RegressionLeaf, RegressionInternal]


class RegressionTreeModel(MiningModel):
    """A trained regression tree: piecewise-constant prediction."""

    def __init__(
        self,
        name: str,
        prediction_column: str,
        feature_columns: Sequence[str],
        root: RegressionNode,
    ) -> None:
        self.name = name
        self.prediction_column = prediction_column
        self._feature_columns = tuple(feature_columns)
        self.root = root

    @property
    def kind(self) -> ModelKind:
        # Regression trees share the decision-tree model family.
        return ModelKind.DECISION_TREE

    @property
    def feature_columns(self) -> tuple[str, ...]:
        return self._feature_columns

    @property
    def class_labels(self) -> tuple[Value, ...]:
        """The distinct leaf constants — a finite 'label' set.

        This is what makes the Section 4.1 label-enumeration machinery
        carry over: a regression tree can only output one of its leaves'
        values.
        """
        return tuple(sorted({leaf.value for _, leaf in iter_regression_leaves(self.root)}))

    def predict(self, row: Row) -> Value:
        self._require_columns(row)
        node = self.root
        while isinstance(node, RegressionInternal):
            node = node.left if node.test.matches(row) else node.right
        return node.value

    def predict_batch(self, batch: ColumnBatch) -> np.ndarray:
        """Batch prediction via iterative node masks (as for class trees)."""
        out = np.empty(len(batch), dtype=object)
        if len(batch) == 0:
            return out
        missing = [c for c in self.feature_columns if not batch.has_column(c)]
        if missing:
            raise ModelError(
                f"model {self.name!r} requires columns {missing} "
                "absent from the row"
            )
        if any(
            isinstance(test, NumericTest) and not batch.is_numeric(test.column)
            for test in _iter_regression_tests(self.root)
        ):
            for i, row in enumerate(batch.rows()):
                out[i] = self.predict(row)
            return out
        stack: list[tuple[RegressionNode, np.ndarray]] = [
            (self.root, np.arange(len(batch), dtype=np.int64))
        ]
        while stack:
            node, indices = stack.pop()
            if indices.size == 0:
                continue
            if isinstance(node, RegressionLeaf):
                out[indices] = node.value
                continue
            test = node.test
            if isinstance(test, NumericTest):
                mask = batch.numeric(test.column)[indices] <= test.threshold
            else:
                mask = batch.column(test.column)[indices] == test.value
            stack.append((node.left, indices[mask]))
            stack.append((node.right, indices[~mask]))
        return out

    def leaf_count(self) -> int:
        return sum(1 for _ in iter_regression_leaves(self.root))

    def value_range(self) -> tuple[float, float]:
        values = [leaf.value for _, leaf in iter_regression_leaves(self.root)]
        return min(values), max(values)

    def to_dict(self) -> dict[str, Any]:
        def node_dict(node: RegressionNode) -> dict[str, Any]:
            if isinstance(node, RegressionLeaf):
                return {
                    "leaf": True,
                    "value": node.value,
                    "count": node.count,
                }
            if isinstance(node.test, NumericTest):
                test: dict[str, Any] = {
                    "type": "numeric",
                    "column": node.test.column,
                    "threshold": node.test.threshold,
                }
            else:
                assert isinstance(node.test, CategoryTest)
                test = {
                    "type": "category",
                    "column": node.test.column,
                    "value": node.test.value,
                }
            return {
                "leaf": False,
                "test": test,
                "left": node_dict(node.left),
                "right": node_dict(node.right),
            }

        return {
            "kind": "regression_tree",
            "name": self.name,
            "prediction_column": self.prediction_column,
            "feature_columns": list(self._feature_columns),
            "root": node_dict(self.root),
        }


def _iter_regression_tests(node: RegressionNode):
    """Yield every internal-node test in the tree."""
    if isinstance(node, RegressionInternal):
        yield node.test
        yield from _iter_regression_tests(node.left)
        yield from _iter_regression_tests(node.right)


def iter_regression_leaves(
    node: RegressionNode, path: tuple[Predicate, ...] = ()
):
    """Yield ``(path_conditions, leaf)`` for every leaf (as for trees)."""
    if isinstance(node, RegressionLeaf):
        yield path, node
        return
    yield from iter_regression_leaves(
        node.left, path + (node.test.true_predicate(),)
    )
    yield from iter_regression_leaves(
        node.right, path + (node.test.false_predicate(),)
    )


class RegressionTreeLearner:
    """Vectorized CART-style regression tree (variance reduction)."""

    def __init__(
        self,
        feature_columns: Sequence[str],
        target_column: str,
        max_depth: int = 10,
        min_samples_split: int = 8,
        min_variance_gain: float = 1e-9,
        max_thresholds: int = 32,
        name: str = "regression_tree",
        prediction_column: str | None = None,
    ) -> None:
        if not feature_columns:
            raise ModelError(
                "regression tree needs at least one feature column"
            )
        self.feature_columns = tuple(feature_columns)
        self.target_column = target_column
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_variance_gain = min_variance_gain
        self.max_thresholds = max_thresholds
        self.name = name
        self.prediction_column = prediction_column or f"predicted_{target_column}"

    def fit(self, rows: Sequence[Row]) -> RegressionTreeModel:
        if not rows:
            raise ModelError("cannot fit a regression tree on no rows")
        targets = extract_column(rows, self.target_column)
        if any(isinstance(v, str) for v in targets):
            raise ModelError("regression targets must be numeric")
        self._targets = np.asarray(targets, dtype=float)
        self._numeric: dict[str, np.ndarray] = {}
        self._codes: dict[str, np.ndarray] = {}
        self._domains: dict[str, list[Value]] = {}
        for column in self.feature_columns:
            values = extract_column(rows, column)
            if any(isinstance(v, str) for v in values):
                domain = sorted(set(values))
                code = {v: i for i, v in enumerate(domain)}
                self._domains[column] = list(domain)
                self._codes[column] = np.array(
                    [code[v] for v in values], dtype=np.int64
                )
            else:
                self._numeric[column] = np.asarray(values, dtype=float)
        indices = np.arange(len(rows), dtype=np.int64)
        root = self._build(indices, depth=0)
        del self._targets, self._numeric, self._codes, self._domains
        return RegressionTreeModel(
            self.name, self.prediction_column, self.feature_columns, root
        )

    def _build(self, indices: np.ndarray, depth: int) -> RegressionNode:
        targets = self._targets[indices]
        if (
            depth >= self.max_depth
            or len(indices) < self.min_samples_split
            or float(targets.var()) <= 1e-18
        ):
            return RegressionLeaf(float(targets.mean()), len(indices))
        best = self._best_split(indices, targets)
        if best is None:
            return RegressionLeaf(float(targets.mean()), len(indices))
        test, left_mask = best
        return RegressionInternal(
            test,
            self._build(indices[left_mask], depth + 1),
            self._build(indices[~left_mask], depth + 1),
        )

    def _best_split(self, indices: np.ndarray, targets: np.ndarray):
        total = len(indices)
        base = float(targets.var()) * total
        best_gain = self.min_variance_gain
        best = None
        for column in self.feature_columns:
            if column in self._numeric:
                values = self._numeric[column][indices]
                order = np.argsort(values, kind="stable")
                ordered_values = values[order]
                ordered_targets = targets[order]
                boundaries = np.flatnonzero(
                    ordered_values[1:] > ordered_values[:-1]
                )
                if boundaries.size == 0:
                    continue
                if boundaries.size > self.max_thresholds:
                    step = boundaries.size / self.max_thresholds
                    picks = (
                        np.arange(self.max_thresholds) * step
                    ).astype(int)
                    boundaries = boundaries[picks]
                prefix_sum = ordered_targets.cumsum()
                prefix_sq = (ordered_targets**2).cumsum()
                n_left = boundaries + 1.0
                s_left = prefix_sum[boundaries]
                q_left = prefix_sq[boundaries]
                n_right = total - n_left
                s_right = prefix_sum[-1] - s_left
                q_right = prefix_sq[-1] - q_left
                sse = (
                    q_left
                    - s_left * s_left / n_left
                    + q_right
                    - s_right * s_right / n_right
                )
                gains = base - sse
                pick = int(gains.argmax())
                if gains[pick] > best_gain:
                    threshold = float(
                        (
                            ordered_values[boundaries[pick]]
                            + ordered_values[boundaries[pick] + 1]
                        )
                        / 2.0
                    )
                    best_gain = float(gains[pick])
                    best = (
                        NumericTest(column, threshold),
                        values <= threshold,
                    )
            else:
                codes = self._codes[column][indices]
                domain = self._domains[column]
                for value_index, value in enumerate(domain):
                    mask = codes == value_index
                    n_left = int(mask.sum())
                    if n_left == 0 or n_left == total:
                        continue
                    left = targets[mask]
                    right = targets[~mask]
                    sse = float(left.var()) * n_left + float(
                        right.var()
                    ) * (total - n_left)
                    gain = base - sse
                    if gain > best_gain:
                        best_gain = gain
                        best = (CategoryTest(column, value), mask)
        return best
