"""Ordered rule-list classifier learned by sequential covering.

Section 3.1 of the paper covers rule-based learners (citing RIPPER/CN2):
if-then rules whose bodies are conjunctions of simple attribute conditions,
resolved by sequential order, with a default class for uncovered instances.
The class-``c`` upper envelope is the disjunction of the bodies of ``c``'s
rules — *not exact* in general because an instance matching a ``c`` rule may
be claimed by an earlier rule of another class; the default class's envelope
additionally includes the complement of all non-default bodies.

The learner here is a compact PRISM/CN2-style sequential coverer: per class
it greedily grows conjunctions maximizing Laplace-corrected precision,
removes covered rows, and repeats up to a rule budget.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.columns import ColumnBatch
from repro.core.predicates import (
    Comparison,
    Op,
    Predicate,
    Value,
    conjunction,
    equals,
)
from repro.exceptions import ModelError
from repro.mining.base import (
    MiningModel,
    ModelKind,
    Row,
    class_distribution,
    extract_column,
)


@dataclass(frozen=True)
class Rule:
    """One if-then rule: ``body`` (atom conjunction) implies ``head``."""

    body: tuple[Predicate, ...]
    head: Value

    def matches(self, row: Row) -> bool:
        return all(atom.evaluate(row) for atom in self.body)

    def body_predicate(self) -> Predicate:
        return conjunction(self.body)


class RuleSetModel(MiningModel):
    """An ordered rule list plus a default class."""

    def __init__(
        self,
        name: str,
        prediction_column: str,
        feature_columns: Sequence[str],
        rules: Sequence[Rule],
        default_label: Value,
    ) -> None:
        self.name = name
        self.prediction_column = prediction_column
        self._feature_columns = tuple(feature_columns)
        self.rules = tuple(rules)
        self.default_label = default_label
        labels = {rule.head for rule in rules} | {default_label}
        self._class_labels = tuple(sorted(labels, key=str))

    @property
    def kind(self) -> ModelKind:
        return ModelKind.RULES

    @property
    def feature_columns(self) -> tuple[str, ...]:
        return self._feature_columns

    @property
    def class_labels(self) -> tuple[Value, ...]:
        return self._class_labels

    def predict(self, row: Row) -> Value:
        self._require_columns(row)
        for rule in self.rules:
            if rule.matches(row):
                return rule.head
        return self.default_label

    def predict_batch(self, batch: ColumnBatch) -> np.ndarray:
        """Batch prediction with vectorized bodies, first match wins.

        Each rule's body evaluates as a boolean mask over the rows no
        earlier rule claimed; claimed rows are compacted away, so later
        rules only touch still-undecided rows — the vectorized analogue of
        the scalar sequential-order resolution.
        """
        size = len(batch)
        if size == 0:
            return np.empty(0, dtype=object)
        missing = [
            c for c in self._feature_columns if not batch.has_column(c)
        ]
        if missing:
            raise ModelError(
                f"model {self.name!r} requires columns {missing} "
                "absent from the row"
            )
        out = np.empty(size, dtype=object)
        out[:] = self.default_label
        undecided = np.arange(size, dtype=np.int64)
        current = batch
        for rule in self.rules:
            if undecided.size == 0:
                break
            mask = np.ones(len(current), dtype=bool)
            for atom in rule.body:
                mask &= atom.evaluate_batch(current)
                if not mask.any():
                    break
            if not mask.any():
                continue
            out[undecided[mask]] = rule.head
            keep = np.flatnonzero(~mask)
            undecided = undecided[keep]
            current = current.take(keep)
        return out

    def rules_for(self, label: Value) -> tuple[Rule, ...]:
        """Rules whose head is ``label`` (possibly empty)."""
        return tuple(rule for rule in self.rules if rule.head == label)

    def to_dict(self) -> dict[str, Any]:
        from repro.mining.interchange import predicate_to_dict

        return {
            "kind": self.kind.value,
            "name": self.name,
            "prediction_column": self.prediction_column,
            "feature_columns": list(self._feature_columns),
            "default_label": self.default_label,
            "rules": [
                {
                    "head": rule.head,
                    "body": [predicate_to_dict(a) for a in rule.body],
                }
                for rule in self.rules
            ],
        }


class RuleLearner:
    """Sequential covering with greedy Laplace-precision condition growth."""

    def __init__(
        self,
        feature_columns: Sequence[str],
        target_column: str,
        max_rules_per_class: int = 8,
        max_conditions: int = 4,
        min_coverage: int = 2,
        max_thresholds: int = 16,
        name: str = "rules",
        prediction_column: str | None = None,
    ) -> None:
        if not feature_columns:
            raise ModelError("rule learner needs at least one feature column")
        self.feature_columns = tuple(feature_columns)
        self.target_column = target_column
        self.max_rules_per_class = max_rules_per_class
        self.max_conditions = max_conditions
        self.min_coverage = min_coverage
        self.max_thresholds = max_thresholds
        self.name = name
        self.prediction_column = prediction_column or f"predicted_{target_column}"

    def fit(self, rows: Sequence[Row]) -> RuleSetModel:
        if not rows:
            raise ModelError("cannot fit rules on an empty training set")
        labels = extract_column(rows, self.target_column)
        counts = class_distribution(labels)
        # Learn rules for rarer classes first (standard sequential covering
        # order); the most frequent class becomes the default.
        ordered = sorted(counts, key=lambda c: (counts[c], str(c)))
        default_label = ordered[-1]
        remaining = list(rows)
        rules: list[Rule] = []
        for label in ordered[:-1]:
            for _ in range(self.max_rules_per_class):
                positives = [
                    r for r in remaining if r[self.target_column] == label
                ]
                if len(positives) < self.min_coverage:
                    break
                rule = self._grow_rule(remaining, label)
                if rule is None:
                    break
                rules.append(rule)
                remaining = [r for r in remaining if not rule.matches(r)]
        return RuleSetModel(
            self.name,
            self.prediction_column,
            self.feature_columns,
            rules,
            default_label,
        )

    # -- rule growth -------------------------------------------------------

    def _grow_rule(self, rows: list[Row], label: Value) -> Rule | None:
        body: list[Predicate] = []
        covered = list(rows)
        best_precision = self._precision(covered, label)
        while len(body) < self.max_conditions:
            best_atom: Predicate | None = None
            best_covered: list[Row] | None = None
            for atom in self._candidate_atoms(covered):
                subset = [r for r in covered if atom.evaluate(r)]
                if len(subset) < self.min_coverage:
                    continue
                precision = self._precision(subset, label)
                if precision > best_precision:
                    best_precision = precision
                    best_atom = atom
                    best_covered = subset
            if best_atom is None:
                break
            body.append(best_atom)
            assert best_covered is not None
            covered = best_covered
            if all(r[self.target_column] == label for r in covered):
                break
        if not body:
            return None
        positives = sum(1 for r in covered if r[self.target_column] == label)
        if positives < self.min_coverage or positives * 2 < len(covered):
            return None
        return Rule(tuple(body), label)

    def _precision(self, rows: Sequence[Row], label: Value) -> float:
        positives = sum(1 for r in rows if r[self.target_column] == label)
        # Laplace correction keeps tiny pure subsets from dominating.
        return (positives + 1) / (len(rows) + 2)

    def _candidate_atoms(self, rows: Sequence[Row]) -> list[Predicate]:
        atoms: list[Predicate] = []
        for column in self.feature_columns:
            values = [row[column] for row in rows]
            if any(isinstance(v, str) for v in values):
                for value in sorted(set(values)):  # type: ignore[type-var]
                    atoms.append(equals(column, value))
                continue
            distinct = sorted(set(float(v) for v in values))
            if len(distinct) <= 1:
                continue
            midpoints = [(a + b) / 2.0 for a, b in zip(distinct, distinct[1:])]
            if len(midpoints) > self.max_thresholds:
                step = len(midpoints) / self.max_thresholds
                midpoints = [
                    midpoints[int(i * step)]
                    for i in range(self.max_thresholds)
                ]
            for threshold in midpoints:
                atoms.append(Comparison(column, Op.LE, threshold))
                atoms.append(Comparison(column, Op.GT, threshold))
        return atoms
