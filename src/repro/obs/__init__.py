"""Query-lifecycle observability: span tracing, metrics, trace reports.

Instrumented code imports this package as ``from repro import obs`` and
calls :func:`obs.span` / :func:`obs.add_counter` / :func:`obs.record`;
all of it is a no-op until :func:`obs.configure` (or the CLI's
``--trace DIR`` / the ``REPRO_TRACE_DIR`` environment variable) turns
tracing on.  See :mod:`repro.obs.trace` for the tracer and
:mod:`repro.obs.report` for the ``trace-report`` summarizer.
"""

from repro.obs.trace import (
    ENV_TRACE_DIR,
    Span,
    Tracer,
    add_counter,
    configure,
    counters_snapshot,
    current,
    enabled,
    event,
    flush,
    record,
    set_gauge,
    span,
    trace_directory,
)
from repro.obs.report import (
    SpanSummary,
    TraceError,
    TraceSummary,
    format_report,
    summarize,
    trace_files,
)

__all__ = [
    "ENV_TRACE_DIR",
    "Span",
    "SpanSummary",
    "TraceError",
    "TraceSummary",
    "Tracer",
    "add_counter",
    "configure",
    "counters_snapshot",
    "current",
    "enabled",
    "event",
    "flush",
    "format_report",
    "record",
    "set_gauge",
    "span",
    "summarize",
    "trace_directory",
    "trace_files",
]
