"""Trace-directory summarization (the ``trace-report`` CLI).

Reads every ``*.jsonl`` file of a trace directory in sorted-filename order
(deterministic, like the sweep cache's shard merge) and aggregates:

* **spans** — per-name count, total/mean/max seconds, ranked by total time,
* **counters** — summed per name, with hit rates derived from every
  ``<name>.hit`` / ``<name>.miss`` pair (plan cache, prediction memos,
  the IR intern table),
* **simplification passes** — per-pass rewrite statistics from the
  ``ir.pass.<pass>.*`` counters the pass pipeline emits (runs, rewrites,
  atoms in/out, aborts),
* **gauges** — last value per name,
* **estimator accuracy** — absolute-error quantiles over the
  ``estimator_accuracy`` records the executor emits (estimated vs. actual
  selectivity of the pushed predicate),
* **calibration** — the feedback loop's health: observations fed into the
  :mod:`repro.sql.calibration` store, overlay hits/misses,
  divergence-triggered plan recalibrations, and before/after
  absolute-error quantiles (static estimate vs. the calibrated estimate
  acted on) from records that carry ``static_estimated``,
* **malformed lines** — counted, and fatal under ``strict``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import ReproError
from repro.obs.trace import TRACE_SUFFIX


class TraceError(ReproError):
    """A trace directory is missing, empty, or (under strict) malformed."""


@dataclass
class SpanSummary:
    """Aggregate over all spans sharing one name."""

    name: str
    count: int = 0
    total_seconds: float = 0.0
    max_seconds: float = 0.0

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0


@dataclass
class TraceSummary:
    """Everything ``trace-report`` prints, as plain data."""

    files: int
    lines: int
    malformed: list[str]
    spans: dict[str, SpanSummary]
    counters: dict[str, float]
    gauges: dict[str, float]
    events: dict[str, int]
    estimator_records: int = 0
    estimator_error_quantiles: dict[str, float] = field(default_factory=dict)
    #: Absolute errors of the *static* estimate, from records that carry
    #: ``static_estimated`` (i.e. executions with calibration wired) —
    #: paired with :attr:`calibrated_errors` for before/after quantiles.
    static_errors: list[float] = field(default_factory=list)
    #: Absolute errors of the estimate *acted on* for the same records.
    calibrated_errors: list[float] = field(default_factory=list)

    def top_spans(self, limit: int = 10) -> list[SpanSummary]:
        ranked = sorted(
            self.spans.values(),
            key=lambda s: (-s.total_seconds, s.name),
        )
        return ranked[:limit]

    def hit_rates(self) -> dict[str, float]:
        """Hit rate per ``<name>.hit``/``<name>.miss`` counter pair."""
        rates: dict[str, float] = {}
        for name, hits in sorted(self.counters.items()):
            if not name.endswith(".hit"):
                continue
            base = name[: -len(".hit")]
            misses = self.counters.get(base + ".miss", 0.0)
            total = hits + misses
            if total > 0:
                rates[base] = hits / total
        return rates

    def serving(self) -> dict[str, float]:
        """Serving-layer statistics from the ``serve.*`` telemetry.

        Empty when no serving ran.  Request counters come from
        ``serve.request.*``, batching from ``serve.batch.*``; the
        coalescing factor is scoring requests per underlying
        ``predict_batch`` call (1.0 = no cross-request sharing).
        """
        stats: dict[str, float] = {}
        request_fields = (
            "submitted",
            "completed",
            "collapsed",
            "shed",
            "timeout",
            "error",
            "cancelled",
        )
        for metric in request_fields:
            value = self.counters.get(f"serve.request.{metric}")
            if value is not None:
                stats[metric] = value
        for metric in ("requests", "calls", "rows", "coalesced"):
            value = self.counters.get(f"serve.batch.{metric}")
            if value is not None:
                stats[f"batch_{metric}"] = value
        calls = stats.get("batch_calls", 0.0)
        if calls:
            stats["coalescing_factor"] = stats["batch_requests"] / calls
        return stats

    def segments(self) -> dict[str, float]:
        """Segment-matching statistics from the ``segments.*`` telemetry.

        Empty when no segment matching ran.  Mask traffic comes from
        ``segments.mask.computed`` / ``segments.mask.shared`` (the share
        rate is the fraction of node evaluations answered from the
        per-batch cache); request coalescing from ``segments.batch.*``.
        """
        stats: dict[str, float] = {}
        for metric in ("computed", "shared"):
            value = self.counters.get(f"segments.mask.{metric}")
            if value is not None:
                stats[f"masks_{metric}"] = value
        skipped = self.counters.get("segments.constant.skipped")
        if skipped is not None:
            stats["constants_skipped"] = skipped
        total = stats.get("masks_computed", 0.0) + stats.get(
            "masks_shared", 0.0
        )
        if total:
            stats["share_rate"] = stats.get("masks_shared", 0.0) / total
        for metric in ("requests", "calls", "rows", "coalesced"):
            value = self.counters.get(f"segments.batch.{metric}")
            if value is not None:
                stats[f"batch_{metric}"] = value
        calls = stats.get("batch_calls", 0.0)
        if calls:
            stats["coalescing_factor"] = stats["batch_requests"] / calls
        return stats

    def transport(self) -> dict[str, float]:
        """Transport-layer statistics from the ``serve.transport.*`` /
        ``serve.router.*`` telemetry.

        Empty when no byte transport ran.  Frame and byte counters are
        summed across every shard (each router worker process writes its
        own ``trace_serve_worker_<i>.jsonl``, merged deterministically
        in sorted filename order), request counters are reported
        per-transport under ``requests_<name>``, and ``respawns`` counts
        router workers replaced after a crash.
        """
        stats: dict[str, float] = {}
        for metric in ("frames.in", "frames.out", "bytes.in", "bytes.out"):
            value = self.counters.get(f"serve.transport.{metric}")
            if value is not None:
                stats[metric.replace(".", "_")] = value
        prefix = "serve.transport.requests."
        for name in sorted(self.counters):
            if name.startswith(prefix):
                transport_name = name[len(prefix):]
                stats[f"requests_{transport_name}"] = self.counters[name]
        respawns = self.counters.get("serve.router.respawn")
        if respawns is not None:
            stats["respawns"] = respawns
        return stats

    def load(self) -> dict[str, float]:
        """Open-loop load-harness statistics from ``load.*`` telemetry.

        Empty when no load run happened.  Outcome counters come from
        ``load.request.<outcome>`` (one bucket per scheduled request);
        the rate/latency numbers are the ``load.*`` gauges the SLO
        summarizer publishes for its most recent run.
        """
        stats: dict[str, float] = {}
        for metric in (
            "issued",
            "ok",
            "late",
            "shed",
            "queued_timeout",
            "error",
        ):
            value = self.counters.get(f"load.request.{metric}")
            if value is not None:
                stats[metric] = value
        for gauge in (
            "offered_rate",
            "goodput",
            "miss_rate",
            "shed_rate",
        ):
            value = self.gauges.get(f"load.{gauge}")
            if value is not None:
                stats[gauge] = value
        for family in ("latency", "jitter"):
            for quantile in ("p50", "p95", "p99"):
                value = self.gauges.get(f"load.{family}.{quantile}")
                if value is not None:
                    stats[f"{family}_{quantile}"] = value
        return stats

    def disjunction(self) -> dict[str, float]:
        """Disjunction-execution statistics from ``ir.batch.*`` and
        ``sql.lowering.*`` telemetry.

        Empty when no batch evaluation ran.  Mask traffic comes from
        ``ir.batch.mask.computed`` / ``ir.batch.mask.shared`` (the share
        rate is the fraction of node evaluations answered from the
        per-batch interned-node cache), operand planning from
        ``ir.batch.plan.hit`` / ``ir.batch.plan.miss``, and
        ``union_lowerings`` counts SELECTs rewritten to
        UNION-of-index-range form.
        """
        stats: dict[str, float] = {}
        for metric in ("computed", "shared"):
            value = self.counters.get(f"ir.batch.mask.{metric}")
            if value is not None:
                stats[f"masks_{metric}"] = value
        total = stats.get("masks_computed", 0.0) + stats.get(
            "masks_shared", 0.0
        )
        if total:
            stats["share_rate"] = stats.get("masks_shared", 0.0) / total
        for metric in ("hit", "miss"):
            value = self.counters.get(f"ir.batch.plan.{metric}")
            if value is not None:
                stats[f"plan_{metric}"] = value
        plans = stats.get("plan_hit", 0.0) + stats.get("plan_miss", 0.0)
        if plans:
            stats["plan_hit_rate"] = stats.get("plan_hit", 0.0) / plans
        unions = self.counters.get("sql.lowering.union")
        if unions is not None:
            stats["union_lowerings"] = unions
        return stats

    def calibration(self) -> dict[str, float]:
        """Feedback-loop statistics from the calibration telemetry.

        Empty when calibration never ran.  ``observations`` counts
        measured selectivities fed into the store, ``overlay_hits`` /
        ``overlay_misses`` how often a calibrated lookup found a usable
        entry, ``recalibrations`` cached plans dropped for estimate
        divergence.  When records carry ``static_estimated``, the
        before/after quantiles compare the static estimate's absolute
        error against the calibrated estimate actually acted on.
        """
        stats: dict[str, float] = {}
        pairs = (
            ("observations", "calibration.observation"),
            ("overlay_hits", "calibration.overlay.hit"),
            ("overlay_misses", "calibration.overlay.miss"),
            ("evictions", "calibration.evict"),
            ("recalibrations", "plan_cache.recalibration"),
        )
        for key, counter in pairs:
            value = self.counters.get(counter)
            if value is not None:
                stats[key] = value
        lookups = stats.get("overlay_hits", 0.0) + stats.get(
            "overlay_misses", 0.0
        )
        if lookups:
            stats["overlay_hit_rate"] = (
                stats.get("overlay_hits", 0.0) / lookups
            )
        if self.static_errors:
            before = sorted(self.static_errors)
            after = sorted(self.calibrated_errors)
            stats["paired_records"] = float(len(before))
            stats["static_p50"] = _quantile(before, 0.50)
            stats["static_p90"] = _quantile(before, 0.90)
            stats["calibrated_p50"] = _quantile(after, 0.50)
            stats["calibrated_p90"] = _quantile(after, 0.90)
        return stats

    def pass_rewrites(self) -> dict[str, dict[str, float]]:
        """Per-pass rewrite statistics from the ``ir.pass.*`` counters.

        Keyed by pass name; each row holds the summed ``runs``,
        ``rewrites``, ``atoms_before``, ``atoms_after``, and ``aborted``
        counters the pipeline emits (missing counters default to 0).
        """
        prefix = "ir.pass."
        fields = ("runs", "rewrites", "atoms_before", "atoms_after", "aborted")
        passes: dict[str, dict[str, float]] = {}
        for name, value in self.counters.items():
            if not name.startswith(prefix):
                continue
            base, _, metric = name[len(prefix):].rpartition(".")
            if not base or metric not in fields:
                continue
            row = passes.setdefault(base, {f: 0.0 for f in fields})
            row[metric] += value
        return dict(sorted(passes.items()))


def trace_files(directory: str | Path) -> list[Path]:
    """Trace files of a directory, in deterministic (sorted) order."""
    root = Path(directory)
    if not root.is_dir():
        raise TraceError(f"trace directory {root} does not exist")
    return sorted(root.glob(f"*{TRACE_SUFFIX}"))


def _quantile(ordered: list[float], q: float) -> float:
    """Linear-interpolation quantile of an already-sorted list."""
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    weight = position - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


def summarize(directory: str | Path, strict: bool = False) -> TraceSummary:
    """Aggregate a trace directory; ``strict`` raises on malformed lines."""
    files = trace_files(directory)
    if not files:
        raise TraceError(f"no {TRACE_SUFFIX} trace files in {directory}")
    lines = 0
    malformed: list[str] = []
    spans: dict[str, SpanSummary] = {}
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    events: dict[str, int] = {}
    errors: list[float] = []
    static_errors: list[float] = []
    calibrated_errors: list[float] = []
    for path in files:
        with path.open(encoding="utf-8") as stream:
            for line_number, line in enumerate(stream, start=1):
                line = line.strip()
                if not line:
                    continue
                lines += 1
                where = f"{path.name}:{line_number}"
                try:
                    payload = json.loads(line)
                except ValueError:
                    malformed.append(f"{where}: not valid JSON")
                    continue
                problem = _ingest(
                    payload,
                    spans,
                    counters,
                    gauges,
                    events,
                    errors,
                    static_errors,
                    calibrated_errors,
                )
                if problem is not None:
                    malformed.append(f"{where}: {problem}")
    if strict and malformed:
        shown = "; ".join(malformed[:5])
        raise TraceError(
            f"{len(malformed)} malformed trace line(s), e.g. {shown}"
        )
    ordered_errors = sorted(errors)
    quantiles = {}
    if ordered_errors:
        quantiles = {
            "p50": _quantile(ordered_errors, 0.50),
            "p90": _quantile(ordered_errors, 0.90),
            "max": ordered_errors[-1],
        }
    return TraceSummary(
        files=len(files),
        lines=lines,
        malformed=malformed,
        spans=spans,
        counters=counters,
        gauges=gauges,
        events=events,
        estimator_records=len(errors),
        estimator_error_quantiles=quantiles,
        static_errors=static_errors,
        calibrated_errors=calibrated_errors,
    )


def _ingest(
    payload: object,
    spans: dict[str, SpanSummary],
    counters: dict[str, float],
    gauges: dict[str, float],
    events: dict[str, int],
    errors: list[float],
    static_errors: list[float],
    calibrated_errors: list[float],
) -> str | None:
    """Fold one parsed line into the aggregates; describe any defect."""
    if not isinstance(payload, dict):
        return "line is not a JSON object"
    kind = payload.get("type")
    if not isinstance(kind, str):
        return "missing 'type' field"
    if kind == "span":
        name = payload.get("name")
        seconds = payload.get("seconds")
        if not isinstance(name, str) or not isinstance(
            seconds, (int, float)
        ):
            return "span needs string 'name' and numeric 'seconds'"
        summary = spans.get(name)
        if summary is None:
            summary = spans[name] = SpanSummary(name)
        summary.count += 1
        summary.total_seconds += float(seconds)
        summary.max_seconds = max(summary.max_seconds, float(seconds))
        return None
    if kind == "counter":
        name = payload.get("name")
        value = payload.get("value")
        if not isinstance(name, str) or not isinstance(value, (int, float)):
            return "counter needs string 'name' and numeric 'value'"
        counters[name] = counters.get(name, 0.0) + float(value)
        return None
    if kind == "gauge":
        name = payload.get("name")
        value = payload.get("value")
        if not isinstance(name, str) or not isinstance(value, (int, float)):
            return "gauge needs string 'name' and numeric 'value'"
        gauges[name] = float(value)
        return None
    if kind == "event":
        name = payload.get("name")
        if not isinstance(name, str):
            return "event needs a string 'name'"
        events[name] = events.get(name, 0) + 1
        return None
    if kind == "estimator_accuracy":
        estimated = payload.get("estimated")
        actual = payload.get("actual")
        if not isinstance(estimated, (int, float)) or not isinstance(
            actual, (int, float)
        ):
            return (
                "estimator_accuracy needs numeric 'estimated' and 'actual'"
            )
        errors.append(abs(float(estimated) - float(actual)))
        static = payload.get("static_estimated")
        if isinstance(static, (int, float)):
            # A record with the uncalibrated estimate alongside the one
            # acted on: a before/after pair for the calibration section.
            static_errors.append(abs(float(static) - float(actual)))
            calibrated_errors.append(abs(float(estimated) - float(actual)))
        return None
    # Unknown record types are forward-compatible, not malformed.
    return None


def format_report(summary: TraceSummary, top: int = 25) -> str:
    """Human-readable rendering of a :class:`TraceSummary`.

    ``top`` bounds the span ranking only; it is sized so every span name
    the library emits today fits (a lower bound silently hid names the
    CLI round-trip tests assert on).
    """
    out: list[str] = []
    out.append(
        f"trace files: {summary.files}   lines: {summary.lines}   "
        f"malformed: {len(summary.malformed)}"
    )
    out.append("")
    out.append(f"Top spans by total time (of {len(summary.spans)} names):")
    if summary.spans:
        width = max(len(s.name) for s in summary.top_spans(top))
        for entry in summary.top_spans(top):
            out.append(
                f"  {entry.name:<{width}}  n={entry.count:<6d} "
                f"total={entry.total_seconds:9.4f}s "
                f"mean={entry.mean_seconds:9.6f}s "
                f"max={entry.max_seconds:9.6f}s"
            )
    else:
        out.append("  (none)")
    out.append("")
    out.append(
        f"Estimator accuracy ({summary.estimator_records} records):"
    )
    if summary.estimator_error_quantiles:
        quantiles = summary.estimator_error_quantiles
        out.append(
            "  |estimated - actual| "
            f"p50={quantiles['p50']:.4f} "
            f"p90={quantiles['p90']:.4f} "
            f"max={quantiles['max']:.4f}"
        )
    else:
        out.append("  (none)")
    out.append("")
    calibration = summary.calibration()
    if calibration:
        out.append("Calibration:")
        parts = []
        for metric in (
            "observations",
            "overlay_hits",
            "overlay_misses",
            "recalibrations",
            "evictions",
        ):
            if metric in calibration:
                parts.append(f"{metric}={int(calibration[metric])}")
        if parts:
            out.append("  " + "  ".join(parts))
        if "overlay_hit_rate" in calibration:
            out.append(
                "  overlay hit rate: "
                f"{calibration['overlay_hit_rate']:.1%}"
            )
        if "paired_records" in calibration:
            out.append(
                f"  abs error over {int(calibration['paired_records'])} "
                "paired records: "
                f"static p50={calibration['static_p50']:.4f} "
                f"p90={calibration['static_p90']:.4f}  ->  "
                f"calibrated p50={calibration['calibrated_p50']:.4f} "
                f"p90={calibration['calibrated_p90']:.4f}"
            )
        out.append("")
    passes = summary.pass_rewrites()
    if passes:
        out.append("Simplification passes:")
        width = max(len(name) for name in passes)
        for name, row in passes.items():
            atoms = ""
            if row["atoms_before"] or row["atoms_after"]:
                atoms = (
                    f" atoms {int(row['atoms_before'])}"
                    f"->{int(row['atoms_after'])}"
                )
            aborted = (
                f" aborted={int(row['aborted'])}" if row["aborted"] else ""
            )
            out.append(
                f"  {name:<{width}}  runs={int(row['runs']):<6d} "
                f"rewrites={int(row['rewrites']):<6d}{atoms}{aborted}"
            )
        out.append("")
    serving = summary.serving()
    if serving:
        out.append("Serving:")
        request_span = summary.spans.get("serve.request")
        if request_span is not None:
            out.append(
                f"  requests: n={request_span.count} "
                f"mean={request_span.mean_seconds:.6f}s "
                f"max={request_span.max_seconds:.6f}s"
            )
        parts = []
        for metric in (
            "submitted",
            "completed",
            "collapsed",
            "shed",
            "timeout",
            "error",
            "cancelled",
        ):
            if metric in serving:
                parts.append(f"{metric}={int(serving[metric])}")
        if parts:
            out.append("  " + "  ".join(parts))
        if "batch_calls" in serving:
            factor = serving.get("coalescing_factor", 1.0)
            out.append(
                f"  batching: {int(serving.get('batch_requests', 0))} "
                f"scoring requests in {int(serving['batch_calls'])} "
                f"predict_batch calls "
                f"({int(serving.get('batch_rows', 0))} rows, "
                f"coalescing factor {factor:.2f})"
            )
        out.append("")
    transport = summary.transport()
    if transport:
        out.append("Transport:")
        frames_in = int(transport.get("frames_in", 0))
        frames_out = int(transport.get("frames_out", 0))
        bytes_in = int(transport.get("bytes_in", 0))
        bytes_out = int(transport.get("bytes_out", 0))
        if frames_in or frames_out:
            out.append(
                f"  frames: in={frames_in} out={frames_out} "
                f"(bytes in={bytes_in} out={bytes_out})"
            )
        request_names = sorted(
            key[len("requests_"):]
            for key in transport
            if key.startswith("requests_")
        )
        for name in request_names:
            count = int(transport[f"requests_{name}"])
            out.append(f"  requests[{name}]: {count}")
        if "respawns" in transport:
            out.append(
                f"  worker respawns: {int(transport['respawns'])}"
            )
        out.append("")
    load = summary.load()
    if load:
        out.append("Load / SLO:")
        parts = []
        for metric in (
            "issued",
            "ok",
            "late",
            "shed",
            "queued_timeout",
            "error",
        ):
            if metric in load:
                parts.append(f"{metric}={int(load[metric])}")
        if parts:
            out.append("  " + "  ".join(parts))
        if "offered_rate" in load or "goodput" in load:
            out.append(
                "  offered "
                f"{load.get('offered_rate', 0.0):.1f} req/s -> goodput "
                f"{load.get('goodput', 0.0):.1f} req/s "
                f"(miss rate {load.get('miss_rate', 0.0):.1%}, "
                f"shed rate {load.get('shed_rate', 0.0):.1%})"
            )
        if "latency_p99" in load:
            out.append(
                "  latency p50="
                f"{load.get('latency_p50', 0.0) * 1000:.2f}ms "
                f"p95={load.get('latency_p95', 0.0) * 1000:.2f}ms "
                f"p99={load['latency_p99'] * 1000:.2f}ms"
            )
        if "jitter_p99" in load:
            out.append(
                "  jitter  p50="
                f"{load.get('jitter_p50', 0.0) * 1000:.2f}ms "
                f"p95={load.get('jitter_p95', 0.0) * 1000:.2f}ms "
                f"p99={load['jitter_p99'] * 1000:.2f}ms"
            )
        out.append("")
    segments = summary.segments()
    if segments:
        out.append("Segment matching:")
        match_span = summary.spans.get("segments.match")
        if match_span is not None:
            out.append(
                f"  matches: n={match_span.count} "
                f"mean={match_span.mean_seconds:.6f}s "
                f"max={match_span.max_seconds:.6f}s"
            )
        if "masks_computed" in segments or "masks_shared" in segments:
            share = segments.get("share_rate", 0.0)
            out.append(
                f"  masks: {int(segments.get('masks_computed', 0))} "
                f"computed, {int(segments.get('masks_shared', 0))} "
                f"shared (share rate {share:.1%})"
            )
        if "constants_skipped" in segments:
            out.append(
                "  constant segments skipped: "
                f"{int(segments['constants_skipped'])}"
            )
        if "batch_calls" in segments:
            factor = segments.get("coalescing_factor", 1.0)
            out.append(
                f"  batching: {int(segments.get('batch_requests', 0))} "
                f"match requests in {int(segments['batch_calls'])} "
                f"evaluations "
                f"({int(segments.get('batch_rows', 0))} rows, "
                f"coalescing factor {factor:.2f})"
            )
        out.append("")
    disjunction = summary.disjunction()
    if disjunction:
        out.append("Disjunction execution:")
        if (
            "masks_computed" in disjunction
            or "masks_shared" in disjunction
        ):
            share = disjunction.get("share_rate", 0.0)
            out.append(
                f"  masks: {int(disjunction.get('masks_computed', 0))} "
                f"computed, {int(disjunction.get('masks_shared', 0))} "
                f"shared (share rate {share:.1%})"
            )
        if "plan_hit" in disjunction or "plan_miss" in disjunction:
            rate = disjunction.get("plan_hit_rate", 0.0)
            out.append(
                f"  operand plans: {int(disjunction.get('plan_hit', 0))} "
                f"reused, {int(disjunction.get('plan_miss', 0))} "
                f"planned (reuse rate {rate:.1%})"
            )
        if "union_lowerings" in disjunction:
            out.append(
                "  union lowerings adopted: "
                f"{int(disjunction['union_lowerings'])}"
            )
        out.append("")
    rates = summary.hit_rates()
    out.append("Cache hit rates:")
    if rates:
        for name, rate in rates.items():
            hits = summary.counters.get(name + ".hit", 0.0)
            misses = summary.counters.get(name + ".miss", 0.0)
            out.append(
                f"  {name}: {rate:6.1%} "
                f"({int(hits)} hits / {int(misses)} misses)"
            )
    else:
        out.append("  (none)")
    if summary.counters:
        out.append("")
        out.append("Counters:")
        for name in sorted(summary.counters):
            out.append(f"  {name} = {summary.counters[name]:g}")
    if summary.gauges:
        out.append("")
        out.append("Gauges:")
        for name in sorted(summary.gauges):
            out.append(f"  {name} = {summary.gauges[name]:g}")
    if summary.malformed:
        out.append("")
        out.append("Malformed lines:")
        for description in summary.malformed[:10]:
            out.append(f"  {description}")
        if len(summary.malformed) > 10:
            out.append(f"  ... {len(summary.malformed) - 10} more")
    return "\n".join(out)
