"""Zero-dependency span tracer and metrics registry.

The query lifecycle (envelope derivation, optimization, plan capture,
statistics, execution) emits *spans* — named, timed, optionally nested
intervals with free-form attributes — plus *counters* (monotonic sums),
*gauges* (last value wins), and typed *records* (e.g. the
estimator-accuracy records compared by ``trace-report``).  Everything
serializes to JSON-lines files, one file per process, so the parallel
sweep's worker processes never contend on a shared sink and a trace
directory can be merged by reading its files in sorted order (the same
per-task sharding the sweep cache uses).

Tracing is **off by default** and the disabled path is engineered to cost
nothing measurable: :func:`span` returns a shared no-op context manager,
and :func:`add_counter` / :func:`record` return after one global check.
Enable it with :func:`configure` (the CLI's ``--trace DIR``) or the
``REPRO_TRACE_DIR`` environment variable.

Span ids are unique across threads and processes (``pid.thread.seq``);
nesting is tracked per thread, and durations come from
``time.perf_counter`` (monotonic), never the wall clock.  A tracer
inherited through ``fork`` refuses to write to its parent's file — worker
processes must configure their own sink, which
:mod:`repro.experiments.parallel` does per task.
"""

from __future__ import annotations

import atexit
import itertools
import json
import os
import threading
import time
from collections.abc import Iterator, Mapping
from contextlib import contextmanager
from pathlib import Path
from typing import Any, TextIO

#: Environment variable naming the trace directory (same as ``--trace``).
ENV_TRACE_DIR = "REPRO_TRACE_DIR"

#: Suffix of every trace file a tracer writes.
TRACE_SUFFIX = ".jsonl"


class Span:
    """One live span; set attributes via :meth:`set` before it closes."""

    __slots__ = ("name", "span_id", "parent_id", "attrs", "seconds")

    def __init__(
        self, name: str, span_id: str, parent_id: str | None, attrs: dict
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.seconds = 0.0

    def set(self, key: str, value: Any) -> None:
        """Attach one attribute to the span."""
        self.attrs[key] = value

    def update(self, **attrs: Any) -> None:
        """Attach several attributes at once."""
        self.attrs.update(attrs)


class _NoopSpan:
    """Shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def set(self, key: str, value: Any) -> None:
        pass

    def update(self, **attrs: Any) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class _NoopContext:
    """Reusable context manager yielding the no-op span (no generator)."""

    __slots__ = ()

    def __enter__(self) -> _NoopSpan:
        return _NOOP_SPAN

    def __exit__(self, *exc_info: object) -> None:
        return None


_NOOP_CONTEXT = _NoopContext()


class Tracer:
    """Writes spans, counters, gauges, and records to one JSON-lines file.

    Counters accumulate in memory and are written as delta records by
    :meth:`flush` (called automatically by :meth:`close`, which runs at
    interpreter exit); everything else is written as it happens.  All
    methods are thread-safe; writes from a forked child are dropped so a
    tracer never corrupts its parent's file.
    """

    def __init__(self, directory: str | Path, label: str | None = None) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._pid = os.getpid()
        self.label = label if label is not None else f"pid{self._pid}"
        self.path = self.directory / f"trace_{self.label}{TRACE_SUFFIX}"
        self._lock = threading.Lock()
        self._file: TextIO | None = None
        self._closed = False
        self._counters: dict[str, float] = {}
        self._sequence = itertools.count(1)
        self._local = threading.local()
        atexit.register(self.close)

    # -- identity ----------------------------------------------------------

    def _next_span_id(self) -> str:
        return (
            f"{self._pid:x}.{threading.get_ident():x}."
            f"{next(self._sequence):x}"
        )

    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    # -- emission ----------------------------------------------------------

    def _emit(self, payload: dict) -> None:
        if self._closed or os.getpid() != self._pid:
            # Forked child inherited this tracer: never write to the
            # parent's file.  The child must configure its own sink.
            return
        line = json.dumps(payload, default=str, separators=(",", ":"))
        with self._lock:
            if self._closed:
                return
            if self._file is None:
                self._file = self.path.open("a", encoding="utf-8")
            self._file.write(line + "\n")
            self._file.flush()

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        stack = self._stack()
        parent_id = stack[-1] if stack else None
        live = Span(name, self._next_span_id(), parent_id, attrs)
        stack.append(live.span_id)
        started = time.perf_counter()
        try:
            yield live
        finally:
            live.seconds = time.perf_counter() - started
            stack.pop()
            payload = {
                "type": "span",
                "name": live.name,
                "span_id": live.span_id,
                "ts": time.time(),
                "seconds": live.seconds,
            }
            if live.parent_id is not None:
                payload["parent_id"] = live.parent_id
            if live.attrs:
                payload["attrs"] = live.attrs
            self._emit(payload)

    def event(self, name: str, **attrs: Any) -> None:
        payload: dict[str, Any] = {
            "type": "event",
            "name": name,
            "ts": time.time(),
        }
        stack = self._stack()
        if stack:
            payload["parent_id"] = stack[-1]
        if attrs:
            payload["attrs"] = attrs
        self._emit(payload)

    def record(self, record_type: str, **fields: Any) -> None:
        payload: dict[str, Any] = {"type": record_type, "ts": time.time()}
        payload.update(fields)
        self._emit(payload)

    def add_counter(self, name: str, amount: float = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        self._emit({"type": "gauge", "name": name, "value": value})

    def flush(self) -> None:
        """Write accumulated counter deltas and sync the file."""
        with self._lock:
            deltas = dict(self._counters)
            self._counters.clear()
        for name in sorted(deltas):
            self._emit(
                {"type": "counter", "name": name, "value": deltas[name]}
            )

    def close(self) -> None:
        """Flush and close; safe to call more than once."""
        if self._closed:
            return
        self.flush()
        with self._lock:
            self._closed = True
            if self._file is not None:
                self._file.close()
                self._file = None


# ---------------------------------------------------------------------------
# Module-level API (what instrumented code calls)
# ---------------------------------------------------------------------------

_TRACER: Tracer | None = None
_ENV_CHECKED = False
_STATE_LOCK = threading.Lock()


def configure(
    directory: str | Path | None, label: str | None = None
) -> Tracer | None:
    """Enable tracing into ``directory`` (``None`` disables it).

    The previous tracer, if any, is flushed and closed.  Returns the new
    tracer (or ``None`` when disabling).
    """
    global _TRACER, _ENV_CHECKED
    with _STATE_LOCK:
        previous = _TRACER
        _ENV_CHECKED = True  # explicit configuration beats the env var
        _TRACER = None
    if previous is not None:
        previous.close()
    if directory is None:
        return None
    tracer = Tracer(directory, label=label)
    with _STATE_LOCK:
        _TRACER = tracer
    return tracer


def current() -> Tracer | None:
    """The active tracer, initializing from ``REPRO_TRACE_DIR`` once."""
    global _ENV_CHECKED
    tracer = _TRACER
    if tracer is not None or _ENV_CHECKED:
        return tracer
    with _STATE_LOCK:
        _ENV_CHECKED = True
    directory = os.environ.get(ENV_TRACE_DIR)
    if not directory:
        return None
    return configure(directory)


def enabled() -> bool:
    """Whether tracing is active (one cheap check; safe on hot paths)."""
    return current() is not None


def trace_directory() -> Path | None:
    """Directory of the active tracer (workers inherit it per task)."""
    tracer = current()
    return tracer.directory if tracer is not None else None


def span(name: str, **attrs: Any):
    """Context manager timing one lifecycle phase as a span.

    Disabled tracing returns a shared, allocation-free no-op context; the
    yielded object always supports ``set``/``update``.
    """
    tracer = current()
    if tracer is None:
        return _NOOP_CONTEXT
    return tracer.span(name, **attrs)


def event(name: str, **attrs: Any) -> None:
    """Emit a point-in-time event (no duration)."""
    tracer = current()
    if tracer is not None:
        tracer.event(name, **attrs)


def record(record_type: str, **fields: Any) -> None:
    """Emit a typed record (e.g. ``estimator_accuracy``)."""
    tracer = current()
    if tracer is not None:
        tracer.record(record_type, **fields)


def add_counter(name: str, amount: float = 1) -> None:
    """Accumulate a counter delta (written on flush)."""
    tracer = current()
    if tracer is not None:
        tracer.add_counter(name, amount)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge (last value wins in reports)."""
    tracer = current()
    if tracer is not None:
        tracer.set_gauge(name, value)


def flush() -> None:
    """Flush the active tracer's accumulated counters, if any."""
    tracer = current()
    if tracer is not None:
        tracer.flush()


def counters_snapshot() -> Mapping[str, float]:
    """Unflushed counter values of the active tracer (tests/debugging)."""
    tracer = current()
    if tracer is None:
        return {}
    with tracer._lock:
        return dict(tracer._counters)
