"""Segment matching: predicate-set evaluation with shared-mask caching.

The paper's machinery carries *one* mining predicate per query; the
inverse shape — streaming row batches against thousands of registered
segment definitions (targeting, alerting, routing) — is the high-QPS
serving workload this package owns:

* :mod:`repro.segments.catalog` — :class:`SegmentCatalog`, a named,
  versioned store of segment definitions: envelope-deriving for
  model-backed segments, plain predicate IR for hand-written ones, all
  simplified and interned at registration so equal subtrees across
  segments are ``is``-identical.
* :mod:`repro.segments.evaluator` — :class:`PredicateSetEvaluator`,
  which answers "which segments does this batch belong to?" through a
  per-batch shared-mask cache keyed on interned node identity: each
  distinct subtree is evaluated once per batch and its mask reused by
  every segment envelope containing it.
* :mod:`repro.segments.batcher` — :class:`MatchBatcher`, opportunistic
  cross-request coalescing of concurrent match calls (the serving
  micro-batcher idiom applied to predicate-set evaluation).
* :mod:`repro.segments.bench` — the ``segment-bench`` CLI artifact
  comparing shared-mask against naive per-segment evaluation.

The sharing is sound because batch lowering is bit-identical to scalar
``evaluate`` (property-tested in ``tests/property``): a mask computed
for a node under one segment is *the* truth vector of that node, so any
other segment may reuse it.
"""

from repro.segments.batcher import MatchBatcher
from repro.segments.catalog import SegmentCatalog, SegmentDef
from repro.segments.evaluator import (
    MaskCacheStats,
    PredicateSetEvaluator,
    SegmentMatches,
)

__all__ = [
    "MaskCacheStats",
    "MatchBatcher",
    "PredicateSetEvaluator",
    "SegmentCatalog",
    "SegmentDef",
    "SegmentMatches",
]
