"""Cross-request coalescing of segment-match calls.

The serving micro-batcher idiom applied to predicate-set evaluation:
concurrent ``match_segments`` requests against the *same* evaluator
snapshot enqueue their rows, a single evaluator thread drains whatever
is pending, concatenates the rows into one :class:`ColumnBatch`, runs
**one** shared-mask match, and slices each request its own memberships
back.  The win compounds with the evaluator's own sharing: the fixed
per-batch cost (one kernel dispatch per *distinct* interned node) is
paid once for the whole coalesced group instead of once per request.

Correctness: predicate evaluation is row-independent — a row's segment
memberships cannot depend on which other rows share its batch — so
concatenate-match-slice is bit-identical to matching each request alone
(regression-tested in ``tests/segments/test_service_match.py``).

Requests coalesce only when they agree on the *group key*: the catalog
version and the requested segment-name tuple.  Mixing snapshots would
silently answer one request from another's segment set; mixing name
subsets would mislabel slices.  Counters mirror the serving batcher:
``segments.batch.requests``, ``segments.batch.calls``,
``segments.batch.rows``, ``segments.batch.coalesced``.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro import obs
from repro.core.columns import ColumnBatch
from repro.exceptions import ServiceStoppedError
from repro.segments.catalog import SegmentCatalog
from repro.segments.evaluator import PredicateSetEvaluator, SegmentMatches

if TYPE_CHECKING:
    from repro.mining.base import Row

#: Group key: (catalog version, requested names or None for "all").
_GroupKey = tuple[int, "tuple[str, ...] | None"]


class _Pending:
    """One request's match work: rows in, a memberships slice out."""

    __slots__ = ("rows", "done", "result", "error", "coalesced")

    def __init__(self, rows: "Sequence[Row]") -> None:
        self.rows = rows
        self.done = threading.Event()
        self.result: SegmentMatches | None = None
        self.error: BaseException | None = None
        self.coalesced = False


class MatchBatcher:
    """Coalesces concurrent segment-match calls per catalog snapshot.

    One evaluator thread serializes all matching.  Evaluator snapshots
    are cached per group key and dropped the moment the catalog version
    moves, so a register/retire between batches is picked up on the next
    drain.  Stop via :meth:`stop` (idempotent); stopping fails all
    waiters with :class:`~repro.exceptions.ServiceStoppedError`.
    """

    def __init__(
        self, catalog: SegmentCatalog, window: float = 0.0
    ) -> None:
        if window < 0:
            raise ValueError(f"window must be >= 0, got {window}")
        self._catalog = catalog
        self._window = window
        self._cond = threading.Condition()
        self._pending: dict[_GroupKey, list[_Pending]] = {}
        self._evaluators: dict[_GroupKey, PredicateSetEvaluator] = {}
        self._stopped = False
        #: Lifetime totals, mirrored as ``segments.batch.*`` counters.
        self.calls = 0
        self.requests = 0
        self.rows_matched = 0
        self.coalesced = 0
        self._thread = threading.Thread(
            target=self._loop, name="repro-segment-batcher", daemon=True
        )
        self._thread.start()

    # -- request side ------------------------------------------------------

    def match(
        self,
        rows: "Sequence[Row]",
        names: "Sequence[str] | None" = None,
    ) -> tuple[SegmentMatches, bool]:
        """Memberships for ``rows`` — possibly via a shared evaluation.

        Returns ``(matches, coalesced)`` where ``coalesced`` reports
        whether this request shared its evaluation with others.  Blocks
        until the evaluator thread has produced this request's slice;
        evaluation errors propagate unchanged.
        """
        key: _GroupKey = (
            self._catalog.version,
            tuple(names) if names is not None else None,
        )
        item = _Pending(rows)
        with self._cond:
            if self._stopped:
                raise ServiceStoppedError("segment batcher is stopped")
            self._pending.setdefault(key, []).append(item)
            self._cond.notify()
        item.done.wait()
        if item.error is not None:
            raise item.error
        assert item.result is not None
        return item.result, item.coalesced

    # -- evaluator side ----------------------------------------------------

    def _loop(self) -> None:
        while True:
            with self._cond:
                while not self._pending and not self._stopped:
                    self._cond.wait()
                if not self._stopped and self._window > 0:
                    # Bounded accumulation window, as in MicroBatcher:
                    # wait (lock released) so nearby arrivals join this
                    # drain; the deadline caps the added latency.
                    deadline = time.monotonic() + self._window
                    while not self._stopped:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            break
                        self._cond.wait(remaining)
                if self._stopped:
                    work = self._pending
                    self._pending = {}
                    for items in work.values():
                        for item in items:
                            item.error = ServiceStoppedError(
                                "segment batcher stopped before matching"
                            )
                            item.done.set()
                    return
                work, self._pending = self._pending, {}
            for key, items in work.items():
                self._match_group(key, items)

    def _evaluator(self, key: _GroupKey) -> PredicateSetEvaluator:
        cached = self._evaluators.get(key)
        if cached is not None and cached.catalog_version == key[0]:
            return cached
        # If the catalog moved between enqueue and drain, the group
        # evaluates against the now-current snapshot — still consistent
        # (every request in the group sees the same definitions, and the
        # name tuple in the key rules out slice mislabeling), just at a
        # point after the catalog change.
        evaluator = PredicateSetEvaluator(self._catalog, key[1])
        live = evaluator.catalog_version
        # Keep only snapshots of the live version; stale ones can never
        # satisfy a future lookup (the version check above rejects them).
        self._evaluators = {
            k: v
            for k, v in self._evaluators.items()
            if v.catalog_version == live
        }
        self._evaluators[key] = evaluator
        return evaluator

    def _match_group(
        self, key: _GroupKey, items: "list[_Pending]"
    ) -> None:
        try:
            evaluator = self._evaluator(key)
            if len(items) == 1:
                rows: Sequence = items[0].rows
            else:
                rows = [row for item in items for row in item.rows]
            with obs.span(
                "segments.batch.match",
                requests=len(items),
                rows=len(rows),
                segments=len(evaluator),
            ):
                matches = evaluator.match(ColumnBatch(rows))
            offset = 0
            for item in items:
                width = len(item.rows)
                if len(items) == 1:
                    item.result = matches
                else:
                    item.result = SegmentMatches(
                        names=matches.names,
                        masks=tuple(
                            mask[offset : offset + width]
                            for mask in matches.masks
                        ),
                        memberships=matches.memberships[
                            offset : offset + width
                        ],
                        stats=matches.stats,
                        catalog_version=matches.catalog_version,
                    )
                    item.coalesced = True
                offset += width
            self.calls += 1
            self.requests += len(items)
            self.rows_matched += len(rows)
            obs.add_counter("segments.batch.requests", len(items))
            obs.add_counter("segments.batch.calls")
            obs.add_counter("segments.batch.rows", len(rows))
            if len(items) > 1:
                self.coalesced += len(items)
                obs.add_counter("segments.batch.coalesced", len(items))
        except BaseException as error:  # propagate to every waiter
            for item in items:
                item.error = error
        finally:
            for item in items:
                item.done.set()

    def stop(self) -> None:
        """Stop the evaluator; pending and future requests fail typed."""
        with self._cond:
            if self._stopped:
                return
            self._stopped = True
            self._cond.notify_all()
        self._thread.join()

    def __enter__(self) -> "MatchBatcher":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
