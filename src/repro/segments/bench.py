"""Segment-matching benchmark (the ``segment-bench`` CLI artifact).

Measures what the shared-mask cache buys over naive per-segment
evaluation on the workload the segments package exists for: a large
catalog (≥1000 segments by default) matched against a stream of row
batches.  The catalog mixes the two registration paths — model-backed
segments derived as upper envelopes of trained families, and
hand-written segments drawn from a seeded pool of a few hundred shared
atoms (threshold comparisons and intervals over the dataset's feature
columns), composed into shared conjuncts and then ORs of conjuncts.
That pool structure mirrors production segment catalogs, where
campaigns and alerts are assembled from a common vocabulary of
qualifying conditions, so subtree overlap across segments is the norm.

The **naive** baseline evaluates every segment independently through
the standard batch lowering (``evaluate_batch`` per segment per batch);
**shared** runs the same batches through one
:class:`~repro.segments.evaluator.PredicateSetEvaluator`.  Both paths'
row memberships are compared for exact equality on every batch — the
speedup is only reported if the answers are byte-identical.

``run_segment_bench`` returns the JSON-ready payload written to
``BENCH_segment_matching.json`` by ``python -m repro segment-bench``.
"""

from __future__ import annotations

import time
from itertools import islice

import numpy as np

from repro import obs
from repro.core.columns import ColumnBatch
from repro.core.predicates import (
    And,
    Comparison,
    FalsePredicate,
    Interval,
    Op,
    Or,
    Predicate,
    TruePredicate,
)
from repro.exceptions import ReproError
from repro.experiments.config import ExperimentConfig, SMOKE_CONFIG
from repro.experiments.harness import (
    dataset_for,
    numeric_feature_columns,
    train_family,
)
from repro.ir.batch import evaluate_batch
from repro.segments.catalog import SegmentCatalog
from repro.segments.evaluator import PredicateSetEvaluator, _memberships
from repro.workload.measurement import (
    FAMILY_DECISION_TREE,
    FAMILY_NAIVE_BAYES,
)

#: Shared vocabulary sizes: distinct atoms, conjuncts built from them.
ATOM_POOL = 200
CONJUNCT_POOL = 400


def build_atom_pool(
    columns: tuple[str, ...],
    rows: list[dict],
    size: int,
    rng: np.random.Generator,
) -> list[Predicate]:
    """``size`` distinct threshold/interval atoms over real quantiles.

    Cut points come from the observed per-column distributions so the
    atoms have non-degenerate selectivities, and every atom is a plain
    IR object — catalog registration interns them, which is what turns
    pool reuse into pointer-identical subtrees across segments.
    """
    per_column = {
        column: np.quantile(
            np.asarray([float(row[column]) for row in rows]),
            np.linspace(0.05, 0.95, 19),
        )
        for column in columns
    }
    atoms: list[Predicate] = []
    while len(atoms) < size:
        column = columns[int(rng.integers(len(columns)))]
        cuts = per_column[column]
        kind = int(rng.integers(3))
        if kind == 0:
            value = float(cuts[int(rng.integers(len(cuts)))])
            atoms.append(Comparison(column, Op.GE, value))
        elif kind == 1:
            value = float(cuts[int(rng.integers(len(cuts)))])
            atoms.append(Comparison(column, Op.LT, value))
        else:
            lo, hi = sorted(
                float(cuts[int(i)])
                for i in rng.integers(len(cuts), size=2)
            )
            if lo == hi:
                continue
            atoms.append(Interval(column, lo, hi, True, False))
    return atoms


def build_catalog(
    config: ExperimentConfig,
    dataset_name: str,
    segments: int,
    rng: np.random.Generator,
) -> tuple[SegmentCatalog, list[dict], dict]:
    """A mixed catalog: model-backed envelopes + pooled hand-written.

    Returns the catalog, the dataset's training rows (the row stream
    source), and build metadata for the payload.
    """
    dataset = dataset_for(config, dataset_name)
    catalog = SegmentCatalog(max_nodes=config.max_nodes, bins=config.nb_bins)

    model_segments = 0
    for family in (FAMILY_DECISION_TREE, FAMILY_NAIVE_BAYES):
        trained = train_family(dataset, family, config)
        for label in sorted(trained.envelopes, key=str):
            catalog.register_envelope(
                f"{trained.model.name}/{label}", trained.envelopes[label]
            )
            model_segments += 1

    columns = numeric_feature_columns(dataset)
    if not columns:
        raise ReproError(
            f"dataset {dataset_name!r} has no numeric feature columns"
        )
    rows = list(dataset.train_rows)
    atoms = build_atom_pool(columns, rows, ATOM_POOL, rng)
    conjuncts: list[Predicate] = []
    for _ in range(CONJUNCT_POOL):
        width = int(rng.integers(2, 4))
        picked = rng.choice(len(atoms), size=width, replace=False)
        conjuncts.append(And(tuple(atoms[int(i)] for i in picked)))
    hand_written = segments - model_segments
    for index in range(hand_written):
        width = int(rng.integers(2, 5))
        picked = rng.choice(len(conjuncts), size=width, replace=False)
        catalog.register(
            f"pool/{index:04d}",
            Or(tuple(conjuncts[int(i)] for i in picked)),
        )
    meta = {
        "dataset": dataset.name,
        "model_segments": model_segments,
        "hand_written_segments": hand_written,
        "atom_pool": ATOM_POOL,
        "conjunct_pool": CONJUNCT_POOL,
        "feature_columns": list(columns),
    }
    return catalog, rows, meta


def _row_batches(
    rows: list[dict], total: int, batch_size: int
) -> list[ColumnBatch]:
    """``total`` rows in ``batch_size`` chunks, cycling the dataset."""
    repeats = -(-total // len(rows))
    stream = (rows * repeats)[:total]
    return [
        ColumnBatch(stream[start : start + batch_size])
        for start in range(0, total, batch_size)
    ]


def _naive_match(
    evaluator: PredicateSetEvaluator, batch: ColumnBatch
) -> tuple[tuple[str, ...], ...]:
    """Per-segment independent evaluation: the no-sharing baseline."""
    n = len(batch)
    masks = []
    for definition in evaluator.definitions:
        predicate = definition.predicate
        if isinstance(predicate, TruePredicate):
            masks.append(np.ones(n, dtype=bool))
        elif isinstance(predicate, FalsePredicate):
            masks.append(np.zeros(n, dtype=bool))
        else:
            masks.append(evaluate_batch(predicate, batch))
    return _memberships(evaluator.names, tuple(masks), n)


def run_segment_bench(
    config: ExperimentConfig | None = None,
    dataset_name: str = "diabetes",
    segments: int = 1000,
    rows: int = 8192,
    batch_size: int = 512,
    seed: int = 7,
) -> dict:
    """The full benchmark: build, naive baseline, shared run, verify."""
    config = config or SMOKE_CONFIG
    rng = np.random.default_rng(seed)
    with obs.span(
        "segments.bench", segments=segments, rows=rows
    ):
        catalog, source_rows, meta = build_catalog(
            config, dataset_name, segments, rng
        )
        evaluator = PredicateSetEvaluator(catalog)
        batches = _row_batches(source_rows, rows, batch_size)

        # Warm both paths' column caches off the clock, on a throwaway
        # batch, so neither side pays the first-touch astype cost.
        warmup = next(islice(iter(batches), 1))
        _naive_match(evaluator, warmup)
        evaluator.match(warmup)

        started = time.perf_counter()
        naive_results = [
            _naive_match(evaluator, batch) for batch in batches
        ]
        naive_seconds = time.perf_counter() - started

        started = time.perf_counter()
        shared_results = [evaluator.match(batch) for batch in batches]
        shared_seconds = time.perf_counter() - started

        mismatched = sum(
            1
            for naive, shared in zip(naive_results, shared_results)
            if naive != shared.memberships
        )
        if mismatched:
            raise ReproError(
                f"segment-bench: {mismatched}/{len(batches)} batches "
                "diverge between shared-mask and naive evaluation"
            )

        computed = sum(r.stats.computed for r in shared_results)
        shared_hits = sum(r.stats.shared for r in shared_results)
        structure = evaluator.sharing_stats()
        return {
            "benchmark": "segment_matching",
            **meta,
            "segments": len(catalog),
            "rows": rows,
            "batch_size": batch_size,
            "batches": len(batches),
            "seed": seed,
            "naive": {
                "seconds": round(naive_seconds, 4),
                "rows_per_second": round(rows / naive_seconds, 1),
            },
            "shared": {
                "seconds": round(shared_seconds, 4),
                "rows_per_second": round(rows / shared_seconds, 1),
                "masks_computed": computed,
                "masks_shared": shared_hits,
                "share_ratio": round(
                    shared_hits / (computed + shared_hits), 4
                ),
            },
            "speedup": round(naive_seconds / shared_seconds, 3),
            "structure": structure,
            "memberships_identical": True,
        }
