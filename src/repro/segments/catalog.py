"""Named, versioned segment definitions over the predicate IR.

A *segment* is a reusable membership predicate — "high-risk customers in
the north region", "cluster 2 of the spend model" — registered once and
then matched against millions of streamed rows.  Two registration paths
feed the same store:

* **hand-written** segments register a predicate-IR tree directly
  (:meth:`SegmentCatalog.register`), and
* **model-backed** segments derive the upper envelope of one class of a
  mining model (:meth:`SegmentCatalog.register_model` /
  :meth:`register_envelope`), the paper's Section 3 machinery put to a
  new use: the envelope *is* the segment definition.

Every published predicate runs the staged simplification pipeline and is
interned into the IR table at registration.  Interning is what makes the
shared-mask evaluator work: equal subtrees across different segments
collapse to one ``is``-identical object, so a mask computed for a node
under one segment is reusable by every other segment containing it.
Simplification also realizes constant envelopes (TRUE/FALSE), which the
evaluator short-circuits without any per-row work.

Re-registering a name bumps that segment's version; every mutation bumps
the catalog-wide :attr:`SegmentCatalog.version`, the staleness token the
serving layer keys evaluator caches and request collapsing on.
"""

from __future__ import annotations

import threading
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, replace

from repro import obs
from repro.core.derive import derive_envelopes
from repro.core.envelope import UpperEnvelope
from repro.core.nb_envelope import DEFAULT_MAX_NODES
from repro.core.predicates import (
    FalsePredicate,
    Predicate,
    TruePredicate,
    Value,
    atom_count,
)
from repro.exceptions import SegmentError
from repro.ir import fingerprint as ir_fingerprint
from repro.ir import intern, simplify_pipeline
from repro.mining.base import MiningModel, Row


@dataclass(frozen=True)
class SegmentDef:
    """One registered segment: an interned membership predicate.

    ``source`` tags how the predicate was produced (``"predicate"`` for
    hand-written IR, ``"model"`` for a derived envelope); model-backed
    segments also carry their model name and class label.  ``exact`` is
    the envelope's exactness for model-backed segments (a decision-tree
    envelope admits exactly the predicted rows) and always ``True`` for
    hand-written ones (the predicate *is* the definition).
    """

    name: str
    version: int
    predicate: Predicate
    fingerprint: str
    source: str
    model_name: str | None = None
    class_label: Value | None = None
    exact: bool = True

    @property
    def is_constant(self) -> bool:
        """True when the predicate simplified to TRUE or FALSE."""
        return isinstance(self.predicate, (TruePredicate, FalsePredicate))

    @property
    def n_atoms(self) -> int:
        """Atom count of the interned predicate (a complexity measure)."""
        if self.is_constant:
            return 0
        return atom_count(self.predicate)


class SegmentCatalog:
    """Thread-safe register/retire store of :class:`SegmentDef` entries.

    Iteration order of :meth:`definitions` is registration order (stable
    across re-registrations of an existing name), so evaluation results
    are deterministic.  All mutating operations serialize on one lock;
    reads take it briefly to snapshot.
    """

    def __init__(
        self,
        max_nodes: int = DEFAULT_MAX_NODES,
        bins: int = 8,
    ) -> None:
        self._max_nodes = max_nodes
        self._bins = bins
        self._lock = threading.RLock()
        self._defs: dict[str, SegmentDef] = {}
        self._order: list[str] = []
        self._version = 0

    # -- registration ------------------------------------------------------

    def register(self, name: str, predicate: Predicate) -> SegmentDef:
        """Register (or replace) a hand-written segment predicate."""
        published = intern(simplify_pipeline(predicate))
        return self._publish(
            SegmentDef(
                name=name,
                version=1,
                predicate=published,
                fingerprint=ir_fingerprint(published),
                source="predicate",
            )
        )

    def register_envelope(
        self, name: str, envelope: UpperEnvelope
    ) -> SegmentDef:
        """Register a segment from an already-derived upper envelope."""
        published = intern(simplify_pipeline(envelope.predicate))
        return self._publish(
            SegmentDef(
                name=name,
                version=1,
                predicate=published,
                fingerprint=ir_fingerprint(published),
                source="model",
                model_name=envelope.model_name,
                class_label=envelope.class_label,
                exact=envelope.exact,
            )
        )

    def register_model(
        self,
        model: MiningModel,
        labels: Iterable[Value] | None = None,
        prefix: str | None = None,
        rows: Sequence[Row] | None = None,
    ) -> tuple[SegmentDef, ...]:
        """Derive envelopes for ``model`` and register one segment per class.

        Segments are named ``<prefix>/<label>`` (``prefix`` defaults to
        the model name).  ``labels`` restricts registration to a subset
        of classes; unknown labels raise :class:`SegmentError` rather
        than silently registering nothing.
        """
        envelopes = derive_envelopes(
            model,
            rows=rows,
            max_nodes=self._max_nodes,
            bins=self._bins,
        )
        if labels is None:
            chosen = sorted(envelopes, key=str)
        else:
            chosen = list(labels)
            missing = [label for label in chosen if label not in envelopes]
            if missing:
                raise SegmentError(
                    f"model {model.name!r} has no class {missing[0]!r}; "
                    f"classes: {sorted(envelopes, key=str)}"
                )
        base = prefix if prefix is not None else model.name
        return tuple(
            self.register_envelope(f"{base}/{label}", envelopes[label])
            for label in chosen
        )

    def _publish(self, definition: SegmentDef) -> SegmentDef:
        with self._lock:
            existing = self._defs.get(definition.name)
            if existing is not None:
                definition = replace(
                    definition, version=existing.version + 1
                )
            else:
                self._order.append(definition.name)
            self._defs[definition.name] = definition
            self._version += 1
            obs.event(
                "segments.register",
                segment=definition.name,
                version=definition.version,
                source=definition.source,
                atoms=definition.n_atoms,
            )
            return definition

    # -- retirement --------------------------------------------------------

    def retire(self, name: str) -> SegmentDef:
        """Remove a segment; later lookups raise :class:`SegmentError`."""
        with self._lock:
            definition = self._defs.pop(name, None)
            if definition is None:
                raise SegmentError(
                    f"no segment named {name!r}; registered: {self.names()}"
                )
            self._order.remove(name)
            self._version += 1
            obs.event("segments.retire", segment=name)
            return definition

    # -- lookup ------------------------------------------------------------

    def definition(self, name: str) -> SegmentDef:
        with self._lock:
            try:
                return self._defs[name]
            except KeyError:
                raise SegmentError(
                    f"no segment named {name!r}; registered: {self.names()}"
                ) from None

    def definitions(
        self, names: Sequence[str] | None = None
    ) -> tuple[SegmentDef, ...]:
        """Definitions in registration order, or the named subset in the
        given order (unknown names raise)."""
        with self._lock:
            if names is None:
                return tuple(self._defs[name] for name in self._order)
        return tuple(self.definition(name) for name in names)

    def names(self) -> list[str]:
        """Registered segment names in registration order."""
        with self._lock:
            return list(self._order)

    @property
    def version(self) -> int:
        """Catalog-wide mutation counter (collapse/evaluator-cache key)."""
        with self._lock:
            return self._version

    def __len__(self) -> int:
        with self._lock:
            return len(self._defs)

    def __contains__(self, name: object) -> bool:
        with self._lock:
            return name in self._defs
