"""Predicate-set evaluation with a shared-mask cache.

Evaluating a thousand segment envelopes naively costs a thousand
independent tree walks per batch, even though machine-derived envelopes
— wide ORs-of-ANDs built from a common atom vocabulary — overlap
heavily: the same ``(age >= 30)`` atom, the same discretized-bin
interval, often the same whole conjunct appears in hundreds of
segments.  Because the :class:`~repro.segments.catalog.SegmentCatalog`
interns every published predicate, that overlap is visible as *pointer
identity*: equal subtrees are the very same object across segments.

:class:`PredicateSetEvaluator` exploits it through the shared caching
context in :mod:`repro.ir.batch`: one
:class:`~repro.ir.batch.BatchLowering` instance spans *all* segments of
a match call, so each distinct subtree (atom or connective) is
evaluated once per batch, at full width, and every later segment
containing it reuses the cached mask.  The cache implementation and its
:class:`~repro.ir.batch.MaskCacheStats` type are the same ones behind
single-predicate ``evaluate_batch`` — there is exactly one mask cache
in the codebase, this module just holds its context open across a
predicate *set* instead of a single tree.

Sharing is sound because batch kernels are bit-identical to scalar
``evaluate`` (the parity contract property-tested in
``tests/property``): a node's mask is *the* truth vector of that node
over the batch, independent of which segment asked first.  The cache
lives only for one :meth:`~PredicateSetEvaluator.match` call — ``id``
keys are stable because the catalog holds every node alive, and a fresh
batch gets a fresh cache.

Counters: ``segments.mask.computed`` (distinct node evaluations) and
``segments.mask.shared`` (cache hits, i.e. evaluations avoided), plus
``segments.constant.skipped`` for TRUE/FALSE envelopes short-circuited
without touching the cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro import obs
from repro.core.predicates import (
    FalsePredicate,
    Predicate,
    TruePredicate,
)
from repro.ir.batch import BatchLowering, MaskCacheStats
from repro.segments.catalog import SegmentCatalog, SegmentDef

if TYPE_CHECKING:
    from collections.abc import Sequence

    from repro.core.columns import ColumnBatch

__all__ = [
    "MaskCacheStats",
    "PredicateSetEvaluator",
    "SegmentMatches",
]


@dataclass(frozen=True)
class SegmentMatches:
    """Result of matching one batch against a segment set.

    ``names`` fixes the segment order; ``masks`` holds one full-batch
    boolean mask per segment in that order; ``memberships`` is the
    row-major view — for each row, the tuple of segment names the row
    belongs to — which is what streaming consumers fan out on and what
    the bench compares byte-for-byte across evaluation strategies.
    """

    names: tuple[str, ...]
    masks: tuple[np.ndarray, ...]
    memberships: tuple[tuple[str, ...], ...]
    stats: MaskCacheStats
    #: Catalog version of the evaluator snapshot that produced this.
    catalog_version: int = 0

    def mask(self, name: str) -> np.ndarray:
        try:
            return self.masks[self.names.index(name)]
        except ValueError:
            raise KeyError(name) from None

    @property
    def rows_matched(self) -> int:
        """Rows belonging to at least one segment."""
        return len([m for m in self.memberships if m])


def _memberships(
    names: tuple[str, ...], masks: tuple[np.ndarray, ...], n_rows: int
) -> tuple[tuple[str, ...], ...]:
    """Row-major membership tuples from per-segment masks."""
    per_row: list[list[str]] = [[] for _ in range(n_rows)]
    for name, mask in zip(names, masks):
        for i in np.flatnonzero(mask):
            per_row[i].append(name)
    return tuple(tuple(m) for m in per_row)


class PredicateSetEvaluator:
    """Matches row batches against a snapshot of segment definitions.

    The evaluator snapshots its segment set (and the catalog version) at
    construction: matching is lock-free and deterministic, and the
    serving layer builds a fresh evaluator when the catalog version
    moves.  Constant segments (envelope simplified to TRUE/FALSE) are
    answered with a shared all-ones/all-zeros mask and never touch the
    cache.
    """

    def __init__(
        self,
        catalog: SegmentCatalog,
        names: "Sequence[str] | None" = None,
    ) -> None:
        self._definitions: tuple[SegmentDef, ...] = catalog.definitions(
            names
        )
        self.catalog_version = catalog.version
        self.names: tuple[str, ...] = tuple(
            d.name for d in self._definitions
        )

    @property
    def definitions(self) -> tuple[SegmentDef, ...]:
        return self._definitions

    def __len__(self) -> int:
        return len(self._definitions)

    # -- matching ----------------------------------------------------------

    def match(self, batch: "ColumnBatch") -> SegmentMatches:
        """Which segments does each row of ``batch`` belong to?"""
        n = len(batch)
        stats = MaskCacheStats()
        context = BatchLowering(batch, stats=stats)
        with obs.span(
            "segments.match", segments=len(self._definitions), rows=n
        ) as span:
            masks: list[np.ndarray] = []
            true_mask: np.ndarray | None = None
            false_mask: np.ndarray | None = None
            for definition in self._definitions:
                predicate = definition.predicate
                if isinstance(predicate, TruePredicate):
                    if true_mask is None:
                        true_mask = np.ones(n, dtype=bool)
                    stats.constants_skipped += 1
                    masks.append(true_mask)
                elif isinstance(predicate, FalsePredicate):
                    if false_mask is None:
                        false_mask = np.zeros(n, dtype=bool)
                    stats.constants_skipped += 1
                    masks.append(false_mask)
                else:
                    masks.append(context.mask(predicate))
            span.update(
                masks_computed=stats.computed,
                masks_shared=stats.shared,
                constants_skipped=stats.constants_skipped,
            )
        if stats.computed:
            obs.add_counter("segments.mask.computed", stats.computed)
        if stats.shared:
            obs.add_counter("segments.mask.shared", stats.shared)
        if stats.constants_skipped:
            obs.add_counter(
                "segments.constant.skipped", stats.constants_skipped
            )
        frozen = tuple(masks)
        return SegmentMatches(
            names=self.names,
            masks=frozen,
            memberships=_memberships(self.names, frozen, n),
            stats=stats,
            catalog_version=self.catalog_version,
        )

    # -- introspection -----------------------------------------------------

    def sharing_stats(self) -> dict[str, int | float]:
        """Static structure sharing across the snapshot's predicates.

        ``nodes_total`` counts every node reachable from every segment
        (with multiplicity); ``nodes_distinct`` counts ``is``-identical
        nodes once.  Their gap is the work the shared-mask cache saves
        per batch relative to naive per-segment evaluation.
        """
        seen: set[int] = set()
        total = 0

        def walk(pred: Predicate, count_distinct: bool) -> None:
            nonlocal total
            total += 1
            if count_distinct:
                if id(pred) in seen:
                    return
                seen.add(id(pred))
            for child in pred.children():
                walk(child, count_distinct)

        for definition in self._definitions:
            if definition.is_constant:
                continue
            walk(definition.predicate, count_distinct=True)
        distinct = len(seen)
        # Second pass for the with-multiplicity total (walk above stops
        # at already-seen nodes, undercounting shared subtrees).
        total = 0
        for definition in self._definitions:
            if definition.is_constant:
                continue
            walk(definition.predicate, count_distinct=False)
        return {
            "segments": len(self._definitions),
            "nodes_total": total,
            "nodes_distinct": distinct,
            "sharing_factor": (total / distinct) if distinct else 1.0,
        }
