"""Concurrent mining-query serving layer (``repro.serve``).

The ROADMAP's north star is serving mining predicates inside ordinary
query traffic, not one-shot benchmark scripts.  This package is that
serving path, assembled from the optimizer/executor stack the earlier
PRs built:

* :mod:`repro.serve.registry` — :class:`ModelRegistry`: versioned
  ``register`` / ``deploy`` / ``retire`` of mining models.  Envelopes are
  derived **once at deploy time** (the paper's training-time precompute,
  Section 4.2), interned into the IR table, and warm-started from a
  fingerprint-keyed cache on redeploys.
* :mod:`repro.serve.pool` — :class:`ConnectionPool`: per-thread
  read-only SQLite connections over one shared database, fixing the
  single-connection :class:`~repro.sql.database.Database` thread
  affinity.
* :mod:`repro.serve.admission` — :class:`AdmissionController` and
  :class:`Deadline`: a bounded request queue with typed shedding and
  per-request timeouts.
* :mod:`repro.serve.batcher` — :class:`MicroBatcher`: coalesces residual
  model-scoring work from *concurrent* requests into shared
  ``predict_batch`` calls, bit-identical to per-request scoring.
* :mod:`repro.serve.service` — :class:`QueryService`: the worker pool
  tying it all together, with one shared
  :class:`~repro.sql.plancache.PlanCache`, in-flight request collapsing,
  and a drain/shutdown protocol.  Given a
  :class:`~repro.segments.catalog.SegmentCatalog`, it also serves
  ``match_segments`` — the segment-matching workload of
  :mod:`repro.segments` — through the same admission controller,
  collapsing, and a dedicated match batcher.
* :mod:`repro.serve.bench` — the ``serve-bench`` CLI artifact
  (``BENCH_serving.json``).

Everything emits ``serve.*`` spans/counters/gauges through
:mod:`repro.obs`; ``trace-report`` renders them as a dedicated
"Serving" section.
"""

from repro.serve.admission import AdmissionController, Deadline
from repro.serve.batcher import BatchingCatalog, MicroBatcher
from repro.serve.pool import ConnectionPool
from repro.serve.registry import ModelRegistry, ModelVersion, model_fingerprint
from repro.serve.service import (
    QueryService,
    SegmentMatchResult,
    ServeResult,
    ServiceStats,
)

__all__ = [
    "AdmissionController",
    "BatchingCatalog",
    "ConnectionPool",
    "Deadline",
    "MicroBatcher",
    "ModelRegistry",
    "ModelVersion",
    "QueryService",
    "SegmentMatchResult",
    "ServeResult",
    "ServiceStats",
    "model_fingerprint",
]
