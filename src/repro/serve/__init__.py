"""Concurrent mining-query serving layer (``repro.serve``).

The ROADMAP's north star is serving mining predicates inside ordinary
query traffic, not one-shot benchmark scripts.  This package is that
serving path, assembled from the optimizer/executor stack the earlier
PRs built and split into engine / protocol / transport layers so *what
the service does* is independent of *how bytes reach it*:

* :mod:`repro.serve.registry` — :class:`ModelRegistry`: versioned
  ``register`` / ``deploy`` / ``retire`` of mining models.  Envelopes are
  derived **once at deploy time** (the paper's training-time precompute,
  Section 4.2), interned into the IR table, and warm-started from a
  fingerprint-keyed cache on redeploys.
* :mod:`repro.serve.pool` — :class:`ConnectionPool`: per-thread
  read-only SQLite connections over one shared database, fixing the
  single-connection :class:`~repro.sql.database.Database` thread
  affinity.
* :mod:`repro.serve.admission` — :class:`AdmissionController` and
  :class:`Deadline`: a bounded request queue with typed shedding and
  per-request timeouts.
* :mod:`repro.serve.batcher` — :class:`MicroBatcher`: coalesces residual
  model-scoring work from *concurrent* requests into shared
  ``predict_batch`` calls, bit-identical to per-request scoring.
* :mod:`repro.serve.engine` — :class:`ServeEngine`: the
  transport-neutral core (admission, in-flight collapsing,
  micro-batching, segment matching, worker-pool execution over shared
  caches) operating on typed request/response dataclasses
  (:class:`QueryRequest`, :class:`MatchRequest`, and deploy/retire
  control messages).
* :mod:`repro.serve.protocol` — the versioned, length-prefixed framed
  wire codec: every request kind and every typed
  :class:`~repro.exceptions.ServeError` subclass round-trips.
* :mod:`repro.serve.transport` — pluggable adapters over the engine:
  in-process :class:`LoopbackTransport`, a socketpair transport
  (:func:`serve_socketpair`), and a TCP transport whose accept loop is
  a single-thread ``asyncio`` front-end (:class:`TCPServer` /
  :func:`connect_tcp`).
* :mod:`repro.serve.router` — :class:`ProcessRouter`: fans requests out
  to N worker *processes* (one socketpair each), broadcasts
  deploy/retire as version-stamped catalog messages, fails in-flight
  requests of dead workers with typed errors, and respawns them.
* :mod:`repro.serve.service` — :class:`QueryService`: the embedded
  facade (the original public API), a thin veneer over
  :class:`ServeEngine` through the loopback transport.  Given a
  :class:`~repro.segments.catalog.SegmentCatalog`, it also serves
  ``match_segments`` — the segment-matching workload of
  :mod:`repro.segments` — through the same admission controller,
  collapsing, and a dedicated match batcher.
* :mod:`repro.serve.bench` — the ``serve-bench`` CLI artifact
  (``BENCH_serving.json``), including the transport/router byte-identity
  matrix.

Everything emits ``serve.*`` spans/counters/gauges through
:mod:`repro.obs`; ``trace-report`` renders them as dedicated "Serving"
and "Transport" sections.
"""

from repro.serve.admission import (
    AdaptiveAdmissionController,
    AdmissionController,
    Deadline,
    ServiceTimeEstimator,
)
from repro.serve.batcher import BatchingCatalog, MicroBatcher
from repro.serve.engine import (
    DeployRequest,
    DeployResult,
    MatchRequest,
    QueryRequest,
    ResultCache,
    RetireRequest,
    RetireResult,
    SegmentMatchResult,
    ServeEngine,
    ServeResult,
    ServiceStats,
)
from repro.serve.pool import ConnectionPool
from repro.serve.registry import ModelRegistry, ModelVersion, model_fingerprint
from repro.serve.router import ProcessRouter
from repro.serve.service import QueryService
from repro.serve.transport import (
    LoopbackTransport,
    RetryingTransport,
    RetryPolicy,
    SocketServer,
    SocketTransport,
    TCPServer,
    Transport,
    connect_tcp,
    serve_socketpair,
)

__all__ = [
    "AdaptiveAdmissionController",
    "AdmissionController",
    "BatchingCatalog",
    "ConnectionPool",
    "Deadline",
    "DeployRequest",
    "DeployResult",
    "LoopbackTransport",
    "MatchRequest",
    "MicroBatcher",
    "ModelRegistry",
    "ModelVersion",
    "ProcessRouter",
    "QueryRequest",
    "QueryService",
    "ResultCache",
    "RetireRequest",
    "RetireResult",
    "RetryPolicy",
    "RetryingTransport",
    "SegmentMatchResult",
    "ServeEngine",
    "ServeResult",
    "ServiceStats",
    "ServiceTimeEstimator",
    "SocketServer",
    "SocketTransport",
    "TCPServer",
    "Transport",
    "connect_tcp",
    "model_fingerprint",
    "serve_socketpair",
]
