"""Admission control: bounded queueing, deadlines, typed shedding.

A serving system protects itself by refusing work it cannot finish in
time rather than queueing without bound.  :class:`AdmissionController`
enforces a hard ceiling on *pending* (admitted but unfinished) requests —
an arrival beyond the ceiling is shed immediately with
:class:`~repro.exceptions.QueueFullError`, which is cheap for the caller
to retry against another replica.  :class:`Deadline` carries a
per-request timeout: a request whose deadline lapses while queued is
never executed (:class:`~repro.exceptions.RequestTimeoutError`), so a
backlog drains by dropping already-dead work first.

Queue depth is exported as the ``serve.queue.depth`` gauge and shed /
timeout decisions as ``serve.request.shed`` / ``serve.request.timeout``
counters — the signals a load balancer would watch.
"""

from __future__ import annotations

import threading
import time

from repro import obs
from repro.exceptions import QueueFullError


class Deadline:
    """An absolute completion deadline derived from a relative timeout."""

    __slots__ = ("expires_at", "timeout")

    def __init__(self, timeout: float) -> None:
        if timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        self.timeout = timeout
        self.expires_at = time.monotonic() + timeout

    @classmethod
    def from_timeout(cls, timeout: float | None) -> "Deadline | None":
        """A deadline for ``timeout`` seconds, or ``None`` for no limit."""
        return None if timeout is None else cls(timeout)

    def remaining(self) -> float:
        """Seconds left (never negative)."""
        return max(0.0, self.expires_at - time.monotonic())

    @property
    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at


class AdmissionController:
    """Bounded admission over the service's request queue.

    Thread-safe; :meth:`admit` raises
    :class:`~repro.exceptions.QueueFullError` when ``max_pending``
    requests are already admitted and unfinished.  Below the limit,
    admission never fails — the service's "zero dropped requests below
    the admission limit" guarantee rests on exactly this.
    """

    def __init__(
        self, max_pending: int, default_timeout: float | None = None
    ) -> None:
        if max_pending < 1:
            raise ValueError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        if default_timeout is not None and default_timeout <= 0:
            raise ValueError(
                f"default_timeout must be > 0, got {default_timeout}"
            )
        self.max_pending = max_pending
        self.default_timeout = default_timeout
        self._lock = threading.Lock()
        self._pending = 0

    def deadline_for(self, timeout: float | None) -> Deadline | None:
        """Resolve a request timeout against the service default."""
        if timeout is None:
            timeout = self.default_timeout
        return Deadline.from_timeout(timeout)

    def admit(self) -> None:
        """Claim one pending slot or shed the request."""
        with self._lock:
            if self._pending >= self.max_pending:
                obs.add_counter("serve.request.shed")
                raise QueueFullError(
                    f"request queue is full "
                    f"({self._pending}/{self.max_pending} pending)"
                )
            self._pending += 1
            # Publish under the lock: two racing threads publishing
            # after release could land out of order and leave the gauge
            # permanently wrong (e.g. stuck at a stale depth after the
            # queue drained).  Inside the lock, publishes are totally
            # ordered with the depth transitions they report.
            obs.set_gauge("serve.queue.depth", self._pending)

    def release(self) -> None:
        """Return one pending slot (request finished, shed, or timed out)."""
        with self._lock:
            if self._pending <= 0:
                raise AssertionError(
                    "release() without a matching admit()"
                )
            self._pending -= 1
            obs.set_gauge("serve.queue.depth", self._pending)

    @property
    def pending(self) -> int:
        """Currently admitted, unfinished requests."""
        with self._lock:
            return self._pending
