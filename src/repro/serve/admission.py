"""Admission control: bounded queueing, deadlines, typed shedding.

A serving system protects itself by refusing work it cannot finish in
time rather than queueing without bound.  :class:`AdmissionController`
enforces a hard ceiling on *pending* (admitted but unfinished) requests —
an arrival beyond the ceiling is shed immediately with
:class:`~repro.exceptions.QueueFullError`, which is cheap for the caller
to retry against another replica.  :class:`Deadline` carries a
per-request timeout: a request whose deadline lapses while queued is
never executed (:class:`~repro.exceptions.RequestTimeoutError`), so a
backlog drains by dropping already-dead work first.

Queue depth is exported as the ``serve.queue.depth`` gauge and shed /
timeout decisions as ``serve.request.shed`` / ``serve.request.timeout``
counters — the signals a load balancer would watch.

:class:`AdaptiveAdmissionController` grows the static bound into a
feedback controller for open-loop (SLO) traffic:

* an **AIMD concurrency limit** below ``max_pending`` — additive
  increase on every in-deadline completion, multiplicative decrease on
  every deadline miss or queued timeout — published as the
  ``serve.admission.limit`` gauge next to the existing
  ``serve.queue.depth`` gauge that drives it;
* **deadline-aware shedding**: a per-request-kind EWMA of observed
  service times (:class:`ServiceTimeEstimator`, fed by the engine)
  predicts this request's wait-plus-service; when that exceeds the
  deadline's remaining budget, the request is shed *at admit time* with
  :class:`~repro.exceptions.DeadlineShedError`
  (``serve.request.shed.deadline`` counter) instead of spending its
  whole deadline queued and timing out anyway.
"""

from __future__ import annotations

import threading
import time

from repro import obs
from repro.exceptions import DeadlineShedError, QueueFullError


class Deadline:
    """An absolute completion deadline derived from a relative timeout."""

    __slots__ = ("expires_at", "timeout")

    def __init__(self, timeout: float) -> None:
        if timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        self.timeout = timeout
        self.expires_at = time.monotonic() + timeout

    @classmethod
    def from_timeout(cls, timeout: float | None) -> "Deadline | None":
        """A deadline for ``timeout`` seconds, or ``None`` for no limit."""
        return None if timeout is None else cls(timeout)

    def remaining(self) -> float:
        """Seconds left (never negative)."""
        return max(0.0, self.expires_at - time.monotonic())

    @property
    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at


class AdmissionController:
    """Bounded admission over the service's request queue.

    Thread-safe; :meth:`admit` raises
    :class:`~repro.exceptions.QueueFullError` when ``max_pending``
    requests are already admitted and unfinished.  Below the limit,
    admission never fails — the service's "zero dropped requests below
    the admission limit" guarantee rests on exactly this.
    """

    def __init__(
        self, max_pending: int, default_timeout: float | None = None
    ) -> None:
        if max_pending < 1:
            raise ValueError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        if default_timeout is not None and default_timeout <= 0:
            raise ValueError(
                f"default_timeout must be > 0, got {default_timeout}"
            )
        self.max_pending = max_pending
        self.default_timeout = default_timeout
        self._lock = threading.Lock()
        self._pending = 0

    def deadline_for(self, timeout: float | None) -> Deadline | None:
        """Resolve a request timeout against the service default."""
        if timeout is None:
            timeout = self.default_timeout
        return Deadline.from_timeout(timeout)

    def admit(
        self,
        kind: str | None = None,
        deadline: "Deadline | None" = None,
    ) -> None:
        """Claim one pending slot or shed the request.

        ``kind`` and ``deadline`` describe the request for controllers
        that admit by predicted feasibility; the static controller
        accepts and ignores them, so every caller can pass them
        unconditionally.
        """
        with self._lock:
            if self._pending >= self.max_pending:
                obs.add_counter("serve.request.shed")
                raise QueueFullError(
                    f"request queue is full "
                    f"({self._pending}/{self.max_pending} pending)"
                )
            self._pending += 1
            # Publish under the lock: two racing threads publishing
            # after release could land out of order and leave the gauge
            # permanently wrong (e.g. stuck at a stale depth after the
            # queue drained).  Inside the lock, publishes are totally
            # ordered with the depth transitions they report.
            obs.set_gauge("serve.queue.depth", self._pending)

    def release(self) -> None:
        """Return one pending slot (request finished, shed, or timed out)."""
        with self._lock:
            if self._pending <= 0:
                raise AssertionError(
                    "release() without a matching admit()"
                )
            self._pending -= 1
            obs.set_gauge("serve.queue.depth", self._pending)

    def record_outcome(
        self,
        kind: str | None,
        service_seconds: float | None,
        ok: bool,
    ) -> None:
        """Feedback hook after a request finishes; static: no-op.

        ``service_seconds`` is the measured execution time (``None``
        when the request never executed, e.g. a queued timeout);
        ``ok`` is whether it finished within its deadline.
        """

    @property
    def pending(self) -> int:
        """Currently admitted, unfinished requests."""
        with self._lock:
            return self._pending


class ServiceTimeEstimator:
    """Thread-safe per-request-kind EWMA of observed service times.

    Seeded exactly by the first observation of each kind, then smoothed
    with weight ``alpha`` on new samples — the same discipline as the
    calibration store's selectivity EWMA.  :meth:`estimate` returns
    ``None`` for kinds never observed, which admission treats as
    "no basis to shed".
    """

    def __init__(self, alpha: float = 0.3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._lock = threading.Lock()
        self._ewma: dict[str, float] = {}
        self._count: dict[str, int] = {}

    def observe(self, kind: str, seconds: float) -> None:
        """Fold one measured service time into the kind's EWMA."""
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        with self._lock:
            current = self._ewma.get(kind)
            if current is None:
                self._ewma[kind] = seconds
            else:
                self._ewma[kind] = (
                    self.alpha * seconds + (1.0 - self.alpha) * current
                )
            self._count[kind] = self._count.get(kind, 0) + 1

    def estimate(self, kind: str) -> float | None:
        """The kind's smoothed service time (``None`` if never seen)."""
        with self._lock:
            return self._ewma.get(kind)

    def observations(self, kind: str) -> int:
        with self._lock:
            return self._count.get(kind, 0)

    def snapshot(self) -> dict[str, float]:
        with self._lock:
            return dict(self._ewma)


class AdaptiveAdmissionController(AdmissionController):
    """AIMD-limited, deadline-aware admission over the same slot pool.

    Two mechanisms layered on the static bound (which remains the hard
    ceiling):

    * The effective concurrency limit starts at ``max_pending`` and
      adapts: each in-deadline completion adds ``increase / limit``
      (additive increase, ~+1 per round-trip of the whole window), each
      deadline miss or queued timeout multiplies by ``decrease``
      (multiplicative decrease), floored at ``workers`` so the pool is
      never starved.  The limit is published as the
      ``serve.admission.limit`` gauge.
    * With a deadline and a service-time estimate for the request's
      kind, admission predicts wait-plus-service as
      ``estimate * (pending / workers + 1)`` — the queue ahead drains
      through ``workers`` lanes, then this request runs.  A prediction
      exceeding the deadline's remaining budget sheds immediately with
      :class:`~repro.exceptions.DeadlineShedError`
      (``serve.request.shed.deadline``): the caller gets its rejection
      while the deadline still has budget to retry elsewhere, and no
      worker wastes time dequeuing doomed work.
    """

    def __init__(
        self,
        max_pending: int,
        default_timeout: float | None = None,
        workers: int = 1,
        increase: float = 1.0,
        decrease: float = 0.5,
        alpha: float = 0.3,
    ) -> None:
        super().__init__(max_pending, default_timeout=default_timeout)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if increase <= 0:
            raise ValueError(f"increase must be > 0, got {increase}")
        if not 0.0 < decrease < 1.0:
            raise ValueError(
                f"decrease must be in (0, 1), got {decrease}"
            )
        self.workers = workers
        self._increase = increase
        self._decrease = decrease
        self._floor = float(min(workers, max_pending))
        self._limit = float(max_pending)
        self.estimator = ServiceTimeEstimator(alpha)
        self.deadline_sheds = 0
        self.limit_sheds = 0

    @property
    def limit(self) -> float:
        """The current AIMD concurrency limit."""
        with self._lock:
            return self._limit

    def admit(
        self,
        kind: str | None = None,
        deadline: "Deadline | None" = None,
    ) -> None:
        with self._lock:
            limit = min(self.max_pending, int(self._limit))
            if self._pending >= limit:
                self.limit_sheds += 1
                obs.add_counter("serve.request.shed")
                raise QueueFullError(
                    f"adaptive admission limit reached "
                    f"({self._pending}/{limit} pending, "
                    f"AIMD limit {self._limit:.1f})"
                )
            if kind is not None and deadline is not None:
                estimate = self.estimator.estimate(kind)
                if estimate is not None:
                    predicted = estimate * (
                        self._pending / self.workers + 1.0
                    )
                    remaining = deadline.remaining()
                    if predicted > remaining:
                        self.deadline_sheds += 1
                        obs.add_counter("serve.request.shed")
                        obs.add_counter("serve.request.shed.deadline")
                        raise DeadlineShedError(
                            f"predicted {predicted * 1000:.1f}ms "
                            f"wait+service exceeds the deadline's "
                            f"{remaining * 1000:.1f}ms remaining "
                            f"({self._pending} pending, "
                            f"{estimate * 1000:.2f}ms {kind} estimate)"
                        )
            self._pending += 1
            obs.set_gauge("serve.queue.depth", self._pending)

    def record_outcome(
        self,
        kind: str | None,
        service_seconds: float | None,
        ok: bool,
    ) -> None:
        """Feed one finished request back into the controller.

        In-deadline completions grow the limit additively and refine the
        kind's service-time EWMA; deadline misses (late completions and
        queued timeouts) shrink it multiplicatively.  Sheds do not feed
        back — they are the controller's own output, not a congestion
        signal.
        """
        if kind is not None and service_seconds is not None:
            self.estimator.observe(kind, service_seconds)
        with self._lock:
            if ok:
                self._limit = min(
                    float(self.max_pending),
                    self._limit + self._increase / max(self._limit, 1.0),
                )
            else:
                self._limit = max(
                    self._floor, self._limit * self._decrease
                )
            obs.set_gauge("serve.admission.limit", self._limit)
