"""Cross-request micro-batching of residual model scoring.

PR 2 made model scoring fast *within* one query by batching rows into
columnar ``predict_batch`` calls.  Under concurrency there is a second
axis: several in-flight requests scoring the **same model** at the same
time.  Each ``predict_batch`` call has a fixed cost that does not shrink
with batch size (predicate/kernel setup, one NumPy op per tree node or
feature), so four concurrent 200-row calls cost nearly four times one
800-row call.  :class:`MicroBatcher` coalesces them: scoring requests
enqueue their rows, a single scorer thread drains whatever is pending,
groups it per model, scores each group through **one** shared
``predict_batch`` call, and routes each request its own slice back.

Correctness: every ``predict_batch`` kernel is row-independent — the
documented contract (:meth:`repro.mining.base.MiningModel.predict_batch`)
is elementwise equality with scalar ``predict``, which cannot depend on
batch composition.  Concatenating requests and slicing the result is
therefore *bit-identical* to scoring each request alone (regression-tested
in ``tests/serve/test_batcher.py``).

Coalescing is opportunistic by default: the scorer never sleeps waiting
for company, so an idle service adds one thread hop of latency and
nothing more, while a busy service naturally accumulates concurrent
requests into larger and larger groups.  A bounded **accumulation
window** (``window`` seconds, typically 0.5–2 ms) trades a little
latency for larger groups: after the first request arrives the scorer
keeps waiting up to the window for more before draining — a point on
the throughput/latency frontier the load bench evaluates.  Stats:
``serve.batch.requests`` (scoring requests), ``serve.batch.calls``
(underlying ``predict_batch`` invocations), ``serve.batch.rows`` (rows
scored), and ``serve.batch.coalesced`` (requests that shared a call).
"""

from __future__ import annotations

import threading
import time
from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro import obs
from repro.core.catalog import ModelCatalog
from repro.core.columns import ColumnBatch
from repro.exceptions import ServiceStoppedError

if TYPE_CHECKING:
    from repro.mining.base import MiningModel, Row


class _Pending:
    """One request's scoring work: rows in, a result slice (or error) out."""

    __slots__ = ("rows", "done", "result", "error")

    def __init__(self, rows: "Sequence[Row]") -> None:
        self.rows = rows
        self.done = threading.Event()
        self.result: np.ndarray | None = None
        self.error: BaseException | None = None


class MicroBatcher:
    """Coalesces concurrent ``predict_batch`` calls per model.

    One scorer thread serializes all model execution, which both
    amortizes per-call overhead across requests and sidesteps any
    question of model thread-safety — models never run concurrently with
    themselves.  Start is implicit (construction), stop via :meth:`stop`
    (idempotent); stopping fails all waiters with
    :class:`~repro.exceptions.ServiceStoppedError`.
    """

    def __init__(
        self, catalog: ModelCatalog, window: float = 0.0
    ) -> None:
        if window < 0:
            raise ValueError(f"window must be >= 0, got {window}")
        self._catalog = catalog
        self._window = window
        self._cond = threading.Condition()
        self._pending: dict[str, list[_Pending]] = {}
        self._stopped = False
        #: Lifetime totals, mirrored as ``serve.batch.*`` obs counters.
        #: Written only by the scorer thread; reads are approximate
        #: while scoring is in flight.
        self.calls = 0
        self.requests = 0
        self.rows_scored = 0
        self.coalesced = 0
        self._thread = threading.Thread(
            target=self._loop, name="repro-serve-batcher", daemon=True
        )
        self._thread.start()

    # -- request side ------------------------------------------------------

    def score(self, model_name: str, batch: ColumnBatch) -> np.ndarray:
        """Predictions for ``batch`` — possibly via a shared call.

        Blocks until the scorer thread has produced this request's slice.
        Exceptions raised by the model (or a missing model) propagate to
        the caller unchanged.
        """
        item = _Pending(batch.rows())
        with self._cond:
            if self._stopped:
                raise ServiceStoppedError("micro-batcher is stopped")
            self._pending.setdefault(model_name, []).append(item)
            self._cond.notify()
        item.done.wait()
        if item.error is not None:
            raise item.error
        assert item.result is not None
        return item.result

    # -- scorer side -------------------------------------------------------

    def _loop(self) -> None:
        while True:
            with self._cond:
                while not self._pending and not self._stopped:
                    self._cond.wait()
                if not self._stopped and self._window > 0:
                    # Accumulate: hold the drain open for the window so
                    # closely-spaced arrivals share one call.  Waiting
                    # releases the lock, so enqueues keep landing; the
                    # deadline bounds the added latency.
                    deadline = time.monotonic() + self._window
                    while not self._stopped:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            break
                        self._cond.wait(remaining)
                if self._stopped:
                    work = self._pending
                    self._pending = {}
                    for items in work.values():
                        for item in items:
                            item.error = ServiceStoppedError(
                                "micro-batcher stopped before scoring"
                            )
                            item.done.set()
                    return
                work, self._pending = self._pending, {}
            for model_name, items in work.items():
                self._score_group(model_name, items)

    def _score_group(
        self, model_name: str, items: "list[_Pending]"
    ) -> None:
        try:
            model = self._catalog.model(model_name)
            if len(items) == 1:
                rows: Sequence = items[0].rows
            else:
                rows = [row for item in items for row in item.rows]
            with obs.span(
                "serve.batch.score",
                model=model_name,
                requests=len(items),
                rows=len(rows),
            ):
                predictions = model.predict_batch(ColumnBatch(rows))
            offset = 0
            for item in items:
                width = len(item.rows)
                item.result = predictions[offset : offset + width]
                offset += width
            self.calls += 1
            self.requests += len(items)
            self.rows_scored += len(rows)
            obs.add_counter("serve.batch.requests", len(items))
            obs.add_counter("serve.batch.calls")
            obs.add_counter("serve.batch.rows", len(rows))
            if len(items) > 1:
                self.coalesced += len(items)
                obs.add_counter("serve.batch.coalesced", len(items))
        except BaseException as error:  # propagate to every waiter
            for item in items:
                item.error = error
        finally:
            for item in items:
                item.done.set()

    def stop(self) -> None:
        """Stop the scorer; pending and future requests fail typed."""
        with self._cond:
            if self._stopped:
                return
            self._stopped = True
            self._cond.notify_all()
        self._thread.join()

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


class _BatchingModel:
    """A model proxy routing ``predict_batch`` through the shared batcher.

    Everything else — scalar ``predict``, ``prediction_column``,
    ``class_labels``, serialization — delegates to the wrapped model, so
    the proxy is a drop-in inside the executor's residual filter.
    """

    __slots__ = ("_model", "_batcher")

    def __init__(self, model: "MiningModel", batcher: MicroBatcher) -> None:
        self._model = model
        self._batcher = batcher

    def predict_batch(self, batch: ColumnBatch) -> np.ndarray:
        return self._batcher.score(self._model.name, batch)

    def supports_batch(self) -> bool:
        return True

    def __getattr__(self, attribute: str):
        return getattr(self._model, attribute)


class BatchingCatalog:
    """A catalog view whose models score through a :class:`MicroBatcher`.

    Wraps a live :class:`~repro.core.catalog.ModelCatalog`: lookups other
    than :meth:`model` delegate unchanged (the optimizer reads envelopes
    and versions through it), while :meth:`model` returns a batching
    proxy.  Handing this to a
    :class:`~repro.sql.miningext.PredictionJoinExecutor` turns every
    residual scoring call into a coalescible one with no executor
    changes.
    """

    def __init__(
        self, catalog: ModelCatalog, batcher: MicroBatcher
    ) -> None:
        self._catalog = catalog
        self._batcher = batcher

    def model(self, name: str) -> _BatchingModel:
        return _BatchingModel(self._catalog.model(name), self._batcher)

    def __getattr__(self, attribute: str):
        return getattr(self._catalog, attribute)
