"""Serving throughput benchmark (the ``serve-bench`` CLI artifact).

Measures what the serving layer buys over the one-query-at-a-time
executor the earlier PRs benchmarked: a *serial baseline* executes a
request schedule through a single :class:`~repro.sql.miningext.
PredictionJoinExecutor` loop, then the same schedule is replayed through
a :class:`~repro.serve.service.QueryService` at increasing worker
counts.  Every concurrent result is checked **bit-identical** to its
serial counterpart, and the run asserts zero shed requests — the
submission loop is closed-loop, keeping in-flight requests at or below
the admission limit.

The schedule is a deterministic hot-skewed mix (a Zipf-ish draw with a
fixed seed) over K distinct ``(model, label)`` prediction-join queries —
the shape of real serving traffic, where a handful of hot queries
dominate.  On a single CPU the speedup comes from cross-request
amortization, not parallelism: concurrent duplicates collapse onto
in-flight executions, and the micro-batcher coalesces residual scoring
into shared ``predict_batch`` calls.

On top of the thread-scaling runs, the bench replays the same schedule
through every **transport** (in-process loopback, socketpair, TCP) and
through the multi-process **router** at 1/2/N worker processes, gating
on byte-identical results everywhere: every configuration's result rows
are digested over their canonical JSON and compared to the serial
baseline's digest.  On a 1-CPU box the router buys no speedup — the
matrix is a *determinism* gate (multicore cashes the speedup later),
recorded in ``BENCH_serving.json`` under ``"transports"`` /
``"router"`` / ``"transport_matrix"``.

``run_serving_bench`` returns the JSON-ready payload written to
``BENCH_serving.json`` by ``python -m repro serve-bench``.
"""

from __future__ import annotations

import hashlib
import json
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, wait

import numpy as np

from repro import obs
from repro.core.optimizer import MiningQuery
from repro.core.predicates import Comparison, Op
from repro.core.rewrite import PredictionEquals
from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import (
    dataset_for,
    numeric_feature_columns,
    train_family,
)
from repro.exceptions import ReproError
from repro.serve.engine import (
    DeployRequest,
    QueryRequest,
    ServeEngine,
)
from repro.serve.registry import ModelRegistry
from repro.serve.router import ProcessRouter
from repro.serve.service import QueryService, ServeResult
from repro.serve.transport import (
    LoopbackTransport,
    TCPServer,
    connect_tcp,
    serve_socketpair,
)
from repro.sql.miningext import PredictionJoinExecutor
from repro.sql.plancache import PlanCache
from repro.workload.measurement import (
    FAMILY_DECISION_TREE,
    FAMILY_NAIVE_BAYES,
)
from repro.workload.runner import LoadedDataset, load_dataset

#: Skew exponent of the request mix; ~Zipf, heavier than uniform but not
#: a single-query degenerate workload.
SKEW = 1.1


def build_queries(
    registry: ModelRegistry, loaded: "LoadedDataset"
) -> list[MiningQuery]:
    """Distinct prediction-join queries over the deployed models.

    Per ``(model, label)`` pair: the bare prediction join plus variants
    with a relational range predicate over a numeric feature column, so
    the schedule's query space is wide enough that collapsing has to earn
    its hits on genuinely repeated queries, not a degenerate workload.
    """
    cutoffs = _relational_cutoffs(loaded)
    queries: list[MiningQuery] = []
    for name in registry.deployed_names():
        version = registry.deployed_version(name)
        assert version is not None and version.envelopes is not None
        table = loaded.table
        for label in sorted(version.envelopes, key=str):
            mining = (PredictionEquals(name, label),)
            queries.append(MiningQuery(table, mining_predicates=mining))
            for column, value in cutoffs:
                queries.append(
                    MiningQuery(
                        table,
                        relational_predicate=Comparison(
                            column, Op.LE, value
                        ),
                        mining_predicates=mining,
                    )
                )
    return queries


def _relational_cutoffs(
    loaded: "LoadedDataset",
) -> list[tuple[str, float]]:
    """Median cutoffs on up to two numeric feature columns."""
    dataset = loaded.dataset
    columns = numeric_feature_columns(dataset)[:2]
    cutoffs = []
    for column in columns:
        values = sorted(row[column] for row in dataset.train_rows)
        cutoffs.append((column, values[len(values) // 2]))
    return cutoffs


def build_schedule(
    n_queries: int, requests: int, seed: int
) -> list[int]:
    """A deterministic hot-skewed request schedule (query indices)."""
    ranks = np.arange(1, n_queries + 1, dtype=np.float64)
    weights = ranks**-SKEW
    weights /= weights.sum()
    rng = np.random.default_rng(seed)
    return [int(i) for i in rng.choice(n_queries, size=requests, p=weights)]


def _percentile_ms(latencies: list[float], q: float) -> float:
    return float(np.percentile(np.asarray(latencies), q) * 1000.0)


def _latency_summary(latencies: list[float]) -> dict:
    return {
        "p50_ms": round(_percentile_ms(latencies, 50), 3),
        "p95_ms": round(_percentile_ms(latencies, 95), 3),
        "p99_ms": round(_percentile_ms(latencies, 99), 3),
    }


def rows_digest(results_rows: "list[tuple]") -> str:
    """A canonical digest of an ordered result-set list.

    Byte-identity across transports and process counts is asserted by
    digest equality: every configuration's rows serialize to the same
    canonical JSON (sorted keys, repr-exact floats) or the gate fails.
    """
    payload = json.dumps(
        [[dict(row) for row in rows] for rows in results_rows],
        sort_keys=True,
        separators=(",", ":"),
        default=str,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _router_bootstrap(
    config: ExperimentConfig, dataset_name: str, max_pending: int
):
    """Build one worker's engine: fresh dataset, empty registry replica.

    Top-level so the router can ship it to worker processes; the
    dataset rebuild is deterministic (same config, same seed), and
    models arrive afterwards as deploy broadcasts — the worker never
    sees a pickled model object.
    """
    dataset = dataset_for(config, dataset_name)
    loaded = load_dataset(dataset, config.rows_target)
    registry = ModelRegistry(max_nodes=config.max_nodes)
    return ServeEngine(
        loaded.db,
        registry,
        workers=2,
        max_pending=max_pending,
        plan_cache=PlanCache(256),
        selectivity_gate=config.selectivity_gate,
    )


def _run_serial(
    executor: PredictionJoinExecutor,
    queries: list[MiningQuery],
    schedule: list[int],
) -> tuple[list[tuple], float, list[float]]:
    """Execute the schedule one request at a time; the baseline."""
    results: list[tuple] = []
    latencies: list[float] = []
    started = time.perf_counter()
    for index in schedule:
        request_started = time.perf_counter()
        results.append(executor.execute(queries[index]).rows)
        latencies.append(time.perf_counter() - request_started)
    return results, time.perf_counter() - started, latencies


def _run_service(
    service: QueryService,
    queries: list[MiningQuery],
    schedule: list[int],
    window: int,
) -> tuple[list[ServeResult], float]:
    """Replay the schedule closed-loop, at most ``window`` in flight."""
    ordered: list[Future] = []
    inflight: "deque[Future]" = deque()
    started = time.perf_counter()
    for index in schedule:
        if len(inflight) >= window:
            done, _ = wait(inflight, return_when=FIRST_COMPLETED)
            for future in done:
                inflight.remove(future)
        future = service.submit(queries[index])
        ordered.append(future)
        inflight.append(future)
    results = [future.result() for future in ordered]
    return results, time.perf_counter() - started


def _run_transport(
    transport,
    queries: list[MiningQuery],
    schedule: list[int],
    window: int,
) -> tuple[list[ServeResult], float]:
    """Replay the schedule closed-loop through one transport adapter."""
    requests = [QueryRequest(query) for query in queries]
    ordered: list[Future] = []
    inflight: "deque[Future]" = deque()
    started = time.perf_counter()
    for index in schedule:
        if len(inflight) >= window:
            done, _ = wait(inflight, return_when=FIRST_COMPLETED)
            for future in done:
                inflight.remove(future)
        future = transport.submit(requests[index])
        ordered.append(future)
        inflight.append(future)
    results = [future.result() for future in ordered]
    return results, time.perf_counter() - started


def run_serving_bench(
    config: ExperimentConfig,
    workers: tuple[int, ...] = (1, 2, 4),
    requests: int = 400,
    max_pending: int = 64,
    dataset_name: str | None = None,
    transports: tuple[str, ...] = ("inproc", "socketpair", "tcp"),
    processes: int = 0,
    result_ttl: float | None = None,
) -> dict:
    """The full benchmark: deploy, baseline, concurrent runs, verify.

    ``transports`` selects which adapters replay the schedule (any of
    ``inproc`` / ``socketpair`` / ``tcp``); ``processes`` > 0 also runs
    the multi-process router at 1/2/``processes`` workers.  Every
    configuration is gated byte-identical to the serial baseline.
    ``result_ttl`` turns the engine-side result cache on for the
    service and transport runs — safe for the identity gates, because
    a cached hit returns the original result object.
    """
    with obs.span("serve.bench", requests=requests):
        name = dataset_name or config.datasets[0]
        dataset = dataset_for(config, name)
        loaded = load_dataset(dataset, config.rows_target)
        db = loaded.db

        registry = ModelRegistry(max_nodes=config.max_nodes)
        deploy_seconds = 0.0
        model_payloads: list[dict] = []
        for family in (FAMILY_DECISION_TREE, FAMILY_NAIVE_BAYES):
            trained = train_family(dataset, family, config)
            model_payloads.append(trained.model.to_dict())
            deploy_started = time.perf_counter()
            registry.register(trained.model, deploy=True)
            deploy_seconds += time.perf_counter() - deploy_started

        queries = build_queries(registry, loaded)
        schedule = build_schedule(len(queries), requests, config.seed)

        # Serial baseline: one executor, one connection, no service.
        serial_executor = PredictionJoinExecutor(
            db,
            registry.catalog,
            selectivity_gate=config.selectivity_gate,
            plan_cache=PlanCache(256),
        )
        for query in queries:  # warm-up: stats + plans, off the clock
            serial_executor.execute(query)
        serial_rows, serial_seconds, serial_latencies = _run_serial(
            serial_executor, queries, schedule
        )
        serial_throughput = requests / serial_seconds

        payload: dict = {
            "benchmark": "serving",
            "dataset": dataset.name,
            "rows": loaded.rows_total,
            "models": registry.deployed_names(),
            "distinct_queries": len(queries),
            "requests": requests,
            "max_pending": max_pending,
            "skew": SKEW,
            "deploy_seconds": round(deploy_seconds, 4),
            "serial": {
                "seconds": round(serial_seconds, 4),
                "throughput_rps": round(serial_throughput, 2),
                **_latency_summary(serial_latencies),
            },
            "runs": [],
        }

        for worker_count in workers:
            service = QueryService(
                db,
                registry,
                workers=worker_count,
                max_pending=max_pending,
                plan_cache=PlanCache(256),
                selectivity_gate=config.selectivity_gate,
                result_ttl=result_ttl,
            )
            try:
                for query in queries:  # warm-up this service's caches
                    service.execute(query)
                results, seconds = _run_service(
                    service, queries, schedule, window=max_pending
                )
                stats = service.stats.snapshot()
                batcher = service.batcher
            finally:
                clean = service.shutdown()
            if not clean:
                raise ReproError(
                    f"serve-bench: unclean shutdown at {worker_count} workers"
                )
            mismatches = sum(
                1
                for result, expected in zip(results, serial_rows)
                if result.rows != expected
            )
            if mismatches:
                raise ReproError(
                    f"serve-bench: {mismatches} results differ from serial "
                    f"execution at {worker_count} workers"
                )
            if stats["shed"] or stats["timeouts"] or stats["errors"]:
                raise ReproError(
                    "serve-bench: dropped requests below the admission "
                    f"limit at {worker_count} workers: {stats}"
                )
            latencies = [
                r.queue_seconds + r.execute_seconds for r in results
            ]
            throughput = requests / seconds
            payload["runs"].append(
                {
                    "workers": worker_count,
                    "seconds": round(seconds, 4),
                    "throughput_rps": round(throughput, 2),
                    "speedup_vs_serial": round(
                        throughput / serial_throughput, 3
                    ),
                    **_latency_summary(latencies),
                    "collapsed": stats["collapsed"],
                    "completed": stats["completed"],
                    "shed": stats["shed"],
                    "timeouts": stats["timeouts"],
                    "batch_calls": batcher.calls if batcher else 0,
                    "batch_requests": batcher.requests if batcher else 0,
                    "batch_coalesced": batcher.coalesced if batcher else 0,
                    "identical_to_serial": True,
                }
            )

        by_workers = {run["workers"]: run for run in payload["runs"]}
        best = max(run["speedup_vs_serial"] for run in payload["runs"])
        payload["best_speedup_vs_serial"] = best
        if 4 in by_workers:
            payload["speedup_at_4_workers"] = by_workers[4][
                "speedup_vs_serial"
            ]

        serial_digest = rows_digest(serial_rows)
        payload["serial"]["rows_digest"] = serial_digest
        matrix: dict[str, bool] = {}

        payload["transports"] = []
        if transports:
            engine = ServeEngine(
                db,
                registry,
                workers=2,
                max_pending=max_pending,
                plan_cache=PlanCache(256),
                selectivity_gate=config.selectivity_gate,
                result_ttl=result_ttl,
            )
            try:
                for query in queries:  # warm the shared engine once
                    engine.execute(QueryRequest(query))
                for transport_name in transports:
                    server = None
                    if transport_name == "inproc":
                        client = LoopbackTransport(engine)
                    elif transport_name == "socketpair":
                        client, server = serve_socketpair(engine)
                    elif transport_name == "tcp":
                        server = TCPServer(engine)
                        client = connect_tcp(*server.address)
                    else:
                        raise ReproError(
                            f"serve-bench: unknown transport "
                            f"{transport_name!r}"
                        )
                    try:
                        results, seconds = _run_transport(
                            client, queries, schedule, window=max_pending
                        )
                    finally:
                        client.close()
                        if server is not None:
                            server.close()
                    digest = rows_digest([r.rows for r in results])
                    if digest != serial_digest:
                        raise ReproError(
                            "serve-bench: transport "
                            f"{transport_name!r} results differ from "
                            "serial execution"
                        )
                    matrix[transport_name] = True
                    latencies = [
                        r.queue_seconds + r.execute_seconds
                        for r in results
                    ]
                    payload["transports"].append(
                        {
                            "transport": transport_name,
                            "seconds": round(seconds, 4),
                            "throughput_rps": round(
                                requests / seconds, 2
                            ),
                            **_latency_summary(latencies),
                            "rows_digest": digest,
                            "identical_to_serial": True,
                        }
                    )
            finally:
                engine.shutdown()

        payload["router"] = []
        if processes > 0:
            process_counts = tuple(
                sorted({1, 2, processes} & set(range(1, processes + 1)))
            )
            trace_dir = obs.trace_directory()
            for process_count in process_counts:
                router = ProcessRouter(
                    _router_bootstrap,
                    args=(config, name, max_pending),
                    processes=process_count,
                    trace_dir=None
                    if trace_dir is None
                    else str(trace_dir),
                )
                try:
                    for model_payload in model_payloads:
                        router.control(DeployRequest(model=model_payload))
                    for query in queries:  # warm every worker's caches
                        router.request(QueryRequest(query))
                    results, seconds = _run_transport(
                        router, queries, schedule, window=max_pending
                    )
                finally:
                    router.close()
                digest = rows_digest([r.rows for r in results])
                if digest != serial_digest:
                    raise ReproError(
                        f"serve-bench: router({process_count}) results "
                        "differ from serial execution"
                    )
                matrix[f"router-{process_count}"] = True
                latencies = [
                    r.queue_seconds + r.execute_seconds for r in results
                ]
                payload["router"].append(
                    {
                        "processes": process_count,
                        "seconds": round(seconds, 4),
                        "throughput_rps": round(requests / seconds, 2),
                        **_latency_summary(latencies),
                        "rows_digest": digest,
                        "identical_to_serial": True,
                    }
                )

        payload["transport_matrix"] = matrix
        db.close()
        return payload
