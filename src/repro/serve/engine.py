"""The transport-neutral serving core (``repro.serve.engine``).

:class:`ServeEngine` is *what the service does*, with no opinion about
how bytes reach it: requests are admitted (bounded, with deadlines),
queued, collapsed onto structurally identical in-flight executions, and
executed by a pool of worker threads over shared caches — exactly the
behavior the PR-5 ``QueryService`` monolith had, now speaking **typed
request/response dataclasses** so any transport adapter
(:mod:`repro.serve.transport`) can drive it:

* :class:`QueryRequest` -> :class:`ServeResult` — one prediction join,
* :class:`MatchRequest` -> :class:`SegmentMatchResult` — one
  segment-match batch,
* :class:`DeployRequest` / :class:`RetireRequest` ->
  :class:`DeployResult` / :class:`RetireResult` — registry control,
  handled synchronously by :meth:`ServeEngine.control` so a router can
  broadcast catalog changes to every worker replica as ordinary
  messages (the deploy payload is the model's ``to_dict`` form, which
  makes registry state *broadcastable* rather than shared-by-reference).

Every worker holds its own read-only connection from a
:class:`~repro.serve.pool.ConnectionPool` and its own
:class:`~repro.sql.miningext.PredictionJoinExecutor`, while everything
cacheable is shared: one thread-safe
:class:`~repro.sql.plancache.PlanCache`, one table-statistics cache, one
:class:`~repro.sql.calibration.CalibrationStore`, one
:class:`~repro.serve.batcher.MicroBatcher`, and the registry's live
catalog.  See :mod:`repro.serve.service` for the collapsing and
bit-identity contracts — the facade there is a thin veneer over this
engine and preserves them verbatim.

Construction is **leak-safe**: if any constructor step raises, every
resource already created (connection pool, batcher threads, worker
threads) is torn down before the exception propagates, so a failed
constructor never strands daemon threads or open connections.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field, replace

from collections.abc import Sequence

from repro import obs
from repro.core.optimizer import MiningQuery
from repro.core.predicates import Value
from repro.exceptions import (
    AdmissionError,
    RequestTimeoutError,
    ServeError,
    ServiceStoppedError,
)
from repro.ir import fingerprint as ir_fingerprint
from repro.ir.batch import MaskCacheStats
from repro.mining.base import Row
from repro.mining.interchange import model_from_dict
from repro.segments.batcher import MatchBatcher
from repro.segments.catalog import SegmentCatalog
from repro.serve.admission import (
    AdaptiveAdmissionController,
    AdmissionController,
    Deadline,
)
from repro.serve.batcher import BatchingCatalog, MicroBatcher
from repro.serve.pool import ConnectionPool
from repro.serve.registry import ModelRegistry
from repro.sql.calibration import CalibrationStore
from repro.sql.database import Database
from repro.sql.miningext import ExecutionReport, PredictionJoinExecutor
from repro.sql.plancache import PlanCache
from repro.sql.stats import TableStats


# ---------------------------------------------------------------------------
# Typed requests
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class QueryRequest:
    """One prediction-join request: a query plus serving knobs."""

    query: MiningQuery
    optimize: bool = True
    timeout: float | None = None


@dataclass(frozen=True)
class MatchRequest:
    """One segment-match request over explicit row content.

    ``rows`` is kept as given, not copied: in-process callers may pass
    lazily-materialized sequences that are only iterated worker-side
    (or at wire-encode time for byte transports).
    """

    rows: "Sequence[Row]"
    segments: tuple[str, ...] | None = None
    timeout: float | None = None

    def __post_init__(self) -> None:
        if self.segments is not None and not isinstance(
            self.segments, tuple
        ):
            object.__setattr__(self, "segments", tuple(self.segments))


@dataclass(frozen=True)
class DeployRequest:
    """Register-and-deploy one model from its serialized content.

    ``model`` is the :meth:`~repro.mining.base.MiningModel.to_dict`
    payload — self-contained and JSON-safe, so a router can broadcast
    the same deployment to every worker process and each replica
    derives identical envelopes (derivation is deterministic).
    ``rows`` carries training rows for families whose derivation needs
    them (clustering discretization); ``None`` otherwise.
    """

    model: dict
    rows: tuple[Row, ...] | None = None

    def __post_init__(self) -> None:
        if self.rows is not None and not isinstance(self.rows, tuple):
            object.__setattr__(self, "rows", tuple(self.rows))


@dataclass(frozen=True)
class RetireRequest:
    """Remove one deployed model from serving."""

    name: str


# ---------------------------------------------------------------------------
# Typed responses
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ServeResult:
    """One served request: result rows plus serving-side timings."""

    rows: tuple
    strategy: str
    queue_seconds: float
    execute_seconds: float
    collapsed: bool
    report: ExecutionReport | None

    @property
    def rows_returned(self) -> int:
        return len(self.rows)


@dataclass(frozen=True)
class SegmentMatchResult:
    """One served segment-match request: memberships plus timings.

    ``memberships`` is the row-major answer (per input row, the tuple of
    matching segment names); ``coalesced`` reports whether the request
    shared its evaluation with concurrent ones through the match
    batcher, ``collapsed`` whether it piggybacked on an identical
    in-flight request without evaluating at all.
    """

    memberships: tuple[tuple[str, ...], ...]
    segment_names: tuple[str, ...]
    catalog_version: int
    queue_seconds: float
    match_seconds: float
    collapsed: bool
    coalesced: bool
    mask_stats: MaskCacheStats

    @property
    def rows_matched(self) -> int:
        """Rows belonging to at least one segment."""
        return len([m for m in self.memberships if m])


@dataclass(frozen=True)
class DeployResult:
    """Outcome of one deployment, version-stamped for broadcast checks.

    ``catalog_version`` is the live catalog entry's version after
    publishing — a router asserts every worker replica reports the same
    stamp, so replicas can never silently diverge.
    """

    name: str
    version: int
    catalog_version: int
    labels: tuple[Value, ...] = field(default=())


@dataclass(frozen=True)
class RetireResult:
    """Outcome of one retirement (version of the version retired)."""

    name: str
    version: int


class ResultCache:
    """TTL'd, LRU-bounded cache of successful results by collapse key.

    The collapse key already carries every referenced model's catalog
    version, so a redeploy naturally changes the key and the stale entry
    simply ages out — no invalidation protocol needed.  A cached hit
    returns the original result object (its recorded queue/execute
    timings describe the execution that populated the entry).  Counters:
    ``serve.result_cache.hit`` / ``.miss``.
    """

    def __init__(self, ttl: float, max_entries: int = 1024) -> None:
        if ttl <= 0:
            raise ValueError(f"ttl must be > 0, got {ttl}")
        if max_entries < 1:
            raise ValueError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        self.ttl = ttl
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, tuple[float, object]]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple) -> object | None:
        now = time.monotonic()
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[0] > now:
                self._entries.move_to_end(key)
                self.hits += 1
                obs.add_counter("serve.result_cache.hit")
                return entry[1]
            if entry is not None:
                del self._entries[key]
            self.misses += 1
            obs.add_counter("serve.result_cache.miss")
            return None

    def put(self, key: tuple, result: object) -> None:
        with self._lock:
            self._entries[key] = (time.monotonic() + self.ttl, result)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class ServiceStats:
    """Thread-safe lifetime counters of one engine instance."""

    _FIELDS = (
        "submitted",
        "completed",
        "collapsed",
        "shed",
        "timeouts",
        "errors",
        "cancelled",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = {name: 0 for name in self._FIELDS}

    def increment(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counts[name] += amount

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def __getattr__(self, name: str) -> int:
        if name in ServiceStats._FIELDS:
            with self._lock:
                return self._counts[name]
        raise AttributeError(name)


class _Queued:
    """One admitted request travelling through the queue."""

    __slots__ = ("request", "future", "deadline", "enqueued_at", "key")

    def __init__(
        self,
        request: "QueryRequest | MatchRequest",
        future: "Future",
        deadline: Deadline | None,
        key: tuple | None,
    ) -> None:
        self.request = request
        self.future = future
        self.deadline = deadline
        self.enqueued_at = time.perf_counter()
        self.key = key


_SENTINEL = object()


class ServeEngine:
    """Admission, collapsing, micro-batching, and execution — no wires.

    Use as a context manager (or call :meth:`shutdown`); submitting
    after shutdown raises
    :class:`~repro.exceptions.ServiceStoppedError`.  The engine serves
    **read-only** traffic over ``db``: load tables and build indexes
    through the primary handle before constructing it.
    """

    def __init__(
        self,
        db: Database,
        registry: ModelRegistry,
        workers: int = 4,
        max_pending: int = 128,
        default_timeout: float | None = None,
        plan_cache: PlanCache | None = None,
        batching: bool = True,
        collapsing: bool = True,
        selectivity_gate: float | None = 0.2,
        stats_sample: int = 10_000,
        vectorized: bool = True,
        batch_size: int = 2048,
        segment_catalog: "SegmentCatalog | None" = None,
        calibration: "CalibrationStore | None" = None,
        admission: str = "static",
        batch_window: float = 0.0,
        result_ttl: float | None = None,
        result_cache_size: int = 1024,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if admission not in ("static", "adaptive"):
            raise ValueError(
                f"admission must be 'static' or 'adaptive', "
                f"got {admission!r}"
            )
        self._registry = registry
        self._segments = segment_catalog
        # Every resource owning a thread or a connection is created
        # inside this try block and torn down on any later failure:
        # a constructor that raises must not strand daemon threads or
        # open connections (regression-tested).
        self._match_batcher: MatchBatcher | None = None
        self._pool: ConnectionPool | None = None
        self._batcher: MicroBatcher | None = None
        self._workers: list[threading.Thread] = []
        try:
            self._pool = ConnectionPool(db, read_only=True)
            if admission == "adaptive":
                self._controller: AdmissionController = (
                    AdaptiveAdmissionController(
                        max_pending,
                        default_timeout=default_timeout,
                        workers=workers,
                    )
                )
            else:
                self._controller = AdmissionController(
                    max_pending, default_timeout=default_timeout
                )
            self._result_cache = (
                None
                if result_ttl is None
                else ResultCache(result_ttl, result_cache_size)
            )
            self._plan_cache = (
                plan_cache if plan_cache is not None else PlanCache(256)
            )
            self._stats_cache: dict[str, TableStats] = {}
            # One calibration store next to the stats cache: observations
            # from any worker refine every worker's estimates, and the
            # shared plan cache recalibrates against the shared overlay.
            self._calibration = (
                calibration
                if calibration is not None
                else CalibrationStore()
            )
            if segment_catalog is not None:
                self._match_batcher = MatchBatcher(
                    segment_catalog, window=batch_window
                )
            catalog = registry.catalog
            if batching:
                self._batcher = MicroBatcher(catalog, window=batch_window)
                catalog = BatchingCatalog(registry.catalog, self._batcher)
            self._exec_catalog = catalog
            self._collapsing = collapsing
            self._selectivity_gate = selectivity_gate
            self._stats_sample = stats_sample
            self._vectorized = vectorized
            self._batch_size = batch_size
            self.stats = ServiceStats()
            self._queue: "queue.Queue" = queue.Queue()
            self._lock = threading.Lock()
            self._done = threading.Condition(self._lock)
            self._inflight: dict[tuple, "Future"] = {}
            self._draining = False
            self._stopped = False
            self._workers = [
                threading.Thread(
                    target=self._worker_loop,
                    name=f"repro-serve-worker-{index}",
                    daemon=True,
                )
                for index in range(workers)
            ]
            for worker in self._workers:
                worker.start()
        except BaseException:
            self._teardown_partial()
            raise

    def _teardown_partial(self) -> None:
        """Release whatever a failed constructor already acquired."""
        for _ in self._workers:
            self._queue.put(_SENTINEL)
        for worker in self._workers:
            if worker.is_alive():
                worker.join()
        if self._batcher is not None:
            self._batcher.stop()
        if self._match_batcher is not None:
            self._match_batcher.stop()
        if self._pool is not None:
            self._pool.close_all()

    # -- public API --------------------------------------------------------

    @property
    def registry(self) -> ModelRegistry:
        return self._registry

    @property
    def plan_cache(self) -> PlanCache:
        return self._plan_cache

    @property
    def batcher(self) -> MicroBatcher | None:
        """The shared micro-batcher (``None`` when batching is off)."""
        return self._batcher

    @property
    def calibration(self) -> CalibrationStore:
        """The calibration store shared by every worker's executor."""
        return self._calibration

    @property
    def segments(self) -> "SegmentCatalog | None":
        """The live segment catalog (``None`` without one)."""
        return self._segments

    @property
    def match_batcher(self) -> "MatchBatcher | None":
        """The segment match batcher (``None`` without a catalog)."""
        return self._match_batcher

    @property
    def queue_depth(self) -> int:
        """Admitted, unfinished requests (queued plus executing)."""
        return self._controller.pending

    @property
    def admission(self) -> AdmissionController:
        """The admission controller (static or adaptive)."""
        return self._controller

    @property
    def result_cache(self) -> "ResultCache | None":
        """The TTL'd result cache (``None`` when ``result_ttl`` unset)."""
        return self._result_cache

    def submit(self, request: "QueryRequest | MatchRequest") -> "Future":
        """Admit one typed request; returns a future for its result.

        Raises :class:`~repro.exceptions.QueueFullError` when the bounded
        queue is full (under adaptive admission also
        :class:`~repro.exceptions.DeadlineShedError` when the deadline is
        predicted infeasible) and
        :class:`~repro.exceptions.ServiceStoppedError` when draining or
        stopped; all are *synchronous* (the future is only created for
        admitted requests).  A request structurally identical to one
        currently executing collapses onto it without consuming a queue
        slot; with a result cache configured, a fresh cached result
        answers without queueing at all.
        """
        if isinstance(request, MatchRequest) and self._match_batcher is None:
            raise ServeError(
                "engine was constructed without a segment catalog; "
                "pass segment_catalog= to enable match requests"
            )
        if self._draining or self._stopped:
            obs.add_counter("serve.request.rejected_stopped")
            raise ServiceStoppedError("service is draining or stopped")
        self.stats.increment("submitted")
        obs.add_counter("serve.request.submitted")
        key = self._collapse_key(request)
        if key is not None:
            if self._result_cache is not None:
                cached = self._result_cache.get(key)
                if cached is not None:
                    hit: "Future" = Future()
                    hit.set_result(cached)
                    return hit
            with self._lock:
                primary = self._inflight.get(key)
                if primary is not None:
                    return self._attach(primary)
        deadline = self._controller.deadline_for(request.timeout)
        try:
            self._controller.admit(
                kind=_request_kind(request), deadline=deadline
            )
        except AdmissionError:
            self.stats.increment("shed")
            raise
        future: "Future" = Future()
        self._queue.put(_Queued(request, future, deadline, key))
        return future

    def execute(self, request: "QueryRequest | MatchRequest"):
        """Synchronous :meth:`submit`; enforces the deadline while waiting.

        A wait that outlives the request's deadline raises
        :class:`~repro.exceptions.RequestTimeoutError`.  The underlying
        execution is not preempted mid-flight (SQLite has no safe
        cancellation point here); a timed-out request that was still
        queued is dropped unexecuted by its worker.
        """
        deadline = self._controller.deadline_for(request.timeout)
        future = self.submit(request)
        try:
            return future.result(
                timeout=None if deadline is None else deadline.remaining()
            )
        except FutureTimeoutError:
            self.stats.increment("timeouts")
            obs.add_counter("serve.request.timeout")
            raise RequestTimeoutError(
                f"request exceeded its {deadline.timeout:.3f}s deadline"
            ) from None

    def control(
        self, request: "DeployRequest | RetireRequest"
    ) -> "DeployResult | RetireResult":
        """Apply one registry control message and return its stamp.

        Control traffic bypasses the request queue: deployments and
        retirements serialize on the registry's own lock, and their
        results carry the resulting catalog version so broadcast
        replicas can be checked for agreement.
        """
        if self._stopped:
            raise ServiceStoppedError("service is draining or stopped")
        if isinstance(request, DeployRequest):
            model = model_from_dict(request.model)
            entry = self._registry.register(
                model, rows=request.rows, deploy=True
            )
            assert entry.envelopes is not None
            return DeployResult(
                name=entry.name,
                version=entry.version,
                catalog_version=self._registry.catalog.entry(
                    entry.name
                ).version,
                labels=tuple(sorted(entry.envelopes, key=str)),
            )
        if isinstance(request, RetireRequest):
            entry = self._registry.retire(request.name)
            return RetireResult(name=entry.name, version=entry.version)
        raise ServeError(
            f"unsupported control request {type(request).__name__}"
        )

    def drain(self, timeout: float | None = None) -> bool:
        """Stop admitting and wait for every admitted request to finish.

        Returns ``True`` when the engine fully drained, ``False`` on
        timeout (requests may still be executing).  Draining is
        irreversible — pair it with :meth:`shutdown`.
        """
        self._draining = True
        obs.event("serve.drain", pending=self._controller.pending)
        deadline = Deadline.from_timeout(timeout)
        with self._done:
            while self._controller.pending > 0:
                remaining = (
                    None if deadline is None else deadline.remaining()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._done.wait(
                    timeout=0.1 if remaining is None else min(remaining, 0.1)
                )
        return True

    def shutdown(
        self, drain: bool = True, timeout: float | None = None
    ) -> bool:
        """Drain (optionally), stop the workers, release every resource.

        With ``drain=False`` (or after a drain timeout) queued requests
        fail with :class:`~repro.exceptions.ServiceStoppedError`.
        Idempotent; returns whether shutdown was clean (fully drained).
        """
        if self._stopped:
            return True
        clean = self.drain(timeout=timeout) if drain else False
        self._stopped = True
        self._draining = True
        if not clean:
            self._fail_queued()
        for _ in self._workers:
            self._queue.put(_SENTINEL)
        for worker in self._workers:
            worker.join()
        if self._batcher is not None:
            self._batcher.stop()
        if self._match_batcher is not None:
            self._match_batcher.stop()
        assert self._pool is not None
        self._pool.close_all()
        obs.event("serve.shutdown", clean=clean)
        return clean

    def __enter__(self) -> "ServeEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # -- internals ---------------------------------------------------------

    def _collapse_key(
        self, request: "QueryRequest | MatchRequest"
    ) -> tuple | None:
        """Identity under which concurrent requests may share a result.

        Query requests include every referenced model's *catalog
        version*, so a request racing a redeploy never collapses onto an
        execution against the old envelopes; match requests are keyed on
        exact row content and the segment catalog version.  ``None``
        disables collapsing for this request.
        """
        if not self._collapsing:
            return None
        if isinstance(request, MatchRequest):
            assert self._segments is not None
            return (
                "segments",
                self._segments.version,
                request.segments,
                tuple(
                    tuple(sorted(row.items())) for row in request.rows
                ),
            )
        query = request.query
        names: list[str] = []
        for predicate in query.mining_predicates:
            for name in predicate.models():
                if name not in names:
                    names.append(name)
        versions = tuple(
            (name, self._registry.catalog.entry(name).version)
            for name in names
        )
        return (
            query.table,
            ir_fingerprint(query.relational_predicate),
            tuple(p.describe() for p in query.mining_predicates),
            request.optimize,
            versions,
        )

    def _attach(self, primary: "Future") -> "Future":
        """A dependent future resolving with the in-flight execution."""
        self.stats.increment("collapsed")
        obs.add_counter("serve.request.collapsed")
        dependent: "Future" = Future()

        def propagate(done: "Future") -> None:
            if dependent.cancelled():
                return
            error = done.exception()
            try:
                if error is not None:
                    dependent.set_exception(error)
                else:
                    dependent.set_result(
                        replace(done.result(), collapsed=True)
                    )
            except Exception:
                # The dependent was cancelled between the check and the
                # set; its waiter already gave up.
                pass

        primary.add_done_callback(propagate)
        return dependent

    def _worker_loop(self) -> None:
        assert self._pool is not None
        db = self._pool.get()
        executor = PredictionJoinExecutor(
            db,
            self._exec_catalog,
            selectivity_gate=self._selectivity_gate,
            stats_sample=self._stats_sample,
            plan_cache=self._plan_cache,
            vectorized=self._vectorized,
            batch_size=self._batch_size,
            stats_cache=self._stats_cache,
            calibration=self._calibration,
        )
        while True:
            queued = self._queue.get()
            if queued is _SENTINEL:
                return
            self._handle(queued, executor)

    def _handle(
        self, queued: _Queued, executor: PredictionJoinExecutor
    ) -> None:
        try:
            queue_seconds = time.perf_counter() - queued.enqueued_at
            if not queued.future.set_running_or_notify_cancel():
                self.stats.increment("cancelled")
                obs.add_counter("serve.request.cancelled")
                return
            if queued.deadline is not None and queued.deadline.expired:
                self.stats.increment("timeouts")
                obs.add_counter("serve.request.timeout")
                self._controller.record_outcome(
                    _request_kind(queued.request), None, ok=False
                )
                queued.future.set_exception(
                    RequestTimeoutError(
                        "request spent its whole "
                        f"{queued.deadline.timeout:.3f}s deadline queued"
                    )
                )
                return
            if queued.key is not None:
                with self._lock:
                    primary = self._inflight.get(queued.key)
                    if primary is None:
                        self._inflight[queued.key] = queued.future
                    else:
                        # A duplicate was dequeued while its twin
                        # executes: collapse at the worker, too.
                        dependent = self._attach(primary)
                        dependent.add_done_callback(
                            _forward_to(queued.future)
                        )
                        return
            try:
                if isinstance(queued.request, MatchRequest):
                    result: object = self._execute_match(
                        queued.request, queue_seconds
                    )
                else:
                    result = self._execute_query(
                        queued.request, queue_seconds, executor
                    )
                self.stats.increment("completed")
                obs.add_counter("serve.request.completed")
                service_seconds = (
                    result.match_seconds
                    if isinstance(result, SegmentMatchResult)
                    else result.execute_seconds
                )
                # Feedback before resolving the future: a caller that
                # saw its result can rely on the controller's estimator
                # and limit already reflecting it.
                self._controller.record_outcome(
                    _request_kind(queued.request),
                    service_seconds,
                    ok=queued.deadline is None
                    or not queued.deadline.expired,
                )
                if (
                    self._result_cache is not None
                    and queued.key is not None
                ):
                    self._result_cache.put(queued.key, result)
                queued.future.set_result(result)
            except BaseException as error:
                self.stats.increment("errors")
                obs.add_counter("serve.request.error")
                queued.future.set_exception(error)
            finally:
                if queued.key is not None:
                    with self._lock:
                        if self._inflight.get(queued.key) is queued.future:
                            del self._inflight[queued.key]
        finally:
            self._controller.release()
            with self._done:
                self._done.notify_all()

    def _execute_query(
        self,
        request: QueryRequest,
        queue_seconds: float,
        executor: PredictionJoinExecutor,
    ) -> ServeResult:
        with obs.span("serve.request", table=request.query.table) as span:
            started = time.perf_counter()
            report = executor.execute(
                request.query, optimize_query=request.optimize
            )
            execute_seconds = time.perf_counter() - started
            span.update(
                queue_seconds=queue_seconds,
                rows_returned=report.rows_returned,
                strategy=report.strategy,
            )
        return ServeResult(
            rows=report.rows,
            strategy=report.strategy,
            queue_seconds=queue_seconds,
            execute_seconds=execute_seconds,
            collapsed=False,
            report=report,
        )

    def _execute_match(
        self, request: MatchRequest, queue_seconds: float
    ) -> SegmentMatchResult:
        """Run one segment-match request through the match batcher."""
        assert self._match_batcher is not None
        with obs.span("serve.match", rows=len(request.rows)) as span:
            started = time.perf_counter()
            matches, coalesced = self._match_batcher.match(
                request.rows, request.segments
            )
            match_seconds = time.perf_counter() - started
            span.update(
                queue_seconds=queue_seconds,
                segments=len(matches.names),
                rows_matched=matches.rows_matched,
                coalesced=coalesced,
            )
        return SegmentMatchResult(
            memberships=matches.memberships,
            segment_names=matches.names,
            catalog_version=matches.catalog_version,
            queue_seconds=queue_seconds,
            match_seconds=match_seconds,
            collapsed=False,
            coalesced=coalesced,
            mask_stats=matches.stats,
        )

    def _fail_queued(self) -> None:
        """Fail every still-queued request during a non-drained shutdown."""
        while True:
            try:
                queued = self._queue.get_nowait()
            except queue.Empty:
                return
            if queued is _SENTINEL:
                continue
            if queued.future.set_running_or_notify_cancel():
                queued.future.set_exception(
                    ServiceStoppedError("service stopped before execution")
                )
            self._controller.release()
            with self._done:
                self._done.notify_all()


def _request_kind(request: "QueryRequest | MatchRequest") -> str:
    """The admission/estimation kind of a typed request."""
    return "match" if isinstance(request, MatchRequest) else "query"


def _forward_to(target: "Future"):
    """A done-callback copying one future's outcome onto another."""

    def forward(done: "Future") -> None:
        error = done.exception()
        try:
            if error is not None:
                target.set_exception(error)
            else:
                target.set_result(done.result())
        except Exception:
            pass

    return forward
