"""Per-thread connection pool over one shared database.

``sqlite3`` connections are thread-affine, and the repo's
:class:`~repro.sql.database.Database` wraps exactly one connection — fine
for a benchmark script, fatal for a worker pool.  :class:`ConnectionPool`
hands every thread its own sibling connection
(:meth:`Database.for_thread`) onto the same data: the same file, or the
same named shared-cache in-memory database.

Serving connections are **read-only** by default (``PRAGMA query_only``),
so a bug in a worker cannot mutate the data being served; writes (loads,
index builds) go through the primary handle before serving starts.

The pool tracks every sibling it created so :meth:`close_all` can tear
them down during service shutdown; the primary handle is *not* owned by
the pool (an in-memory database lives exactly as long as its primary
connection, so the service's caller closes it last).
"""

from __future__ import annotations

import threading

from repro import obs
from repro.exceptions import ServiceStoppedError
from repro.sql.database import Database


class ConnectionPool:
    """Thread-local :class:`Database` handles over one shared database."""

    def __init__(self, db: Database, read_only: bool = True) -> None:
        self._primary = db
        self._read_only = read_only
        self._local = threading.local()
        self._lock = threading.Lock()
        self._siblings: list[Database] = []
        self._closed = False

    @property
    def primary(self) -> Database:
        """The writable handle the pool was built around."""
        return self._primary

    def get(self) -> Database:
        """This thread's connection, created on first use.

        Raises :class:`~repro.exceptions.ServiceStoppedError` once the
        pool is closed — a worker holding a stale reference must not
        silently reopen connections onto a database being torn down.
        """
        if self._closed:
            raise ServiceStoppedError("connection pool is closed")
        handle = getattr(self._local, "db", None)
        if handle is not None:
            return handle
        with self._lock:
            if self._closed:
                raise ServiceStoppedError("connection pool is closed")
            handle = self._primary.for_thread(read_only=self._read_only)
            self._siblings.append(handle)
            obs.set_gauge("serve.pool.connections", len(self._siblings))
        self._local.db = handle
        return handle

    def __len__(self) -> int:
        with self._lock:
            return len(self._siblings)

    def close_all(self) -> None:
        """Close every sibling connection; the primary stays open."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            siblings, self._siblings = self._siblings, []
        for handle in siblings:
            handle.close()
        obs.set_gauge("serve.pool.connections", 0)

    def __enter__(self) -> "ConnectionPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close_all()
