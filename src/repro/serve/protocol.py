"""The serving wire protocol (``repro.serve.protocol``).

A versioned, length-prefixed framed codec: every message on a serving
connection is one **frame** — a fixed 16-byte header (magic, protocol
version, frame kind, request id, payload length) followed by a JSON
payload.  The request id multiplexes concurrent requests over one
connection; the kind separates requests from responses and typed
errors.  :class:`FrameDecoder` is an incremental parser: feed it bytes
in any fragmentation — one byte at a time, several frames concatenated,
split mid-header — and it yields exactly the frames that arrived
(property-tested in ``tests/property/test_protocol_roundtrip.py``).

The payload codecs round-trip every typed request
(:class:`~repro.serve.engine.QueryRequest`,
:class:`~repro.serve.engine.MatchRequest`, and the
deploy/retire control messages), every typed response, and every
:class:`~repro.exceptions.ReproError` subclass (by class name, with a
:class:`~repro.exceptions.ServeError` fallback for unknown names).
Values survive exactly: JSON distinguishes ``1``/``1.0``/``True`` and
Python's ``repr``-based float serialization round-trips every finite
float; the non-finite floats JSON cannot carry are tagged
``{"__float__": "nan" | "inf" | "-inf"}``.

The one deliberate loss: a :class:`~repro.serve.engine.ServeResult`
crossing the wire drops its ``report`` (the full
:class:`~repro.sql.miningext.ExecutionReport` with plan objects and
prediction maps is a debugging artifact of in-process serving, not part
of the serving contract) — ``report`` is ``None`` on the client side.
In-process loopback keeps it, so existing tests see no change.

Malformed input — bad magic, unknown version or kind, oversized or
truncated payloads, unknown tags — raises
:class:`~repro.exceptions.ProtocolError` rather than anything
json/struct-flavored, so transports can fail connections typed.
"""

from __future__ import annotations

import json
import math
import struct

import repro.exceptions as _exceptions
from repro.core.optimizer import MiningQuery
from repro.core.predicates import (
    FALSE,
    TRUE,
    And,
    Comparison,
    InSet,
    Interval,
    Not,
    Op,
    Or,
    Predicate,
    Value,
)
from repro.core.rewrite import (
    MiningPredicate,
    PredictionEquals,
    PredictionIn,
    PredictionJoinColumn,
    PredictionJoinPrediction,
)
from repro.exceptions import ProtocolError, ReproError, ServeError
from repro.ir.batch import MaskCacheStats
from repro.serve.engine import (
    DeployRequest,
    DeployResult,
    MatchRequest,
    QueryRequest,
    RetireRequest,
    RetireResult,
    SegmentMatchResult,
    ServeResult,
)

PROTOCOL_VERSION = 1
MAGIC = b"RS"

#: Frame kinds.
KIND_REQUEST = 1
KIND_RESPONSE = 2
KIND_ERROR = 3
_KINDS = frozenset({KIND_REQUEST, KIND_RESPONSE, KIND_ERROR})

#: Header: magic(2s) version(B) kind(B) request_id(Q) length(I).
_HEADER = struct.Struct("!2sBBQI")
HEADER_BYTES = _HEADER.size

#: Hard payload ceiling — a corrupt length field must not make the
#: decoder buffer gigabytes before noticing.
MAX_FRAME_BYTES = 64 * 1024 * 1024


class Frame:
    """One decoded frame: kind, request id, and parsed JSON payload."""

    __slots__ = ("kind", "request_id", "payload")

    def __init__(self, kind: int, request_id: int, payload: dict) -> None:
        self.kind = kind
        self.request_id = request_id
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Frame(kind={self.kind}, request_id={self.request_id}, "
            f"payload={self.payload!r})"
        )


def encode_frame(kind: int, request_id: int, payload: dict) -> bytes:
    """Serialize one frame (header plus JSON payload) to bytes."""
    if kind not in _KINDS:
        raise ProtocolError(f"unknown frame kind {kind}")
    try:
        body = json.dumps(
            payload,
            sort_keys=True,
            separators=(",", ":"),
            allow_nan=False,
        ).encode("utf-8")
    except (TypeError, ValueError) as error:
        raise ProtocolError(
            f"payload is not frame-serializable: {error}"
        ) from error
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"payload of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame ceiling"
        )
    header = _HEADER.pack(
        MAGIC, PROTOCOL_VERSION, kind, request_id, len(body)
    )
    return header + body


class FrameDecoder:
    """Incremental frame parser over an arbitrarily fragmented stream.

    :meth:`feed` accepts any byte chunking and returns every frame
    completed by the new bytes (possibly none, possibly several).
    Protocol violations raise :class:`~repro.exceptions.ProtocolError`;
    after one, the stream is unrecoverable and the connection should be
    closed.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[Frame]:
        self._buffer.extend(data)
        frames: list[Frame] = []
        while True:
            if len(self._buffer) < HEADER_BYTES:
                return frames
            magic, version, kind, request_id, length = _HEADER.unpack_from(
                self._buffer
            )
            if magic != MAGIC:
                raise ProtocolError(
                    f"bad frame magic {bytes(magic)!r} (expected {MAGIC!r})"
                )
            if version != PROTOCOL_VERSION:
                raise ProtocolError(
                    f"unsupported protocol version {version} "
                    f"(speaking {PROTOCOL_VERSION})"
                )
            if kind not in _KINDS:
                raise ProtocolError(f"unknown frame kind {kind}")
            if length > MAX_FRAME_BYTES:
                raise ProtocolError(
                    f"frame announces {length} bytes, over the "
                    f"{MAX_FRAME_BYTES}-byte ceiling"
                )
            if len(self._buffer) < HEADER_BYTES + length:
                return frames
            body = bytes(
                self._buffer[HEADER_BYTES : HEADER_BYTES + length]
            )
            del self._buffer[: HEADER_BYTES + length]
            try:
                payload = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                raise ProtocolError(
                    f"frame payload is not valid JSON: {error}"
                ) from error
            if not isinstance(payload, dict):
                raise ProtocolError(
                    "frame payload must be a JSON object, got "
                    f"{type(payload).__name__}"
                )
            frames.append(Frame(kind, request_id, payload))


# ---------------------------------------------------------------------------
# Values
# ---------------------------------------------------------------------------


def encode_value(value: "Value | None"):
    """One predicate/row value into its JSON form.

    int / str / bool / None and every finite float are JSON-native and
    round-trip exactly; non-finite floats are tagged.
    """
    if isinstance(value, float) and not math.isfinite(value):
        if math.isnan(value):
            return {"__float__": "nan"}
        return {"__float__": "inf" if value > 0 else "-inf"}
    return value


def decode_value(encoded):
    """Inverse of :func:`encode_value`."""
    if isinstance(encoded, dict):
        try:
            return float(encoded["__float__"])
        except (KeyError, ValueError, TypeError):
            raise ProtocolError(
                f"malformed value payload {encoded!r}"
            ) from None
    return encoded


def _encode_row(row) -> dict:
    return {column: encode_value(value) for column, value in row.items()}


def _decode_row(encoded: dict) -> dict:
    return {
        column: decode_value(value) for column, value in encoded.items()
    }


# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------


def encode_predicate(predicate: Predicate) -> dict:
    """One relational predicate node into its tagged JSON form."""
    if predicate is TRUE or type(predicate).__name__ == "TruePredicate":
        return {"p": "true"}
    if predicate is FALSE or type(predicate).__name__ == "FalsePredicate":
        return {"p": "false"}
    if isinstance(predicate, Comparison):
        return {
            "p": "cmp",
            "col": predicate.column,
            "op": predicate.op.value,
            "v": encode_value(predicate.value),
        }
    if isinstance(predicate, InSet):
        return {
            "p": "in",
            "col": predicate.column,
            "vs": [encode_value(v) for v in predicate.values],
        }
    if isinstance(predicate, Interval):
        payload: dict = {
            "p": "iv",
            "col": predicate.column,
            "lc": predicate.low_closed,
            "hc": predicate.high_closed,
        }
        if predicate.low is not None:
            payload["lo"] = encode_value(predicate.low)
        if predicate.high is not None:
            payload["hi"] = encode_value(predicate.high)
        return payload
    if isinstance(predicate, And):
        return {
            "p": "and",
            "ops": [encode_predicate(op) for op in predicate.operands],
        }
    if isinstance(predicate, Or):
        return {
            "p": "or",
            "ops": [encode_predicate(op) for op in predicate.operands],
        }
    if isinstance(predicate, Not):
        return {"p": "not", "op": encode_predicate(predicate.operand)}
    raise ProtocolError(
        f"cannot encode predicate type {type(predicate).__name__}"
    )


def decode_predicate(payload: dict) -> Predicate:
    """Inverse of :func:`encode_predicate`."""
    try:
        tag = payload["p"]
    except (TypeError, KeyError):
        raise ProtocolError(
            f"malformed predicate payload {payload!r}"
        ) from None
    try:
        if tag == "true":
            return TRUE
        if tag == "false":
            return FALSE
        if tag == "cmp":
            return Comparison(
                payload["col"], Op(payload["op"]), decode_value(payload["v"])
            )
        if tag == "in":
            return InSet(
                payload["col"],
                tuple(decode_value(v) for v in payload["vs"]),
            )
        if tag == "iv":
            return Interval(
                payload["col"],
                low=decode_value(payload["lo"])
                if "lo" in payload
                else None,
                high=decode_value(payload["hi"])
                if "hi" in payload
                else None,
                low_closed=payload["lc"],
                high_closed=payload["hc"],
            )
        if tag == "and":
            return And(
                tuple(decode_predicate(op) for op in payload["ops"])
            )
        if tag == "or":
            return Or(
                tuple(decode_predicate(op) for op in payload["ops"])
            )
        if tag == "not":
            return Not(decode_predicate(payload["op"]))
    except ProtocolError:
        raise
    except (KeyError, TypeError, ValueError) as error:
        raise ProtocolError(
            f"malformed predicate payload {payload!r}: {error}"
        ) from error
    raise ProtocolError(f"unknown predicate tag {tag!r}")


def encode_mining_predicate(predicate: MiningPredicate) -> dict:
    """One mining predicate into its tagged JSON form."""
    if isinstance(predicate, PredictionEquals):
        return {
            "m": "eq",
            "model": predicate.model_name,
            "label": encode_value(predicate.label),
        }
    if isinstance(predicate, PredictionIn):
        return {
            "m": "in",
            "model": predicate.model_name,
            "labels": [encode_value(v) for v in predicate.labels],
        }
    if isinstance(predicate, PredictionJoinPrediction):
        return {
            "m": "join_pred",
            "a": predicate.model_a,
            "b": predicate.model_b,
        }
    if isinstance(predicate, PredictionJoinColumn):
        return {
            "m": "join_col",
            "model": predicate.model_name,
            "col": predicate.column,
        }
    raise ProtocolError(
        f"cannot encode mining predicate type {type(predicate).__name__}"
    )


def decode_mining_predicate(payload: dict) -> MiningPredicate:
    """Inverse of :func:`encode_mining_predicate`."""
    try:
        tag = payload["m"]
        if tag == "eq":
            return PredictionEquals(
                payload["model"], decode_value(payload["label"])
            )
        if tag == "in":
            return PredictionIn(
                payload["model"],
                tuple(decode_value(v) for v in payload["labels"]),
            )
        if tag == "join_pred":
            return PredictionJoinPrediction(payload["a"], payload["b"])
        if tag == "join_col":
            return PredictionJoinColumn(payload["model"], payload["col"])
    except ProtocolError:
        raise
    except (KeyError, TypeError) as error:
        raise ProtocolError(
            f"malformed mining predicate payload {payload!r}: {error}"
        ) from error
    raise ProtocolError(f"unknown mining predicate tag {tag!r}")


# ---------------------------------------------------------------------------
# Requests
# ---------------------------------------------------------------------------


def encode_request(
    request: "QueryRequest | MatchRequest | DeployRequest | RetireRequest",
) -> dict:
    """One typed request into its tagged JSON form."""
    if isinstance(request, QueryRequest):
        return {
            "q": "query",
            "table": request.query.table,
            "rel": encode_predicate(request.query.relational_predicate),
            "mine": [
                encode_mining_predicate(p)
                for p in request.query.mining_predicates
            ],
            "optimize": request.optimize,
            "timeout": request.timeout,
        }
    if isinstance(request, MatchRequest):
        return {
            "q": "match",
            "rows": [_encode_row(row) for row in request.rows],
            "segments": None
            if request.segments is None
            else list(request.segments),
            "timeout": request.timeout,
        }
    if isinstance(request, DeployRequest):
        # to_dict payloads are JSON-native by the interchange contract
        # (save_model writes them with plain json.dumps), so the model
        # body crosses verbatim.
        return {
            "q": "deploy",
            "model": request.model,
            "rows": None
            if request.rows is None
            else [_encode_row(row) for row in request.rows],
        }
    if isinstance(request, RetireRequest):
        return {"q": "retire", "name": request.name}
    raise ProtocolError(
        f"cannot encode request type {type(request).__name__}"
    )


def decode_request(
    payload: dict,
) -> "QueryRequest | MatchRequest | DeployRequest | RetireRequest":
    """Inverse of :func:`encode_request`."""
    try:
        tag = payload["q"]
        if tag == "query":
            return QueryRequest(
                query=MiningQuery(
                    table=payload["table"],
                    relational_predicate=decode_predicate(payload["rel"]),
                    mining_predicates=tuple(
                        decode_mining_predicate(p) for p in payload["mine"]
                    ),
                ),
                optimize=payload["optimize"],
                timeout=payload["timeout"],
            )
        if tag == "match":
            return MatchRequest(
                rows=tuple(_decode_row(row) for row in payload["rows"]),
                segments=None
                if payload["segments"] is None
                else tuple(payload["segments"]),
                timeout=payload["timeout"],
            )
        if tag == "deploy":
            return DeployRequest(
                model=payload["model"],
                rows=None
                if payload["rows"] is None
                else tuple(_decode_row(row) for row in payload["rows"]),
            )
        if tag == "retire":
            return RetireRequest(name=payload["name"])
    except ProtocolError:
        raise
    except (KeyError, TypeError) as error:
        raise ProtocolError(
            f"malformed request payload: {error}"
        ) from error
    raise ProtocolError(f"unknown request tag {tag!r}")


# ---------------------------------------------------------------------------
# Responses
# ---------------------------------------------------------------------------


def encode_response(
    result: "ServeResult | SegmentMatchResult | DeployResult | RetireResult",
) -> dict:
    """One typed response into its tagged JSON form."""
    if isinstance(result, ServeResult):
        return {
            "r": "result",
            "rows": [_encode_row(row) for row in result.rows],
            "strategy": result.strategy,
            "queue_seconds": result.queue_seconds,
            "execute_seconds": result.execute_seconds,
            "collapsed": result.collapsed,
        }
    if isinstance(result, SegmentMatchResult):
        return {
            "r": "match",
            "memberships": [list(m) for m in result.memberships],
            "segment_names": list(result.segment_names),
            "catalog_version": result.catalog_version,
            "queue_seconds": result.queue_seconds,
            "match_seconds": result.match_seconds,
            "collapsed": result.collapsed,
            "coalesced": result.coalesced,
            "mask_stats": {
                "computed": result.mask_stats.computed,
                "shared": result.mask_stats.shared,
                "constants_skipped": result.mask_stats.constants_skipped,
                "plan_hits": result.mask_stats.plan_hits,
                "plan_misses": result.mask_stats.plan_misses,
            },
        }
    if isinstance(result, DeployResult):
        return {
            "r": "deploy",
            "name": result.name,
            "version": result.version,
            "catalog_version": result.catalog_version,
            "labels": [encode_value(v) for v in result.labels],
        }
    if isinstance(result, RetireResult):
        return {"r": "retire", "name": result.name, "version": result.version}
    raise ProtocolError(
        f"cannot encode response type {type(result).__name__}"
    )


def decode_response(
    payload: dict,
) -> "ServeResult | SegmentMatchResult | DeployResult | RetireResult":
    """Inverse of :func:`encode_response` (``ServeResult.report`` is
    ``None`` — execution reports do not cross the wire)."""
    try:
        tag = payload["r"]
        if tag == "result":
            return ServeResult(
                rows=tuple(_decode_row(row) for row in payload["rows"]),
                strategy=payload["strategy"],
                queue_seconds=payload["queue_seconds"],
                execute_seconds=payload["execute_seconds"],
                collapsed=payload["collapsed"],
                report=None,
            )
        if tag == "match":
            stats = payload["mask_stats"]
            return SegmentMatchResult(
                memberships=tuple(
                    tuple(m) for m in payload["memberships"]
                ),
                segment_names=tuple(payload["segment_names"]),
                catalog_version=payload["catalog_version"],
                queue_seconds=payload["queue_seconds"],
                match_seconds=payload["match_seconds"],
                collapsed=payload["collapsed"],
                coalesced=payload["coalesced"],
                mask_stats=MaskCacheStats(
                    computed=stats["computed"],
                    shared=stats["shared"],
                    constants_skipped=stats["constants_skipped"],
                    plan_hits=stats["plan_hits"],
                    plan_misses=stats["plan_misses"],
                ),
            )
        if tag == "deploy":
            return DeployResult(
                name=payload["name"],
                version=payload["version"],
                catalog_version=payload["catalog_version"],
                labels=tuple(decode_value(v) for v in payload["labels"]),
            )
        if tag == "retire":
            return RetireResult(
                name=payload["name"], version=payload["version"]
            )
    except ProtocolError:
        raise
    except (KeyError, TypeError) as error:
        raise ProtocolError(
            f"malformed response payload: {error}"
        ) from error
    raise ProtocolError(f"unknown response tag {tag!r}")


# ---------------------------------------------------------------------------
# Errors
# ---------------------------------------------------------------------------


def _error_registry() -> dict[str, type]:
    """Every :class:`~repro.exceptions.ReproError` subclass, by name."""
    registry: dict[str, type] = {}
    for name in dir(_exceptions):
        obj = getattr(_exceptions, name)
        if isinstance(obj, type) and issubclass(obj, ReproError):
            registry[name] = obj
    return registry


_ERRORS = _error_registry()


def encode_error(error: BaseException) -> dict:
    """One exception into its wire form (class name plus message)."""
    return {"error": type(error).__name__, "message": str(error)}


def decode_error(payload: dict) -> ReproError:
    """Inverse of :func:`encode_error`.

    Unknown class names decode as plain
    :class:`~repro.exceptions.ServeError` carrying the original class
    name in the message — a newer server must not crash an older
    client's decoder.
    """
    try:
        name = payload["error"]
        message = payload["message"]
    except (TypeError, KeyError):
        raise ProtocolError(
            f"malformed error payload {payload!r}"
        ) from None
    cls = _ERRORS.get(name)
    if cls is None:
        return ServeError(f"{name}: {message}")
    try:
        return cls(message)
    except TypeError:
        return ServeError(f"{name}: {message}")
