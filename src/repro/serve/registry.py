"""Versioned model registry with deploy-time envelope derivation.

The paper precomputes atomic upper envelopes "during training of the
mining models" (Section 4.2); in a serving system that precompute belongs
to *deployment*, not to every query.  :class:`ModelRegistry` keeps a
versioned history of registered models and, on :meth:`~ModelRegistry.deploy`,
derives the deployed model's envelopes exactly once, interns every
envelope predicate into the IR table (so equal structures across models
share storage and fingerprint memos), and publishes the model into the
live :class:`~repro.core.catalog.ModelCatalog` the query service
executes against.

Derived envelopes are cached under the model's *content fingerprint*
(:func:`model_fingerprint`, a digest of ``model.to_dict()``), so
retire-and-redeploy cycles — and deploys of a structurally identical
model under another version — warm-start instead of re-deriving
(``serve.registry.warm_start.hit`` / ``.miss`` counters).

Publishing into the live catalog bumps the catalog entry's version, which
is what invalidates every cached plan built against the previous
envelopes (see :mod:`repro.sql.plancache`); retiring removes the entry,
so stale plans *fail* typed rather than replay.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections.abc import Sequence
from dataclasses import dataclass, field, replace

from repro import obs
from repro.core.catalog import ModelCatalog
from repro.core.derive import derive_envelopes
from repro.core.envelope import UpperEnvelope
from repro.core.nb_envelope import DEFAULT_MAX_NODES
from repro.core.predicates import Value
from repro.exceptions import RegistryError
from repro.ir import fingerprint as ir_fingerprint
from repro.ir import intern
from repro.mining.base import MiningModel, Row


def model_fingerprint(model: MiningModel) -> str:
    """Stable content digest of a model (its ``to_dict`` serialization).

    Two models with identical content — same structure, same parameters —
    share a fingerprint and therefore share derived envelopes in the
    registry's warm-start cache.
    """
    payload = json.dumps(
        model.to_dict(), sort_keys=True, default=str, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class ModelVersion:
    """One registered version of one model name."""

    name: str
    version: int
    model: MiningModel
    fingerprint: str
    #: Training rows retained for derivation (clustering families need
    #: them to discretize continuous features); ``None`` otherwise.
    rows: Sequence[Row] | None = None
    deployed: bool = False
    #: Envelopes resolved at deploy time (``None`` until first deployed).
    envelopes: dict[Value, UpperEnvelope] | None = field(
        default=None, repr=False
    )
    derive_seconds: float = 0.0
    #: IR fingerprints of the interned envelope predicates, per label.
    envelope_fingerprints: dict[Value, str] = field(default_factory=dict)


class ModelRegistry:
    """Thread-safe register/deploy/retire lifecycle over a live catalog.

    The registry owns the :class:`~repro.core.catalog.ModelCatalog` the
    query service executes against (:attr:`catalog`); only deployed
    versions are visible there.  All mutating operations serialize on one
    lock; catalog reads from worker threads are lock-free (publishing an
    entry is a single dict assignment under the GIL).
    """

    def __init__(
        self,
        catalog: ModelCatalog | None = None,
        max_nodes: int = DEFAULT_MAX_NODES,
        bins: int = 8,
    ) -> None:
        self._catalog = catalog if catalog is not None else ModelCatalog()
        self._max_nodes = max_nodes
        self._bins = bins
        self._lock = threading.RLock()
        self._versions: dict[str, list[ModelVersion]] = {}
        self._deployed: dict[str, ModelVersion] = {}
        #: model content fingerprint -> interned envelopes (warm-start).
        self._envelope_cache: dict[
            str, tuple[dict[Value, UpperEnvelope], float]
        ] = {}

    @property
    def catalog(self) -> ModelCatalog:
        """The live catalog holding every *deployed* model."""
        return self._catalog

    # -- lifecycle ---------------------------------------------------------

    def register(
        self,
        model: MiningModel,
        rows: Sequence[Row] | None = None,
        deploy: bool = False,
    ) -> ModelVersion:
        """Add a new version of ``model.name``; optionally deploy it.

        Registration is cheap (a fingerprint over model content); the
        expensive envelope derivation happens at :meth:`deploy`.
        """
        with self._lock:
            history = self._versions.setdefault(model.name, [])
            entry = ModelVersion(
                name=model.name,
                version=len(history) + 1,
                model=model,
                fingerprint=model_fingerprint(model),
                rows=rows,
            )
            history.append(entry)
            obs.event(
                "serve.registry.register",
                model=model.name,
                version=entry.version,
            )
            if deploy:
                return self.deploy(model.name, entry.version)
            return entry

    def deploy(self, name: str, version: int | None = None) -> ModelVersion:
        """Make one registered version live (default: the newest).

        Derives and interns the version's envelopes unless a structurally
        identical model was deployed before, in which case the envelope
        cache warm-starts the deployment.  Publishing bumps the catalog
        version, invalidating every cached plan against the old envelopes.
        """
        with self._lock:
            entry = self._resolve(name, version)
            with obs.span(
                "serve.deploy", model=name, version=entry.version
            ) as span:
                if entry.envelopes is None:
                    cached = self._envelope_cache.get(entry.fingerprint)
                    if cached is not None:
                        obs.add_counter("serve.registry.warm_start.hit")
                        span.set("warm_start", True)
                        entry.envelopes, entry.derive_seconds = cached
                    else:
                        obs.add_counter("serve.registry.warm_start.miss")
                        span.set("warm_start", False)
                        derived = derive_envelopes(
                            entry.model,
                            rows=entry.rows,
                            max_nodes=self._max_nodes,
                            bins=self._bins,
                        )
                        entry.envelopes = {
                            label: replace(
                                envelope,
                                predicate=intern(envelope.predicate),
                            )
                            for label, envelope in derived.items()
                        }
                        entry.derive_seconds = sum(
                            e.seconds for e in entry.envelopes.values()
                        )
                        self._envelope_cache[entry.fingerprint] = (
                            entry.envelopes,
                            entry.derive_seconds,
                        )
                    entry.envelope_fingerprints = {
                        label: ir_fingerprint(envelope.predicate)
                        for label, envelope in entry.envelopes.items()
                    }
                previous = self._deployed.get(name)
                if previous is not None and previous is not entry:
                    previous.deployed = False
                self._catalog.register(
                    entry.model, envelopes=entry.envelopes
                )
                entry.deployed = True
                self._deployed[name] = entry
                span.update(
                    catalog_version=self._catalog.entry(name).version,
                    labels=len(entry.envelopes),
                )
            return entry

    def retire(self, name: str) -> ModelVersion:
        """Remove a deployed model from serving.

        Later queries referencing it fail with a typed
        :class:`~repro.exceptions.CatalogError` (surfaced through the
        service as a request error), and cached plans keyed on it can
        never be replayed.  The version history is kept: the model can be
        redeployed, warm-starting from its cached envelopes.
        """
        with self._lock:
            entry = self._deployed.pop(name, None)
            if entry is None:
                raise RegistryError(
                    f"model {name!r} is not deployed; "
                    f"deployed: {self.deployed_names()}"
                )
            self._catalog.unregister(name)
            entry.deployed = False
            obs.event(
                "serve.registry.retire", model=name, version=entry.version
            )
            return entry

    # -- introspection -----------------------------------------------------

    def versions(self, name: str) -> tuple[ModelVersion, ...]:
        """Every registered version of ``name``, oldest first."""
        with self._lock:
            try:
                return tuple(self._versions[name])
            except KeyError:
                raise RegistryError(
                    f"no model named {name!r} is registered; "
                    f"registered: {sorted(self._versions)}"
                ) from None

    def deployed_version(self, name: str) -> ModelVersion | None:
        """The live version of ``name`` (``None`` when not deployed)."""
        with self._lock:
            return self._deployed.get(name)

    def deployed_names(self) -> list[str]:
        with self._lock:
            return sorted(self._deployed)

    def registered_names(self) -> list[str]:
        with self._lock:
            return sorted(self._versions)

    def _resolve(self, name: str, version: int | None) -> ModelVersion:
        try:
            history = self._versions[name]
        except KeyError:
            raise RegistryError(
                f"no model named {name!r} is registered; "
                f"registered: {sorted(self._versions)}"
            ) from None
        if version is None:
            return history[-1]
        if not 1 <= version <= len(history):
            raise RegistryError(
                f"model {name!r} has no version {version}; "
                f"versions: 1..{len(history)}"
            )
        return history[version - 1]
