"""Versioned model registry with deploy-time envelope derivation.

The paper precomputes atomic upper envelopes "during training of the
mining models" (Section 4.2); in a serving system that precompute belongs
to *deployment*, not to every query.  :class:`ModelRegistry` keeps a
versioned history of registered models and, on :meth:`~ModelRegistry.deploy`,
derives the deployed model's envelopes exactly once, interns every
envelope predicate into the IR table (so equal structures across models
share storage and fingerprint memos), and publishes the model into the
live :class:`~repro.core.catalog.ModelCatalog` the query service
executes against.

Derived envelopes are cached under the model's *content fingerprint*
(:func:`model_fingerprint`, a digest of ``model.to_dict()``), so
retire-and-redeploy cycles — and deploys of a structurally identical
model under another version — warm-start instead of re-deriving
(``serve.registry.warm_start.hit`` / ``.miss`` counters).  With a
``cache_dir`` (or ``REPRO_ENVELOPE_CACHE_DIR``), the cache also
**persists**: every fresh derivation is written as
``envelopes_<fingerprint>.json`` with the sweep cache's atomic
tempfile + ``os.replace`` discipline, so a new process — a restarted
service, a respawned :class:`~repro.serve.router.ProcessRouter` worker —
skips re-derivation entirely (``serve.registry.warm_start.disk_hit`` /
``.disk_miss``).  Corrupt or version-skewed files are ignored, never
fatal: the fallback is simply re-deriving.

Publishing into the live catalog bumps the catalog entry's version, which
is what invalidates every cached plan built against the previous
envelopes (see :mod:`repro.sql.plancache`); retiring removes the entry,
so stale plans *fail* typed rather than replay.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from collections.abc import Sequence
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro import obs
from repro.core.catalog import ModelCatalog
from repro.core.derive import derive_envelopes
from repro.core.envelope import UpperEnvelope
from repro.core.nb_envelope import DEFAULT_MAX_NODES
from repro.core.predicates import Value
from repro.exceptions import RegistryError
from repro.ir import fingerprint as ir_fingerprint
from repro.ir import intern
from repro.mining.base import MiningModel, ModelKind, Row

#: Environment fallback for the on-disk envelope cache directory.
ENV_ENVELOPE_CACHE_DIR = "REPRO_ENVELOPE_CACHE_DIR"

#: Format stamp of the on-disk envelope cache; bump on layout changes
#: (old files are then treated as misses, not errors).
_DISK_FORMAT = 1


def model_fingerprint(model: MiningModel) -> str:
    """Stable content digest of a model (its ``to_dict`` serialization).

    Two models with identical content — same structure, same parameters —
    share a fingerprint and therefore share derived envelopes in the
    registry's warm-start cache.
    """
    payload = json.dumps(
        model.to_dict(), sort_keys=True, default=str, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class ModelVersion:
    """One registered version of one model name."""

    name: str
    version: int
    model: MiningModel
    fingerprint: str
    #: Training rows retained for derivation (clustering families need
    #: them to discretize continuous features); ``None`` otherwise.
    rows: Sequence[Row] | None = None
    deployed: bool = False
    #: Envelopes resolved at deploy time (``None`` until first deployed).
    envelopes: dict[Value, UpperEnvelope] | None = field(
        default=None, repr=False
    )
    derive_seconds: float = 0.0
    #: IR fingerprints of the interned envelope predicates, per label.
    envelope_fingerprints: dict[Value, str] = field(default_factory=dict)


class ModelRegistry:
    """Thread-safe register/deploy/retire lifecycle over a live catalog.

    The registry owns the :class:`~repro.core.catalog.ModelCatalog` the
    query service executes against (:attr:`catalog`); only deployed
    versions are visible there.  All mutating operations serialize on one
    lock; catalog reads from worker threads are lock-free (publishing an
    entry is a single dict assignment under the GIL).
    """

    def __init__(
        self,
        catalog: ModelCatalog | None = None,
        max_nodes: int = DEFAULT_MAX_NODES,
        bins: int = 8,
        cache_dir: "str | Path | None" = None,
    ) -> None:
        self._catalog = catalog if catalog is not None else ModelCatalog()
        self._max_nodes = max_nodes
        self._bins = bins
        if cache_dir is None:
            cache_dir = os.environ.get(ENV_ENVELOPE_CACHE_DIR) or None
        self._cache_dir = None if cache_dir is None else Path(cache_dir)
        self._lock = threading.RLock()
        self._versions: dict[str, list[ModelVersion]] = {}
        self._deployed: dict[str, ModelVersion] = {}
        #: model content fingerprint -> interned envelopes (warm-start).
        self._envelope_cache: dict[
            str, tuple[dict[Value, UpperEnvelope], float]
        ] = {}

    @property
    def catalog(self) -> ModelCatalog:
        """The live catalog holding every *deployed* model."""
        return self._catalog

    # -- lifecycle ---------------------------------------------------------

    def register(
        self,
        model: MiningModel,
        rows: Sequence[Row] | None = None,
        deploy: bool = False,
    ) -> ModelVersion:
        """Add a new version of ``model.name``; optionally deploy it.

        Registration is cheap (a fingerprint over model content); the
        expensive envelope derivation happens at :meth:`deploy`.
        """
        with self._lock:
            history = self._versions.setdefault(model.name, [])
            entry = ModelVersion(
                name=model.name,
                version=len(history) + 1,
                model=model,
                fingerprint=model_fingerprint(model),
                rows=rows,
            )
            history.append(entry)
            obs.event(
                "serve.registry.register",
                model=model.name,
                version=entry.version,
            )
            if deploy:
                return self.deploy(model.name, entry.version)
            return entry

    def deploy(self, name: str, version: int | None = None) -> ModelVersion:
        """Make one registered version live (default: the newest).

        Derives and interns the version's envelopes unless a structurally
        identical model was deployed before, in which case the envelope
        cache warm-starts the deployment.  Publishing bumps the catalog
        version, invalidating every cached plan against the old envelopes.
        """
        with self._lock:
            entry = self._resolve(name, version)
            with obs.span(
                "serve.deploy", model=name, version=entry.version
            ) as span:
                if entry.envelopes is None:
                    cached = self._envelope_cache.get(entry.fingerprint)
                    if cached is None:
                        cached = self._disk_load(entry.fingerprint)
                    if cached is not None:
                        obs.add_counter("serve.registry.warm_start.hit")
                        span.set("warm_start", True)
                        entry.envelopes, entry.derive_seconds = cached
                        self._envelope_cache[entry.fingerprint] = cached
                    else:
                        obs.add_counter("serve.registry.warm_start.miss")
                        span.set("warm_start", False)
                        derived = derive_envelopes(
                            entry.model,
                            rows=entry.rows,
                            max_nodes=self._max_nodes,
                            bins=self._bins,
                        )
                        entry.envelopes = {
                            label: replace(
                                envelope,
                                predicate=intern(envelope.predicate),
                            )
                            for label, envelope in derived.items()
                        }
                        entry.derive_seconds = sum(
                            e.seconds for e in entry.envelopes.values()
                        )
                        self._envelope_cache[entry.fingerprint] = (
                            entry.envelopes,
                            entry.derive_seconds,
                        )
                        self._disk_store(
                            entry.fingerprint,
                            entry.envelopes,
                            entry.derive_seconds,
                        )
                    entry.envelope_fingerprints = {
                        label: ir_fingerprint(envelope.predicate)
                        for label, envelope in entry.envelopes.items()
                    }
                previous = self._deployed.get(name)
                if previous is not None and previous is not entry:
                    previous.deployed = False
                self._catalog.register(
                    entry.model, envelopes=entry.envelopes
                )
                entry.deployed = True
                self._deployed[name] = entry
                span.update(
                    catalog_version=self._catalog.entry(name).version,
                    labels=len(entry.envelopes),
                )
            return entry

    def retire(self, name: str) -> ModelVersion:
        """Remove a deployed model from serving.

        Later queries referencing it fail with a typed
        :class:`~repro.exceptions.CatalogError` (surfaced through the
        service as a request error), and cached plans keyed on it can
        never be replayed.  The version history is kept: the model can be
        redeployed, warm-starting from its cached envelopes.
        """
        with self._lock:
            entry = self._deployed.pop(name, None)
            if entry is None:
                raise RegistryError(
                    f"model {name!r} is not deployed; "
                    f"deployed: {self.deployed_names()}"
                )
            self._catalog.unregister(name)
            entry.deployed = False
            obs.event(
                "serve.registry.retire", model=name, version=entry.version
            )
            return entry

    # -- on-disk warm-start cache ------------------------------------------

    def _disk_path(self, fingerprint: str) -> Path:
        assert self._cache_dir is not None
        return self._cache_dir / f"envelopes_{fingerprint}.json"

    def _disk_load(
        self, fingerprint: str
    ) -> "tuple[dict[Value, UpperEnvelope], float] | None":
        """Warm-start envelopes from disk; ``None`` on any defect.

        A missing, corrupt, truncated, or format-skewed file is a cache
        miss (``serve.registry.warm_start.disk_miss``), never an error —
        the fallback is re-deriving, which is always correct.
        """
        if self._cache_dir is None:
            return None
        # The wire codec already round-trips predicates and values
        # exactly; imported lazily because protocol pulls in the engine,
        # which imports this module.
        from repro.serve.protocol import decode_predicate, decode_value

        try:
            with self._disk_path(fingerprint).open(
                encoding="utf-8"
            ) as stream:
                payload = json.load(stream)
            if (
                payload["format"] != _DISK_FORMAT
                or payload["fingerprint"] != fingerprint
            ):
                raise ValueError("format or fingerprint mismatch")
            envelopes: dict[Value, UpperEnvelope] = {}
            for item in payload["envelopes"]:
                envelope = UpperEnvelope(
                    model_name=item["model_name"],
                    model_kind=ModelKind(item["model_kind"]),
                    class_label=decode_value(item["class_label"]),
                    predicate=intern(
                        decode_predicate(item["predicate"])
                    ),
                    exact=bool(item["exact"]),
                    seconds=float(item["seconds"]),
                    derivation=item["derivation"],
                )
                envelopes[decode_value(item["label"])] = envelope
            derive_seconds = float(payload["derive_seconds"])
        except Exception:
            obs.add_counter("serve.registry.warm_start.disk_miss")
            return None
        obs.add_counter("serve.registry.warm_start.disk_hit")
        return envelopes, derive_seconds

    def _disk_store(
        self,
        fingerprint: str,
        envelopes: "dict[Value, UpperEnvelope]",
        derive_seconds: float,
    ) -> None:
        """Persist freshly derived envelopes, atomically.

        Same discipline as the sweep cache: write a tempfile in the
        target directory, then ``os.replace`` — readers only ever see a
        complete file.  I/O failures are swallowed: persistence is an
        optimization, not a correctness requirement.
        """
        if self._cache_dir is None:
            return
        from repro.serve.protocol import encode_predicate, encode_value

        payload = {
            "format": _DISK_FORMAT,
            "fingerprint": fingerprint,
            "derive_seconds": derive_seconds,
            "envelopes": [
                {
                    "label": encode_value(label),
                    "model_name": envelope.model_name,
                    "model_kind": envelope.model_kind.value,
                    "class_label": encode_value(envelope.class_label),
                    "predicate": encode_predicate(envelope.predicate),
                    "exact": envelope.exact,
                    "seconds": envelope.seconds,
                    "derivation": envelope.derivation,
                }
                for label, envelope in sorted(
                    envelopes.items(), key=lambda pair: str(pair[0])
                )
            ],
        }
        try:
            self._cache_dir.mkdir(parents=True, exist_ok=True)
            descriptor, temp_name = tempfile.mkstemp(
                prefix=f"envelopes_{fingerprint}.",
                suffix=".tmp",
                dir=self._cache_dir,
            )
            try:
                with os.fdopen(
                    descriptor, "w", encoding="utf-8"
                ) as stream:
                    json.dump(payload, stream, separators=(",", ":"))
                os.replace(temp_name, self._disk_path(fingerprint))
            except BaseException:
                os.unlink(temp_name)
                raise
        except OSError:
            return

    # -- introspection -----------------------------------------------------

    def versions(self, name: str) -> tuple[ModelVersion, ...]:
        """Every registered version of ``name``, oldest first."""
        with self._lock:
            try:
                return tuple(self._versions[name])
            except KeyError:
                raise RegistryError(
                    f"no model named {name!r} is registered; "
                    f"registered: {sorted(self._versions)}"
                ) from None

    def deployed_version(self, name: str) -> ModelVersion | None:
        """The live version of ``name`` (``None`` when not deployed)."""
        with self._lock:
            return self._deployed.get(name)

    def deployed_names(self) -> list[str]:
        with self._lock:
            return sorted(self._deployed)

    def registered_names(self) -> list[str]:
        with self._lock:
            return sorted(self._versions)

    def _resolve(self, name: str, version: int | None) -> ModelVersion:
        try:
            history = self._versions[name]
        except KeyError:
            raise RegistryError(
                f"no model named {name!r} is registered; "
                f"registered: {sorted(self._versions)}"
            ) from None
        if version is None:
            return history[-1]
        if not 1 <= version <= len(history):
            raise RegistryError(
                f"model {name!r} has no version {version}; "
                f"versions: 1..{len(history)}"
            )
        return history[version - 1]
