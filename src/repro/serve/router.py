"""Multi-process request router (``repro.serve.router``).

:class:`ProcessRouter` breaks the GIL ceiling by fanning requests out to
N worker *processes*, each running its own
:class:`~repro.serve.engine.ServeEngine` — its own read-only connection
pool, registry replica, :class:`~repro.sql.plancache.PlanCache`, and
:class:`~repro.sql.calibration.CalibrationStore` — behind one
socketpair speaking the framed wire protocol.  Nothing is shared by
reference between processes; everything a worker needs is either

* rebuilt deterministically by the picklable ``bootstrap`` callable the
  router is given (dataset, indexes, segment catalog), or
* **broadcast** as version-stamped catalog messages:
  :meth:`ProcessRouter.control` sends every
  :class:`~repro.serve.engine.DeployRequest` /
  :class:`~repro.serve.engine.RetireRequest` to every worker and
  asserts the returned catalog versions agree, so replicas can never
  silently diverge (and a deploy is a model ``to_dict`` payload, not a
  pickled object graph).

Routing is **deterministic**: a request is hashed over its canonical
wire encoding (timeout excluded) and pinned to ``hash % N``, so the
same request schedule lands on the same workers every run — which is
what lets the bench assert byte-identical results across 1/2/4-process
configurations, and keeps each worker's plan/calibration caches hot for
its share of the request space.

Failure is typed and survivable: a worker that dies mid-request fails
its in-flight requests with
:class:`~repro.exceptions.WorkerCrashedError` (a
:class:`~repro.exceptions.TransportError`), and the router respawns the
slot — replaying the ordered deploy/retire log so the replacement's
replica catches up to the live catalog — before taking new traffic for
it (``serve.router.respawn`` counter, ``serve.router.workers`` gauge).

Per-process observability: pass ``trace_dir`` and each worker writes
its own ``trace_serve_worker_<index>.jsonl`` shard, merged
deterministically by ``trace-report`` exactly like the sweep workers'
shards (shards are read in sorted filename order; respawned workers
append to their slot's shard).
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import socket
import threading

from repro import obs
from repro.exceptions import ServeError, WorkerCrashedError
from repro.serve.engine import (
    DeployRequest,
    DeployResult,
    MatchRequest,
    QueryRequest,
    RetireRequest,
    RetireResult,
)
from repro.serve.protocol import encode_request
from repro.serve.transport import SocketServer, SocketTransport, Transport

#: Wait budget for a worker to exit after its socket closes.
_JOIN_TIMEOUT = 10.0


def _start_method() -> str:
    """Fork when the platform has it (cheap, inherits the bootstrap's
    closure-free module state); spawn otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def _worker_main(
    sock: "socket.socket",
    bootstrap,
    args: tuple,
    trace_dir: "str | None",
    index: int,
) -> None:
    """Worker process body: build an engine, serve one socket until EOF.

    Runs in the child.  Tracing is re-configured first thing — the
    inherited parent tracer drops all writes from a forked child, so
    without an explicit per-process sink a worker would be blind.  The
    shard label is stable per router slot (``serve_worker_<index>``) and
    the sink appends, so a respawned worker extends its predecessor's
    shard rather than clobbering it.
    """
    obs.configure(trace_dir, label=f"serve_worker_{index}")
    engine = bootstrap(*args)
    try:
        server = SocketServer(engine, sock, name="router", threaded=False)
        server.serve_forever()
    finally:
        engine.shutdown()
        obs.flush()


def _route_key(request: "QueryRequest | MatchRequest") -> bytes:
    """Canonical routing bytes: the wire encoding minus the timeout.

    The timeout is delivery metadata, not request identity — the same
    query with a different deadline must land on the same worker (same
    caches, same collapse window).
    """
    payload = dict(encode_request(request))
    payload.pop("timeout", None)
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


class ProcessRouter(Transport):
    """Deterministic fan-out of serving requests to N engine processes.

    ``bootstrap`` must be a **top-level callable** (picklable under
    spawn, importable under fork) returning a fully-loaded
    :class:`~repro.serve.engine.ServeEngine`; ``args`` are passed to it
    in the worker process.  Deploy models through
    :meth:`control` broadcasts rather than inside the bootstrap when
    you need the version-stamped agreement check.
    """

    name = "router"

    def __init__(
        self,
        bootstrap,
        args: tuple = (),
        processes: int = 2,
        trace_dir: "str | None" = None,
    ) -> None:
        if processes < 1:
            raise ValueError(f"processes must be >= 1, got {processes}")
        self._bootstrap = bootstrap
        self._args = tuple(args)
        self._trace_dir = trace_dir
        self._context = multiprocessing.get_context(_start_method())
        self._lock = threading.Lock()
        self._closing = False
        self._control_log: list["DeployRequest | RetireRequest"] = []
        self._transports: list[SocketTransport] = []
        self._processes: list = []
        try:
            for index in range(processes):
                transport, process = self._spawn(index)
                self._transports.append(transport)
                self._processes.append(process)
        except BaseException:
            self.close()
            raise
        obs.set_gauge("serve.router.workers", processes)

    # -- lifecycle -------------------------------------------------------

    def _spawn(self, index: int) -> tuple[SocketTransport, object]:
        parent_sock, child_sock = socket.socketpair()
        process = self._context.Process(
            target=_worker_main,
            args=(
                child_sock,
                self._bootstrap,
                self._args,
                self._trace_dir,
                index,
            ),
            name=f"repro-serve-worker-{index}",
            daemon=True,
        )
        process.start()
        # The parent's copy of the child end must close, or a dead
        # worker's socket would never read as EOF here.
        child_sock.close()
        transport = SocketTransport(
            parent_sock,
            name=f"router-{index}",
            close_error=WorkerCrashedError,
            on_close=lambda _t, index=index: self._respawn(index),
        )
        return transport, process

    def _respawn(self, index: int) -> None:
        """Replace a dead worker and replay the catalog broadcast log.

        Runs on the dead transport's reader thread, right after every
        in-flight request of that worker failed with
        :class:`~repro.exceptions.WorkerCrashedError`.  New submissions
        racing the respawn fail the same way — typed, retryable.
        """
        with self._lock:
            if self._closing:
                return
            dead = self._processes[index]
            obs.add_counter("serve.router.respawn")
            obs.event("serve.router.respawn", worker=index)
            dead.join(timeout=_JOIN_TIMEOUT)
            transport, process = self._spawn(index)
            # The replacement's replica is a fresh bootstrap; bring its
            # catalog up to the live version before exposing it.
            for request in self._control_log:
                transport.control(request)
            self._transports[index] = transport
            self._processes[index] = process

    def close(self) -> None:
        """Stop every worker (EOF -> engine shutdown) and reap it."""
        with self._lock:
            if self._closing:
                return
            self._closing = True
            transports = list(self._transports)
            processes = list(self._processes)
        for transport in transports:
            transport.close()
        for process in processes:
            process.join(timeout=_JOIN_TIMEOUT)
            if process.is_alive():
                process.terminate()
                process.join(timeout=_JOIN_TIMEOUT)
        obs.set_gauge("serve.router.workers", 0)

    shutdown = close

    # -- transport API -----------------------------------------------------

    @property
    def processes(self) -> int:
        """Configured worker count (dead slots respawn to keep it)."""
        return len(self._transports)

    @property
    def worker_pids(self) -> tuple[int, ...]:
        """Live worker process ids, by slot (chaos-testing hook)."""
        with self._lock:
            return tuple(p.pid for p in self._processes)

    def route_index(self, request: "QueryRequest | MatchRequest") -> int:
        """The worker slot a request is pinned to (stable across runs)."""
        digest = hashlib.sha256(_route_key(request)).digest()
        return int.from_bytes(digest[:8], "big") % len(self._transports)

    def submit(self, request):
        if isinstance(request, (DeployRequest, RetireRequest)):
            raise ServeError(
                "control requests go through ProcessRouter.control "
                "(they broadcast; submit routes to one worker)"
            )
        index = self.route_index(request)
        with self._lock:
            if self._closing:
                raise WorkerCrashedError("router is closed")
            transport = self._transports[index]
        obs.add_counter(f"serve.transport.requests.{self.name}")
        return transport.submit(request)

    def request(self, request):
        index = self.route_index(request)
        with self._lock:
            if self._closing:
                raise WorkerCrashedError("router is closed")
            transport = self._transports[index]
        obs.add_counter(f"serve.transport.requests.{self.name}")
        return transport.request(request)

    def control(
        self, request: "DeployRequest | RetireRequest"
    ) -> "DeployResult | RetireResult":
        """Broadcast one deploy/retire to every worker replica.

        All replicas must report the same version stamps — disagreement
        means the replicas diverged (e.g. a bootstrap deployed extra
        models on some workers only) and raises
        :class:`~repro.exceptions.ServeError` rather than serving from
        inconsistent catalogs.  The request is appended to the ordered
        control log respawned workers replay.
        """
        with self._lock:
            if self._closing:
                raise WorkerCrashedError("router is closed")
            transports = list(self._transports)
            results = [t.control(request) for t in transports]
            first = results[0]
            for other in results[1:]:
                if other != first:
                    raise ServeError(
                        "worker replicas diverged on "
                        f"{type(request).__name__}: {first!r} != {other!r}"
                    )
            self._control_log.append(request)
        return first

    def __enter__(self) -> "ProcessRouter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
