"""The embedded query service: a facade over the serving engine.

:class:`QueryService` is the in-process serving front-end — the API
every embedded caller (and the whole pre-split test suite) programs
against.  Since the engine/protocol/transport decomposition it is a
**thin facade**: the behavior lives in
:class:`~repro.serve.engine.ServeEngine` (admission, in-flight
collapsing, micro-batching, segment matching, worker-pool execution
over shared caches), reached through a
:class:`~repro.serve.transport.LoopbackTransport` — the zero-copy
in-process adapter of the same transport API the socketpair and TCP
adapters implement.  The facade adds nothing but the original
convenience signatures (``submit(query, timeout=, optimize=)`` instead
of typed request dataclasses), so:

* every existing caller keeps working unchanged, with unchanged
  semantics — loopback passes the engine's result objects through
  untouched, execution reports included;
* anything the facade can do, a remote client can do over a wire
  transport with the same typed errors
  (:class:`~repro.exceptions.QueueFullError`,
  :class:`~repro.exceptions.RequestTimeoutError`, ...), because both
  drive the same engine through the same adapter seam.

The collapsing and bit-identity contracts documented here hold for
every transport: a request structurally identical to one *currently
executing* (same table, same relational-predicate fingerprint, same
mining predicates, same model catalog versions, same strategy) does not
execute again — it waits for the in-flight execution and receives the
same result rows.  Results are bit-identical to serial execution by
construction: every worker runs the same executor over the same
read-only data, and shared caches are either keyed exactly (plans,
stats) or row-independent (micro-batching); the stress suite verifies
byte-identical row sets under concurrency, timeouts, cache eviction,
and across every transport and router process count.
"""

from __future__ import annotations

from concurrent.futures import Future

from collections.abc import Sequence

from repro.core.optimizer import MiningQuery
from repro.mining.base import Row
from repro.segments.batcher import MatchBatcher
from repro.segments.catalog import SegmentCatalog
from repro.serve.batcher import MicroBatcher
from repro.serve.engine import (
    MatchRequest,
    QueryRequest,
    SegmentMatchResult,
    ServeEngine,
    ServeResult,
    ServiceStats,
)
from repro.serve.registry import ModelRegistry
from repro.serve.transport import LoopbackTransport
from repro.sql.calibration import CalibrationStore
from repro.sql.database import Database
from repro.sql.plancache import PlanCache

__all__ = [
    "QueryService",
    "SegmentMatchResult",
    "ServeResult",
    "ServiceStats",
    "serve",
]


class QueryService:
    """Embedded, thread-concurrent mining-query service.

    Use as a context manager (or call :meth:`shutdown`); submitting after
    shutdown raises :class:`~repro.exceptions.ServiceStoppedError`.  The
    service serves **read-only** traffic over ``db``: load tables and
    build indexes through the primary handle before constructing it.
    """

    def __init__(
        self,
        db: Database,
        registry: ModelRegistry,
        workers: int = 4,
        max_pending: int = 128,
        default_timeout: float | None = None,
        plan_cache: PlanCache | None = None,
        batching: bool = True,
        collapsing: bool = True,
        selectivity_gate: float | None = 0.2,
        stats_sample: int = 10_000,
        vectorized: bool = True,
        batch_size: int = 2048,
        segment_catalog: "SegmentCatalog | None" = None,
        calibration: "CalibrationStore | None" = None,
        admission: str = "static",
        batch_window: float = 0.0,
        result_ttl: float | None = None,
        result_cache_size: int = 1024,
    ) -> None:
        self._engine = ServeEngine(
            db,
            registry,
            workers=workers,
            max_pending=max_pending,
            default_timeout=default_timeout,
            plan_cache=plan_cache,
            batching=batching,
            collapsing=collapsing,
            selectivity_gate=selectivity_gate,
            stats_sample=stats_sample,
            vectorized=vectorized,
            batch_size=batch_size,
            segment_catalog=segment_catalog,
            calibration=calibration,
            admission=admission,
            batch_window=batch_window,
            result_ttl=result_ttl,
            result_cache_size=result_cache_size,
        )
        self._transport = LoopbackTransport(self._engine)

    # -- public API --------------------------------------------------------

    @property
    def engine(self) -> ServeEngine:
        """The transport-neutral core this facade drives."""
        return self._engine

    @property
    def registry(self) -> ModelRegistry:
        return self._engine.registry

    @property
    def plan_cache(self) -> PlanCache:
        return self._engine.plan_cache

    @property
    def batcher(self) -> MicroBatcher | None:
        """The shared micro-batcher (``None`` when batching is off)."""
        return self._engine.batcher

    @property
    def calibration(self) -> CalibrationStore:
        """The calibration store shared by every worker's executor."""
        return self._engine.calibration

    @property
    def segments(self) -> "SegmentCatalog | None":
        """The live segment catalog (``None`` without one)."""
        return self._engine.segments

    @property
    def match_batcher(self) -> "MatchBatcher | None":
        """The segment match batcher (``None`` without a catalog)."""
        return self._engine.match_batcher

    @property
    def queue_depth(self) -> int:
        """Admitted, unfinished requests (queued plus executing)."""
        return self._engine.queue_depth

    @property
    def stats(self) -> ServiceStats:
        """Thread-safe lifetime counters of this service instance."""
        return self._engine.stats

    def submit(
        self,
        query: MiningQuery,
        timeout: float | None = None,
        optimize: bool = True,
    ) -> "Future[ServeResult]":
        """Admit one request; returns a future resolving to its result.

        Raises :class:`~repro.exceptions.QueueFullError` when the bounded
        queue is full and :class:`~repro.exceptions.ServiceStoppedError`
        when draining or stopped; both are *synchronous* (the future is
        only created for admitted requests).  A request structurally
        identical to one currently executing collapses onto it without
        consuming a queue slot.
        """
        return self._transport.submit(
            QueryRequest(query=query, optimize=optimize, timeout=timeout)
        )

    def execute(
        self,
        query: MiningQuery,
        timeout: float | None = None,
        optimize: bool = True,
    ) -> ServeResult:
        """Synchronous :meth:`submit`; enforces the deadline while waiting.

        A wait that outlives the request's deadline raises
        :class:`~repro.exceptions.RequestTimeoutError`.  The underlying
        execution is not preempted mid-flight (SQLite has no safe
        cancellation point here); a timed-out request that was still
        queued is dropped unexecuted by its worker.
        """
        return self._transport.request(
            QueryRequest(query=query, optimize=optimize, timeout=timeout)
        )

    def submit_match(
        self,
        rows: "Sequence[Row]",
        segments: "Sequence[str] | None" = None,
        timeout: float | None = None,
    ) -> "Future[SegmentMatchResult]":
        """Admit one segment-match request; returns its future.

        The request rides the same admission controller, queue, and
        worker pool as prediction joins, so matching traffic and query
        traffic share one backpressure budget.  Identical concurrent
        requests (same catalog version, same segment subset, same row
        content) collapse onto the in-flight evaluation; distinct
        concurrent requests still coalesce inside the match batcher.
        """
        return self._transport.submit(
            MatchRequest(
                rows=rows,
                segments=None if segments is None else tuple(segments),
                timeout=timeout,
            )
        )

    def match_segments(
        self,
        rows: "Sequence[Row]",
        segments: "Sequence[str] | None" = None,
        timeout: float | None = None,
    ) -> SegmentMatchResult:
        """Synchronous :meth:`submit_match`; enforces the deadline."""
        return self._transport.request(
            MatchRequest(
                rows=rows,
                segments=None if segments is None else tuple(segments),
                timeout=timeout,
            )
        )

    def drain(self, timeout: float | None = None) -> bool:
        """Stop admitting and wait for every admitted request to finish.

        Returns ``True`` when the service fully drained, ``False`` on
        timeout (requests may still be executing).  Draining is
        irreversible — pair it with :meth:`shutdown`.
        """
        return self._engine.drain(timeout=timeout)

    def shutdown(
        self, drain: bool = True, timeout: float | None = None
    ) -> bool:
        """Drain (optionally), stop the workers, release every resource.

        With ``drain=False`` (or after a drain timeout) queued requests
        fail with :class:`~repro.exceptions.ServiceStoppedError`.
        Idempotent; returns whether shutdown was clean (fully drained).
        """
        return self._engine.shutdown(drain=drain, timeout=timeout)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()


def serve(
    db: Database, registry: ModelRegistry, **kwargs
) -> QueryService:
    """Convenience constructor mirroring ``QueryService(db, registry)``."""
    return QueryService(db, registry, **kwargs)
