"""The concurrent query service: worker pool, collapsing, shared caches.

:class:`QueryService` is the embedded serving front-end over the
optimizer/executor stack: requests are admitted (bounded, with
deadlines), queued, and executed by a pool of worker threads, each
holding its own read-only connection from a :class:`~repro.serve.pool.
ConnectionPool` and its own :class:`~repro.sql.miningext.
PredictionJoinExecutor` — while everything *cacheable* is shared across
all workers:

* one thread-safe :class:`~repro.sql.plancache.PlanCache` (a query
  optimized by any worker is a hit for every other),
* one table-statistics cache (stats built once per table, not per
  thread),
* one :class:`~repro.sql.calibration.CalibrationStore` (measured
  selectivities observed by any worker calibrate every worker's
  estimates),
* one :class:`~repro.serve.batcher.MicroBatcher` coalescing residual
  model scoring across concurrent requests,
* the registry's live catalog with its deploy-time envelopes.

**In-flight request collapsing**: a request structurally identical to one
*currently executing* (same table, same relational-predicate fingerprint,
same mining predicates, same model versions, same strategy) does not
execute again — it waits for the in-flight execution and receives the
same result rows.  Serving workloads are heavily repetitive (hot labels,
dashboard queries), and collapsing turns k duplicate arrivals into one
model application.  Collapsing never changes results: the duplicates
would have executed over the same read-only data during the same window.
Only *executing* requests collapse — queued duplicates execute normally —
so a single-worker service degenerates to plain serial execution.

Results are **bit-identical to serial execution** by construction: every
worker runs the same executor over the same data and shared caches are
either keyed exactly (plans, stats) or row-independent (micro-batching);
the stress suite verifies byte-identical row sets under concurrency,
timeouts, and cache eviction.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, replace

from collections.abc import Sequence

from repro import obs
from repro.core.optimizer import MiningQuery
from repro.exceptions import (
    QueueFullError,
    RequestTimeoutError,
    ServeError,
    ServiceStoppedError,
)
from repro.ir import fingerprint as ir_fingerprint
from repro.mining.base import Row
from repro.segments.batcher import MatchBatcher
from repro.segments.catalog import SegmentCatalog
from repro.segments.evaluator import MaskCacheStats
from repro.serve.admission import AdmissionController, Deadline
from repro.serve.batcher import BatchingCatalog, MicroBatcher
from repro.serve.pool import ConnectionPool
from repro.serve.registry import ModelRegistry
from repro.sql.calibration import CalibrationStore
from repro.sql.database import Database
from repro.sql.miningext import ExecutionReport, PredictionJoinExecutor
from repro.sql.plancache import PlanCache
from repro.sql.stats import TableStats


@dataclass(frozen=True)
class ServeResult:
    """One served request: result rows plus serving-side timings."""

    rows: tuple
    strategy: str
    queue_seconds: float
    execute_seconds: float
    collapsed: bool
    report: ExecutionReport | None

    @property
    def rows_returned(self) -> int:
        return len(self.rows)


@dataclass(frozen=True)
class SegmentMatchResult:
    """One served segment-match request: memberships plus timings.

    ``memberships`` is the row-major answer (per input row, the tuple of
    matching segment names); ``coalesced`` reports whether the request
    shared its evaluation with concurrent ones through the match
    batcher, ``collapsed`` whether it piggybacked on an identical
    in-flight request without evaluating at all.
    """

    memberships: tuple[tuple[str, ...], ...]
    segment_names: tuple[str, ...]
    catalog_version: int
    queue_seconds: float
    match_seconds: float
    collapsed: bool
    coalesced: bool
    mask_stats: MaskCacheStats

    @property
    def rows_matched(self) -> int:
        """Rows belonging to at least one segment."""
        return len([m for m in self.memberships if m])


class ServiceStats:
    """Thread-safe lifetime counters of one service instance."""

    _FIELDS = (
        "submitted",
        "completed",
        "collapsed",
        "shed",
        "timeouts",
        "errors",
        "cancelled",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = {name: 0 for name in self._FIELDS}

    def increment(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counts[name] += amount

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def __getattr__(self, name: str) -> int:
        if name in ServiceStats._FIELDS:
            with self._lock:
                return self._counts[name]
        raise AttributeError(name)


class _Request:
    """One admitted request travelling through the queue.

    ``query`` is set for prediction-join requests; segment-match
    requests carry ``rows``/``names`` instead (``query is None``).
    """

    __slots__ = (
        "query",
        "optimize",
        "future",
        "deadline",
        "enqueued_at",
        "key",
        "rows",
        "names",
    )

    def __init__(
        self,
        query: "MiningQuery | None",
        optimize: bool,
        future: "Future",
        deadline: Deadline | None,
        key: tuple | None,
        rows: "Sequence[Row] | None" = None,
        names: "tuple[str, ...] | None" = None,
    ) -> None:
        self.query = query
        self.optimize = optimize
        self.future = future
        self.deadline = deadline
        self.enqueued_at = time.perf_counter()
        self.key = key
        self.rows = rows
        self.names = names


_SENTINEL = object()


class QueryService:
    """Embedded, thread-concurrent mining-query service.

    Use as a context manager (or call :meth:`shutdown`); submitting after
    shutdown raises :class:`~repro.exceptions.ServiceStoppedError`.  The
    service serves **read-only** traffic over ``db``: load tables and
    build indexes through the primary handle before constructing it.
    """

    def __init__(
        self,
        db: Database,
        registry: ModelRegistry,
        workers: int = 4,
        max_pending: int = 128,
        default_timeout: float | None = None,
        plan_cache: PlanCache | None = None,
        batching: bool = True,
        collapsing: bool = True,
        selectivity_gate: float | None = 0.2,
        stats_sample: int = 10_000,
        vectorized: bool = True,
        batch_size: int = 2048,
        segment_catalog: "SegmentCatalog | None" = None,
        calibration: "CalibrationStore | None" = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._registry = registry
        self._segments = segment_catalog
        self._match_batcher: MatchBatcher | None = (
            MatchBatcher(segment_catalog)
            if segment_catalog is not None
            else None
        )
        self._pool = ConnectionPool(db, read_only=True)
        self._controller = AdmissionController(
            max_pending, default_timeout=default_timeout
        )
        self._plan_cache = (
            plan_cache if plan_cache is not None else PlanCache(256)
        )
        self._stats_cache: dict[str, TableStats] = {}
        # One calibration store next to the stats cache: observations
        # from any worker refine every worker's estimates, and the
        # shared plan cache recalibrates against the shared overlay.
        self._calibration = (
            calibration if calibration is not None else CalibrationStore()
        )
        self._batcher: MicroBatcher | None = None
        catalog = registry.catalog
        if batching:
            self._batcher = MicroBatcher(catalog)
            catalog = BatchingCatalog(registry.catalog, self._batcher)
        self._exec_catalog = catalog
        self._collapsing = collapsing
        self._selectivity_gate = selectivity_gate
        self._stats_sample = stats_sample
        self._vectorized = vectorized
        self._batch_size = batch_size
        self.stats = ServiceStats()
        self._queue: "queue.Queue" = queue.Queue()
        self._lock = threading.Lock()
        self._done = threading.Condition(self._lock)
        self._inflight: dict[tuple, "Future[ServeResult]"] = {}
        self._draining = False
        self._stopped = False
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-serve-worker-{index}",
                daemon=True,
            )
            for index in range(workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- public API --------------------------------------------------------

    @property
    def registry(self) -> ModelRegistry:
        return self._registry

    @property
    def plan_cache(self) -> PlanCache:
        return self._plan_cache

    @property
    def batcher(self) -> MicroBatcher | None:
        """The shared micro-batcher (``None`` when batching is off)."""
        return self._batcher

    @property
    def calibration(self) -> CalibrationStore:
        """The calibration store shared by every worker's executor."""
        return self._calibration

    @property
    def segments(self) -> "SegmentCatalog | None":
        """The live segment catalog (``None`` without one)."""
        return self._segments

    @property
    def match_batcher(self) -> "MatchBatcher | None":
        """The segment match batcher (``None`` without a catalog)."""
        return self._match_batcher

    @property
    def queue_depth(self) -> int:
        """Admitted, unfinished requests (queued plus executing)."""
        return self._controller.pending

    def submit(
        self,
        query: MiningQuery,
        timeout: float | None = None,
        optimize: bool = True,
    ) -> "Future[ServeResult]":
        """Admit one request; returns a future resolving to its result.

        Raises :class:`~repro.exceptions.QueueFullError` when the bounded
        queue is full and :class:`~repro.exceptions.ServiceStoppedError`
        when draining or stopped; both are *synchronous* (the future is
        only created for admitted requests).  A request structurally
        identical to one currently executing collapses onto it without
        consuming a queue slot.
        """
        if self._draining or self._stopped:
            obs.add_counter("serve.request.rejected_stopped")
            raise ServiceStoppedError("service is draining or stopped")
        self.stats.increment("submitted")
        obs.add_counter("serve.request.submitted")
        key = self._collapse_key(query, optimize)
        if key is not None:
            with self._lock:
                primary = self._inflight.get(key)
                if primary is not None:
                    return self._attach(primary)
        try:
            self._controller.admit()
        except QueueFullError:
            self.stats.increment("shed")
            raise
        future: "Future[ServeResult]" = Future()
        request = _Request(
            query,
            optimize,
            future,
            self._controller.deadline_for(timeout),
            key,
        )
        self._queue.put(request)
        return future

    def execute(
        self,
        query: MiningQuery,
        timeout: float | None = None,
        optimize: bool = True,
    ) -> ServeResult:
        """Synchronous :meth:`submit`; enforces the deadline while waiting.

        A wait that outlives the request's deadline raises
        :class:`~repro.exceptions.RequestTimeoutError`.  The underlying
        execution is not preempted mid-flight (SQLite has no safe
        cancellation point here); a timed-out request that was still
        queued is dropped unexecuted by its worker.
        """
        deadline = self._controller.deadline_for(timeout)
        future = self.submit(query, timeout=timeout, optimize=optimize)
        try:
            return future.result(
                timeout=None if deadline is None else deadline.remaining()
            )
        except FutureTimeoutError:
            self.stats.increment("timeouts")
            obs.add_counter("serve.request.timeout")
            raise RequestTimeoutError(
                f"request exceeded its {deadline.timeout:.3f}s deadline"
            ) from None

    def submit_match(
        self,
        rows: "Sequence[Row]",
        segments: "Sequence[str] | None" = None,
        timeout: float | None = None,
    ) -> "Future[SegmentMatchResult]":
        """Admit one segment-match request; returns its future.

        The request rides the same admission controller, queue, and
        worker pool as prediction joins, so matching traffic and query
        traffic share one backpressure budget.  Identical concurrent
        requests (same catalog version, same segment subset, same row
        content) collapse onto the in-flight evaluation; distinct
        concurrent requests still coalesce inside the match batcher.
        """
        if self._match_batcher is None:
            raise ServeError(
                "service was constructed without a segment catalog; "
                "pass segment_catalog= to enable match_segments"
            )
        if self._draining or self._stopped:
            obs.add_counter("serve.request.rejected_stopped")
            raise ServiceStoppedError("service is draining or stopped")
        self.stats.increment("submitted")
        obs.add_counter("serve.request.submitted")
        names = tuple(segments) if segments is not None else None
        key = self._match_key(rows, names)
        if key is not None:
            with self._lock:
                primary = self._inflight.get(key)
                if primary is not None:
                    return self._attach(primary)
        try:
            self._controller.admit()
        except QueueFullError:
            self.stats.increment("shed")
            raise
        future: "Future[SegmentMatchResult]" = Future()
        request = _Request(
            None,
            False,
            future,
            self._controller.deadline_for(timeout),
            key,
            rows=rows,
            names=names,
        )
        self._queue.put(request)
        return future

    def match_segments(
        self,
        rows: "Sequence[Row]",
        segments: "Sequence[str] | None" = None,
        timeout: float | None = None,
    ) -> SegmentMatchResult:
        """Synchronous :meth:`submit_match`; enforces the deadline."""
        deadline = self._controller.deadline_for(timeout)
        future = self.submit_match(rows, segments=segments, timeout=timeout)
        try:
            return future.result(
                timeout=None if deadline is None else deadline.remaining()
            )
        except FutureTimeoutError:
            self.stats.increment("timeouts")
            obs.add_counter("serve.request.timeout")
            raise RequestTimeoutError(
                f"request exceeded its {deadline.timeout:.3f}s deadline"
            ) from None

    def drain(self, timeout: float | None = None) -> bool:
        """Stop admitting and wait for every admitted request to finish.

        Returns ``True`` when the service fully drained, ``False`` on
        timeout (requests may still be executing).  Draining is
        irreversible — pair it with :meth:`shutdown`.
        """
        self._draining = True
        obs.event("serve.drain", pending=self._controller.pending)
        deadline = Deadline.from_timeout(timeout)
        with self._done:
            while self._controller.pending > 0:
                remaining = (
                    None if deadline is None else deadline.remaining()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._done.wait(
                    timeout=0.1 if remaining is None else min(remaining, 0.1)
                )
        return True

    def shutdown(
        self, drain: bool = True, timeout: float | None = None
    ) -> bool:
        """Drain (optionally), stop the workers, release every resource.

        With ``drain=False`` (or after a drain timeout) queued requests
        fail with :class:`~repro.exceptions.ServiceStoppedError`.
        Idempotent; returns whether shutdown was clean (fully drained).
        """
        if self._stopped:
            return True
        clean = self.drain(timeout=timeout) if drain else False
        self._stopped = True
        self._draining = True
        if not clean:
            self._fail_queued()
        for _ in self._workers:
            self._queue.put(_SENTINEL)
        for worker in self._workers:
            worker.join()
        if self._batcher is not None:
            self._batcher.stop()
        if self._match_batcher is not None:
            self._match_batcher.stop()
        self._pool.close_all()
        obs.event("serve.shutdown", clean=clean)
        return clean

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # -- internals ---------------------------------------------------------

    def _collapse_key(
        self, query: MiningQuery, optimize: bool
    ) -> tuple | None:
        """Identity under which concurrent requests may share a result.

        Includes every referenced model's *catalog version*, so a request
        racing a redeploy never collapses onto an execution against the
        old envelopes.  ``None`` disables collapsing for this request.
        """
        if not self._collapsing:
            return None
        names: list[str] = []
        for predicate in query.mining_predicates:
            for name in predicate.models():
                if name not in names:
                    names.append(name)
        versions = tuple(
            (name, self._registry.catalog.entry(name).version)
            for name in names
        )
        return (
            query.table,
            ir_fingerprint(query.relational_predicate),
            tuple(p.describe() for p in query.mining_predicates),
            optimize,
            versions,
        )

    def _match_key(
        self, rows: "Sequence[Row]", names: "tuple[str, ...] | None"
    ) -> tuple | None:
        """Identity under which concurrent match requests share a result.

        Keyed on exact row *content* (not object identity or a hash), so
        a collapse can never hand one request another's memberships; the
        catalog version pins the segment definitions the answer is
        about.  ``None`` disables collapsing for this request.
        """
        if not self._collapsing:
            return None
        assert self._segments is not None
        return (
            "segments",
            self._segments.version,
            names,
            tuple(tuple(sorted(row.items())) for row in rows),
        )

    def _attach(
        self, primary: "Future[ServeResult]"
    ) -> "Future[ServeResult]":
        """A dependent future resolving with the in-flight execution."""
        self.stats.increment("collapsed")
        obs.add_counter("serve.request.collapsed")
        dependent: "Future[ServeResult]" = Future()

        def propagate(done: "Future[ServeResult]") -> None:
            if dependent.cancelled():
                return
            error = done.exception()
            try:
                if error is not None:
                    dependent.set_exception(error)
                else:
                    dependent.set_result(
                        replace(done.result(), collapsed=True)
                    )
            except Exception:
                # The dependent was cancelled between the check and the
                # set; its waiter already gave up.
                pass

        primary.add_done_callback(propagate)
        return dependent

    def _worker_loop(self) -> None:
        db = self._pool.get()
        executor = PredictionJoinExecutor(
            db,
            self._exec_catalog,
            selectivity_gate=self._selectivity_gate,
            stats_sample=self._stats_sample,
            plan_cache=self._plan_cache,
            vectorized=self._vectorized,
            batch_size=self._batch_size,
            stats_cache=self._stats_cache,
            calibration=self._calibration,
        )
        while True:
            request = self._queue.get()
            if request is _SENTINEL:
                return
            self._handle(request, executor)

    def _handle(
        self, request: _Request, executor: PredictionJoinExecutor
    ) -> None:
        try:
            queue_seconds = time.perf_counter() - request.enqueued_at
            if not request.future.set_running_or_notify_cancel():
                self.stats.increment("cancelled")
                obs.add_counter("serve.request.cancelled")
                return
            if request.deadline is not None and request.deadline.expired:
                self.stats.increment("timeouts")
                obs.add_counter("serve.request.timeout")
                request.future.set_exception(
                    RequestTimeoutError(
                        "request spent its whole "
                        f"{request.deadline.timeout:.3f}s deadline queued"
                    )
                )
                return
            if request.key is not None:
                with self._lock:
                    primary = self._inflight.get(request.key)
                    if primary is None:
                        self._inflight[request.key] = request.future
                    else:
                        # A duplicate was dequeued while its twin
                        # executes: collapse at the worker, too.
                        dependent = self._attach(primary)
                        dependent.add_done_callback(
                            _forward_to(request.future)
                        )
                        return
            try:
                if request.query is None:
                    result: object = self._execute_match(
                        request, queue_seconds
                    )
                else:
                    with obs.span(
                        "serve.request", table=request.query.table
                    ) as span:
                        started = time.perf_counter()
                        report = executor.execute(
                            request.query, optimize_query=request.optimize
                        )
                        execute_seconds = time.perf_counter() - started
                        span.update(
                            queue_seconds=queue_seconds,
                            rows_returned=report.rows_returned,
                            strategy=report.strategy,
                        )
                    result = ServeResult(
                        rows=report.rows,
                        strategy=report.strategy,
                        queue_seconds=queue_seconds,
                        execute_seconds=execute_seconds,
                        collapsed=False,
                        report=report,
                    )
                self.stats.increment("completed")
                obs.add_counter("serve.request.completed")
                request.future.set_result(result)
            except BaseException as error:
                self.stats.increment("errors")
                obs.add_counter("serve.request.error")
                request.future.set_exception(error)
            finally:
                if request.key is not None:
                    with self._lock:
                        if self._inflight.get(request.key) is request.future:
                            del self._inflight[request.key]
        finally:
            self._controller.release()
            with self._done:
                self._done.notify_all()

    def _execute_match(
        self, request: _Request, queue_seconds: float
    ) -> SegmentMatchResult:
        """Run one segment-match request through the match batcher."""
        assert self._match_batcher is not None
        assert request.rows is not None
        with obs.span(
            "serve.match", rows=len(request.rows)
        ) as span:
            started = time.perf_counter()
            matches, coalesced = self._match_batcher.match(
                request.rows, request.names
            )
            match_seconds = time.perf_counter() - started
            span.update(
                queue_seconds=queue_seconds,
                segments=len(matches.names),
                rows_matched=matches.rows_matched,
                coalesced=coalesced,
            )
        return SegmentMatchResult(
            memberships=matches.memberships,
            segment_names=matches.names,
            catalog_version=matches.catalog_version,
            queue_seconds=queue_seconds,
            match_seconds=match_seconds,
            collapsed=False,
            coalesced=coalesced,
            mask_stats=matches.stats,
        )

    def _fail_queued(self) -> None:
        """Fail every still-queued request during a non-drained shutdown."""
        while True:
            try:
                request = self._queue.get_nowait()
            except queue.Empty:
                return
            if request is _SENTINEL:
                continue
            if request.future.set_running_or_notify_cancel():
                request.future.set_exception(
                    ServiceStoppedError("service stopped before execution")
                )
            self._controller.release()
            with self._done:
                self._done.notify_all()


def _forward_to(target: "Future[ServeResult]"):
    """A done-callback copying one future's outcome onto another."""

    def forward(done: "Future[ServeResult]") -> None:
        error = done.exception()
        try:
            if error is not None:
                target.set_exception(error)
            else:
                target.set_result(done.result())
        except Exception:
            pass

    return forward


def serve(
    db: Database, registry: ModelRegistry, **kwargs
) -> QueryService:
    """Convenience constructor mirroring ``QueryService(db, registry)``."""
    return QueryService(db, registry, **kwargs)
