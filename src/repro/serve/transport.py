"""Pluggable serving transports (``repro.serve.transport``).

The harness/adapter split: :class:`~repro.serve.engine.ServeEngine` is
the harness, and everything here adapts *some* byte (or object) channel
onto it.  Three adapters, one client API
(:meth:`Transport.submit` / :meth:`Transport.request` /
:meth:`Transport.control`):

* :class:`LoopbackTransport` — in-process, no serialization.  The
  public :class:`~repro.serve.service.QueryService` facade sits on
  this, so embedded serving pays zero new cost and keeps full
  :class:`~repro.sql.miningext.ExecutionReport` objects.
* :class:`SocketTransport` over a ``socket.socketpair()`` — the framed
  wire protocol without networking, used by the multi-process router
  (one socketpair per worker) and as the cheapest full-codec test bed.
  :func:`serve_socketpair` wires one up against an engine in-process.
* :class:`SocketTransport` over TCP (:func:`connect_tcp`) against
  :class:`TCPServer` — a real networked front-end whose accept loop is
  an ``asyncio`` event loop on a single daemon thread, so many idle
  client connections cost file descriptors, not threads.  Execution
  still happens on the engine's worker pool; the event loop only frames
  and unframes bytes.

Server-side, :class:`EngineDispatcher` is the one request pump all byte
transports share: it feeds arriving bytes through a
:class:`~repro.serve.protocol.FrameDecoder`, applies control frames
synchronously, submits query/match frames to the engine, and answers
from engine worker threads through a thread-safe ``send`` callable.
Every engine-side failure crosses back as a typed error frame — a
client sees the same :class:`~repro.exceptions.QueueFullError` or
:class:`~repro.exceptions.RequestTimeoutError` it would have caught
in-process.

Transport traffic is observable: ``serve.transport.frames.in/out`` and
``serve.transport.bytes.in/out`` counters, plus per-transport
``serve.transport.requests.<name>`` — surfaced by the ``trace-report``
Transport section.
"""

from __future__ import annotations

import asyncio
import itertools
import random
import socket
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass

from repro import obs
from repro.exceptions import (
    ProtocolError,
    RequestTimeoutError,
    TransportError,
    WorkerCrashedError,
)
from repro.serve.engine import (
    DeployRequest,
    DeployResult,
    MatchRequest,
    QueryRequest,
    RetireRequest,
    RetireResult,
    ServeEngine,
)
from repro.serve.protocol import (
    KIND_ERROR,
    KIND_REQUEST,
    KIND_RESPONSE,
    FrameDecoder,
    decode_error,
    decode_request,
    decode_response,
    encode_error,
    encode_frame,
    encode_request,
    encode_response,
)

#: Read chunk for every blocking and asyncio receive loop.
RECV_BYTES = 65536


class Transport:
    """The client API every transport adapter implements."""

    name: str = "abstract"

    def submit(
        self, request: "QueryRequest | MatchRequest"
    ) -> "Future":
        raise NotImplementedError

    def request(self, request: "QueryRequest | MatchRequest"):
        """Synchronous :meth:`submit`, deadline enforced while waiting."""
        raise NotImplementedError

    def control(
        self, request: "DeployRequest | RetireRequest"
    ) -> "DeployResult | RetireResult":
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class LoopbackTransport(Transport):
    """In-process adapter: typed objects pass through untouched.

    No frames, no serialization, no copies —
    :class:`~repro.serve.engine.ServeResult` objects keep their full
    execution reports.  Closing the loopback does **not** shut the
    engine down; the engine's owner does that.
    """

    name = "inproc"

    def __init__(self, engine: ServeEngine) -> None:
        self._engine = engine

    @property
    def engine(self) -> ServeEngine:
        return self._engine

    def submit(self, request):
        obs.add_counter(f"serve.transport.requests.{self.name}")
        return self._engine.submit(request)

    def request(self, request):
        obs.add_counter(f"serve.transport.requests.{self.name}")
        return self._engine.execute(request)

    def control(self, request):
        return self._engine.control(request)

    def close(self) -> None:
        pass


class EngineDispatcher:
    """Server half shared by every byte transport.

    Feed it raw bytes; it decodes frames, runs control frames inline,
    submits query/match frames to the engine, and sends typed response
    or error frames back through ``send`` — which MUST be safe to call
    from any thread, because responses fire from engine worker threads.
    A :class:`~repro.exceptions.ProtocolError` out of :meth:`feed`
    means the stream is corrupt and the connection must be closed.
    """

    def __init__(self, engine: ServeEngine, transport_name: str, send) -> None:
        self._engine = engine
        self._name = transport_name
        self._send = send
        self._decoder = FrameDecoder()

    def feed(self, data: bytes) -> None:
        obs.add_counter("serve.transport.bytes.in", len(data))
        for frame in self._decoder.feed(data):
            obs.add_counter("serve.transport.frames.in")
            obs.add_counter(f"serve.transport.requests.{self._name}")
            self._dispatch(frame.request_id, frame.payload)

    def _dispatch(self, request_id: int, payload: dict) -> None:
        try:
            request = decode_request(payload)
        except ProtocolError as error:
            self._reply_error(request_id, error)
            return
        if isinstance(request, (DeployRequest, RetireRequest)):
            try:
                self._reply_response(
                    request_id, self._engine.control(request)
                )
            except BaseException as error:
                self._reply_error(request_id, error)
            return
        try:
            future = self._engine.submit(request)
        except BaseException as error:
            # Admission failures (queue full, stopped) are synchronous.
            self._reply_error(request_id, error)
            return
        future.add_done_callback(
            lambda done: self._reply_future(request_id, done)
        )

    def _reply_future(self, request_id: int, done: "Future") -> None:
        error = done.exception()
        if error is not None:
            self._reply_error(request_id, error)
        else:
            self._reply_response(request_id, done.result())

    def _reply_response(self, request_id: int, result) -> None:
        try:
            frame = encode_frame(
                KIND_RESPONSE, request_id, encode_response(result)
            )
        except ProtocolError as error:
            self._reply_error(request_id, error)
            return
        self._emit(frame)

    def _reply_error(self, request_id: int, error: BaseException) -> None:
        self._emit(
            encode_frame(KIND_ERROR, request_id, encode_error(error))
        )

    def _emit(self, frame: bytes) -> None:
        obs.add_counter("serve.transport.frames.out")
        obs.add_counter("serve.transport.bytes.out", len(frame))
        self._send(frame)


class SocketTransport(Transport):
    """Framed-protocol client over any connected stream socket.

    One connection multiplexes any number of concurrent requests by
    request id; a daemon reader thread resolves their futures as
    response/error frames arrive.  Connection loss fails every
    in-flight request with ``close_error`` (default
    :class:`~repro.exceptions.TransportError`; the router passes
    :class:`~repro.exceptions.WorkerCrashedError`) and fires
    ``on_close`` exactly once — the router's respawn hook.
    """

    def __init__(
        self,
        sock: "socket.socket",
        name: str = "socket",
        close_error: type = TransportError,
        on_close=None,
    ) -> None:
        self.name = name
        self._sock = sock
        self._close_error = close_error
        self._on_close = on_close
        self._write_lock = threading.Lock()
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._pending: dict[int, "Future"] = {}
        self._closed = False
        self._reader = threading.Thread(
            target=self._read_loop,
            name=f"repro-transport-{name}-reader",
            daemon=True,
        )
        self._reader.start()

    # -- client API ----------------------------------------------------

    def submit(self, request) -> "Future":
        payload = encode_request(request)
        future: "Future" = Future()
        with self._lock:
            if self._closed:
                raise self._close_error(
                    f"{self.name} transport is closed"
                )
            request_id = next(self._ids)
            self._pending[request_id] = future
        frame = encode_frame(KIND_REQUEST, request_id, payload)
        try:
            with self._write_lock:
                self._sock.sendall(frame)
        except OSError as error:
            with self._lock:
                self._pending.pop(request_id, None)
            raise self._close_error(
                f"{self.name} transport send failed: {error}"
            ) from error
        return future

    def request(self, request):
        """Synchronous :meth:`submit`; enforces the request deadline.

        Server-side admission and queue deadlines still apply (they come
        back as typed error frames); this guards the client's *wait*, so
        a request with a timeout can never block its caller longer than
        that timeout plus one network round trip.
        """
        timeout = getattr(request, "timeout", None)
        future = self.submit(request)
        try:
            return future.result(timeout=timeout)
        except FutureTimeoutError:
            raise RequestTimeoutError(
                f"request exceeded its {timeout:.3f}s deadline "
                "waiting on the transport"
            ) from None

    def control(self, request):
        future = self.submit(request)
        return future.result()

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()
        if self._reader is not threading.current_thread():
            self._reader.join(timeout=5)
        self._fail_pending(self._close_error(f"{self.name} transport closed"))

    @property
    def closed(self) -> bool:
        return self._closed

    # -- reader ----------------------------------------------------------

    def _read_loop(self) -> None:
        decoder = FrameDecoder()
        try:
            while True:
                data = self._sock.recv(RECV_BYTES)
                if not data:
                    break
                for frame in decoder.feed(data):
                    self._resolve(frame)
        except (OSError, ProtocolError):
            pass
        was_closed = self._closed
        with self._lock:
            self._closed = True
        self._fail_pending(
            self._close_error(
                f"{self.name} transport connection lost with the "
                "request in flight"
            )
        )
        if not was_closed and self._on_close is not None:
            self._on_close(self)

    def _resolve(self, frame) -> None:
        with self._lock:
            future = self._pending.pop(frame.request_id, None)
        if future is None:
            return
        try:
            if frame.kind == KIND_RESPONSE:
                future.set_result(decode_response(frame.payload))
            elif frame.kind == KIND_ERROR:
                future.set_exception(decode_error(frame.payload))
            else:
                future.set_exception(
                    ProtocolError(
                        f"unexpected frame kind {frame.kind} in response"
                    )
                )
        except ProtocolError as error:
            future.set_exception(error)

    def _fail_pending(self, error: BaseException) -> None:
        with self._lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for future in pending:
            if not future.done():
                future.set_exception(error)


class SocketServer:
    """Blocking server loop: one connected socket onto one engine.

    Runs a daemon thread reading the socket into an
    :class:`EngineDispatcher`; exits on EOF or a corrupt stream.  Used
    for socketpair serving in-process and as the worker-side loop of
    the multi-process router (where it runs on the worker's main
    thread via :meth:`serve_forever`).
    """

    def __init__(
        self,
        engine: ServeEngine,
        sock: "socket.socket",
        name: str = "socketpair",
        threaded: bool = True,
    ) -> None:
        self._engine = engine
        self._sock = sock
        self._write_lock = threading.Lock()
        self.dispatcher = EngineDispatcher(engine, name, self._send)
        self._thread: "threading.Thread | None" = None
        if threaded:
            self._thread = threading.Thread(
                target=self.serve_forever,
                name=f"repro-transport-{name}-server",
                daemon=True,
            )
            self._thread.start()

    def _send(self, frame: bytes) -> None:
        with self._write_lock:
            try:
                self._sock.sendall(frame)
            except OSError:
                # The client hung up mid-response; its reader already
                # failed the request transport-side.
                pass

    def serve_forever(self) -> None:
        """Read until EOF or a corrupt stream, dispatching every frame."""
        try:
            while True:
                data = self._sock.recv(RECV_BYTES)
                if not data:
                    return
                self.dispatcher.feed(data)
        except (OSError, ProtocolError):
            return

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()
        if (
            self._thread is not None
            and self._thread is not threading.current_thread()
        ):
            self._thread.join(timeout=5)


def serve_socketpair(
    engine: ServeEngine,
) -> tuple[SocketTransport, SocketServer]:
    """An engine served over a ``socketpair`` — full codec, no network.

    Returns ``(client, server)``; close both when done (closing the
    client alone also stops the server loop via EOF).
    """
    client_sock, server_sock = socket.socketpair()
    server = SocketServer(engine, server_sock, name="socketpair")
    client = SocketTransport(client_sock, name="socketpair")
    return client, server


class TCPServer:
    """Asyncio TCP front-end over one engine.

    The event loop runs on a single daemon thread and only moves bytes:
    arriving frames are dispatched to the engine's worker pool, and
    responses are written back via ``call_soon_threadsafe`` (engine
    callbacks fire on worker threads).  Idle connections are just
    descriptors parked on the selector — no thread each — which is the
    point of an asyncio front-end.
    """

    def __init__(
        self,
        engine: ServeEngine,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._engine = engine
        self._loop = asyncio.new_event_loop()
        self._server: "asyncio.AbstractServer | None" = None
        started = threading.Event()
        self._thread = threading.Thread(
            target=self._run,
            args=(host, port, started),
            name="repro-transport-tcp-server",
            daemon=True,
        )
        self._thread.start()
        if not started.wait(timeout=10):
            raise TransportError("TCP server failed to start in 10s")
        if self._server is None:
            raise TransportError(f"could not bind TCP server on {host}:{port}")

    def _run(
        self, host: str, port: int, started: "threading.Event"
    ) -> None:
        asyncio.set_event_loop(self._loop)

        async def start() -> None:
            try:
                self._server = await asyncio.start_server(
                    self._handle_connection, host, port
                )
            finally:
                started.set()

        self._loop.run_until_complete(start())
        if self._server is not None:
            self._loop.run_forever()
        self._loop.close()

    async def _handle_connection(
        self,
        reader: "asyncio.StreamReader",
        writer: "asyncio.StreamWriter",
    ) -> None:
        def send(frame: bytes) -> None:
            # Engine callbacks land here from worker threads; only the
            # loop may touch the writer.
            self._loop.call_soon_threadsafe(self._write, writer, frame)

        dispatcher = EngineDispatcher(self._engine, "tcp", send)
        try:
            while True:
                data = await reader.read(RECV_BYTES)
                if not data:
                    break
                dispatcher.feed(data)
        except (ConnectionError, ProtocolError):
            pass
        finally:
            try:
                writer.close()
            except RuntimeError:
                # Server shutdown stopped the loop with this handler
                # still parked on a read; nothing left to close onto.
                pass

    @staticmethod
    def _write(writer: "asyncio.StreamWriter", frame: bytes) -> None:
        if not writer.is_closing():
            writer.write(frame)

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — port is real even when bound to 0."""
        assert self._server is not None
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    def close(self) -> None:
        if self._server is None:
            return

        def stop() -> None:
            assert self._server is not None
            self._server.close()
            self._loop.stop()

        self._loop.call_soon_threadsafe(stop)
        self._thread.join(timeout=10)

    def __enter__(self) -> "TCPServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with jittered exponential backoff.

    Off by default everywhere (``retries=0`` semantics come from passing
    ``retry=None``): retrying is a *caller* decision, because a retried
    non-idempotent action is a correctness bug in some deployments.  The
    delay sequence is deterministic for a given ``seed``: attempt ``k``
    sleeps ``backoff * multiplier**k``, capped at ``max_backoff``, then
    scaled into ``[1 - jitter, 1]`` by a seeded PRNG — jitter
    de-synchronizes clients without making tests flaky.
    """

    retries: int = 3
    backoff: float = 0.05
    multiplier: float = 2.0
    max_backoff: float = 1.0
    jitter: float = 0.5
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.retries < 1:
            raise ValueError(f"retries must be >= 1, got {self.retries}")
        if self.backoff <= 0:
            raise ValueError(f"backoff must be > 0, got {self.backoff}")
        if self.multiplier < 1:
            raise ValueError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if self.max_backoff < self.backoff:
            raise ValueError(
                f"max_backoff must be >= backoff, got {self.max_backoff}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )

    def delays(self) -> list[float]:
        """The full delay sequence, one entry per retry attempt."""
        rng = random.Random(self.seed)
        delays: list[float] = []
        delay = self.backoff
        for _ in range(self.retries):
            scale = 1.0 - self.jitter * rng.random()
            delays.append(delay * scale)
            delay = min(delay * self.multiplier, self.max_backoff)
        return delays


class RetryingTransport(Transport):
    """A client-side retry wrapper over any transport.

    Retries synchronous :meth:`request` calls (and reconnects, when a
    ``reconnect`` factory is given) on
    :class:`~repro.exceptions.WorkerCrashedError` and connection-level
    :class:`~repro.exceptions.TransportError` — the failures where the
    request may simply land on a respawned worker.  It deliberately does
    NOT retry:

    * :meth:`submit` — the caller holds a future, so a transparent
      retry would have to mutate it behind the caller's back;
    * :meth:`control` — deploy/retire are not idempotent against a
      replica set mid-respawn; the router owns control consistency;
    * admission or timeout errors — those are the *server's* answer,
      not a delivery failure.

    Each retry sleeps the policy's next delay (``serve.transport.retry``
    counter); exhausted attempts re-raise the last error.
    """

    def __init__(
        self,
        inner: Transport,
        policy: RetryPolicy,
        reconnect=None,
    ) -> None:
        self.name = f"retry({inner.name})"
        self._inner = inner
        self._policy = policy
        self._reconnect = reconnect

    @property
    def inner(self) -> Transport:
        """The transport currently wrapped (swapped on reconnect)."""
        return self._inner

    def submit(self, request) -> "Future":
        return self._inner.submit(request)

    def request(self, request):
        attempts = [None] + self._policy.delays()
        last_error: BaseException | None = None
        for attempt, delay in enumerate(attempts):
            if delay is not None:
                time.sleep(delay)
                obs.add_counter("serve.transport.retry")
                if self._reconnect is not None and getattr(
                    self._inner, "closed", False
                ):
                    try:
                        replacement = self._reconnect()
                    except TransportError as error:
                        last_error = error
                        continue
                    self._inner.close()
                    self._inner = replacement
            try:
                return self._inner.request(request)
            except WorkerCrashedError as error:
                last_error = error
            except RequestTimeoutError:
                raise
            except TransportError as error:
                if self._reconnect is None:
                    raise
                last_error = error
        assert last_error is not None
        raise last_error

    def control(self, request):
        return self._inner.control(request)

    def close(self) -> None:
        self._inner.close()


def connect_tcp(
    host: str,
    port: int,
    timeout: float = 10,
    retry: "RetryPolicy | None" = None,
) -> SocketTransport:
    """A :class:`SocketTransport` client connected to a :class:`TCPServer`.

    With a :class:`RetryPolicy`, connection refusal (the server not yet
    listening, or restarting) is retried with the policy's backoff
    sequence before giving up with
    :class:`~repro.exceptions.TransportError`; without one (the
    default), a refused connection raises immediately.
    """
    delays = [] if retry is None else retry.delays()
    for attempt in range(len(delays) + 1):
        try:
            sock = socket.create_connection((host, port), timeout=timeout)
            break
        except OSError as error:
            if attempt >= len(delays):
                if retry is None:
                    raise
                raise TransportError(
                    f"connect to {host}:{port} failed after "
                    f"{len(delays) + 1} attempts: {error}"
                ) from error
            obs.add_counter("serve.transport.retry")
            time.sleep(delays[attempt])
    sock.settimeout(None)
    return SocketTransport(sock, name="tcp")
