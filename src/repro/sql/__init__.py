"""Relational substrate: SQLite store, predicate compiler, plan capture,
index advisor, and the PREDICTION JOIN execution layer."""

from repro.sql.advisor import (
    IndexCandidate,
    Recommendation,
    candidate_indexes,
    implement_recommendation,
    recommend_indexes,
    tune_for_workload,
)
from repro.sql.compiler import (
    compile_predicate,
    count_statement,
    render_literal,
    select_statement,
)
from repro.sql.database import Database, load_table
from repro.sql.miningext import (
    ExecutionReport,
    PredictionJoinExecutor,
    baseline_full_scan,
)
from repro.sql.plancache import PlanCache, PlanCacheStats
from repro.sql.planner import (
    AccessPath,
    CONSTANT_SCAN_PLAN,
    FULL_SCAN_PLAN,
    Plan,
    PlanComparison,
    capture_plan,
    compare_plans,
    parse_explain,
)
from repro.sql.schema import Column, ColumnType, TableSchema
from repro.sql.stats import (
    ColumnStats,
    TableStats,
    build_column_stats,
    build_table_stats,
    estimate_selectivity,
)

__all__ = [
    "AccessPath",
    "CONSTANT_SCAN_PLAN",
    "Column",
    "ColumnStats",
    "ColumnType",
    "Database",
    "ExecutionReport",
    "FULL_SCAN_PLAN",
    "IndexCandidate",
    "Plan",
    "PlanCache",
    "PlanCacheStats",
    "PlanComparison",
    "PredictionJoinExecutor",
    "Recommendation",
    "TableSchema",
    "TableStats",
    "baseline_full_scan",
    "build_column_stats",
    "build_table_stats",
    "candidate_indexes",
    "capture_plan",
    "compare_plans",
    "compile_predicate",
    "count_statement",
    "estimate_selectivity",
    "implement_recommendation",
    "load_table",
    "parse_explain",
    "recommend_indexes",
    "render_literal",
    "select_statement",
    "tune_for_workload",
]
