"""Cost-based index advisor — the Index Tuning Wizard stand-in.

The paper's methodology (Section 5.1) feeds the per-class workload file to
Microsoft's Index Tuning Wizard and implements its recommendations before
measuring.  This module plays that role: given a workload of predicates
over one table, it

1. extracts candidate indexes from the predicate atoms (single columns and
   two-column composites that co-occur in a conjunct),
2. estimates each candidate's benefit with the statistics module: how many
   scanned rows it would save, summed over the workload queries it can
   serve (a disjunctive query is servable only if *every* disjunct is
   sargable on an indexed column — SQLite's multi-index OR requirement),
3. greedily picks the best candidates under a configurable budget, and
4. optionally creates them.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.normalize import to_dnf
from repro.core.predicates import (
    And,
    Comparison,
    FalsePredicate,
    InSet,
    Interval,
    Not,
    Or,
    Predicate,
    TruePredicate,
)
from repro.exceptions import NormalizationError
from repro.sql.database import Database
from repro.sql.stats import TableStats, estimate_selectivity

#: Rows an index lookup must save (fractionally) before it is worth it.
_MIN_BENEFIT_FRACTION = 0.05


@dataclass(frozen=True)
class IndexCandidate:
    """A candidate index with its estimated workload benefit."""

    columns: tuple[str, ...]
    benefit_rows: float
    queries_served: int


@dataclass(frozen=True)
class Recommendation:
    """Advisor output: the candidates chosen under the budget."""

    table: str
    chosen: tuple[IndexCandidate, ...]
    considered: int

    @property
    def column_sets(self) -> list[tuple[str, ...]]:
        return [c.columns for c in self.chosen]


def _conjunct_atoms(conjunct: Predicate) -> list[Predicate]:
    if isinstance(conjunct, And):
        return list(conjunct.operands)
    return [conjunct]


def _atom_column(atom: Predicate) -> str | None:
    """Sargable column of an atom, or None for non-sargable atoms."""
    if isinstance(atom, (Comparison, InSet, Interval)):
        return atom.column
    if isinstance(atom, Not) and isinstance(atom.operand, InSet):
        # NOT IN is not a useful index seek.
        return None
    return None


def _dnf_conjuncts(pred: Predicate) -> list[list[Predicate]] | None:
    """Predicate as DNF conjunct atom-lists; None when unusable."""
    try:
        dnf = to_dnf(pred)
    except NormalizationError:
        return None
    if isinstance(dnf, (TruePredicate, FalsePredicate)):
        return []
    conjuncts = dnf.operands if isinstance(dnf, Or) else (dnf,)
    return [_conjunct_atoms(c) for c in conjuncts]


def candidate_indexes(
    workload: Sequence[Predicate],
    stats: TableStats,
) -> list[IndexCandidate]:
    """Score single- and two-column candidates over the workload."""
    # Gather candidate column sets.
    singles: set[tuple[str, ...]] = set()
    pairs: set[tuple[str, ...]] = set()
    parsed: list[list[list[Predicate]]] = []
    for predicate in workload:
        conjuncts = _dnf_conjuncts(predicate)
        if conjuncts is None:
            parsed.append([])
            continue
        parsed.append(conjuncts)
        for atoms in conjuncts:
            columns = sorted(
                {c for c in (_atom_column(a) for a in atoms) if c}
            )
            for column in columns:
                singles.add((column,))
            for i, first in enumerate(columns):
                for second in columns[i + 1:]:
                    pairs.add((first, second))

    candidates: list[IndexCandidate] = []
    for column_set in sorted(singles) + sorted(pairs):
        benefit = 0.0
        served = 0
        for predicate, conjuncts in zip(workload, parsed):
            if not conjuncts:
                continue
            if not _index_serves(conjuncts, column_set):
                continue
            selectivity = estimate_selectivity(stats, predicate)
            saved = stats.row_count * max(0.0, 1.0 - selectivity)
            if saved >= stats.row_count * _MIN_BENEFIT_FRACTION:
                benefit += saved
                served += 1
        if served:
            candidates.append(
                IndexCandidate(column_set, benefit, served)
            )
    candidates.sort(key=lambda c: (-c.benefit_rows, len(c.columns), c.columns))
    return candidates


def _index_serves(
    conjuncts: list[list[Predicate]], columns: tuple[str, ...]
) -> bool:
    """Whether an index on ``columns`` can serve a DNF query.

    SQLite answers an OR query with multi-index OR only when every disjunct
    can use some index; for a single candidate we require the leading index
    column to appear in every disjunct.
    """
    leading = columns[0]
    for atoms in conjuncts:
        atom_columns = {c for c in (_atom_column(a) for a in atoms) if c}
        if leading not in atom_columns:
            return False
    return True


def recommend_indexes(
    workload: Sequence[Predicate],
    stats: TableStats,
    budget: int = 8,
) -> Recommendation:
    """Greedy top-``budget`` selection among scored candidates.

    Candidates whose leading column is already covered by a chosen candidate
    are skipped (a second index with the same leading column adds little for
    these workloads).
    """
    candidates = candidate_indexes(workload, stats)
    chosen: list[IndexCandidate] = []
    leading_taken: set[str] = set()
    for candidate in candidates:
        if len(chosen) >= budget:
            break
        if candidate.columns[0] in leading_taken:
            continue
        chosen.append(candidate)
        leading_taken.add(candidate.columns[0])
    return Recommendation(
        table=stats.table, chosen=tuple(chosen), considered=len(candidates)
    )


def implement_recommendation(
    db: Database, recommendation: Recommendation
) -> list[str]:
    """Create the recommended indexes; returns the created index names."""
    names = []
    for candidate in recommendation.chosen:
        names.append(
            db.create_index(recommendation.table, candidate.columns)
        )
    db.analyze()
    return names


def tune_for_workload(
    db: Database,
    table: str,
    workload: Sequence[Predicate],
    sample_limit: int = 20_000,
    budget: int = 8,
) -> Recommendation:
    """End-to-end tuning: sample, build stats, recommend, implement."""
    from repro.sql.stats import build_table_stats

    sample = db.sample_rows(table, sample_limit)
    stats = build_table_stats(table, sample, row_count=db.row_count(table))
    recommendation = recommend_indexes(workload, stats, budget=budget)
    implement_recommendation(db, recommendation)
    return recommendation
