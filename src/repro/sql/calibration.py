"""Feedback-driven selectivity calibration (closing the estimator loop).

The optimizer's decisions — envelope gating, operand ordering, plan
caching — all rest on :func:`repro.sql.stats.estimate_selectivity`, a
static independence-model estimate.  The executor already *measures* the
true selectivity of every pushed predicate (``record_estimator_accuracy``
pairs estimate with outcome), but until now nothing read the
measurement back.  This module closes the loop:

* :class:`CalibrationStore` — a thread-safe, bounded (LRU) store of
  observed selectivities keyed by ``(table, predicate fingerprint)``.
  Each entry keeps an EWMA of the observed fractions, the observation
  count, and the statistics snapshot version the observation was made
  under (an observation against rebuilt statistics restarts the EWMA —
  the data behind the old observations changed).  The store carries a
  monotonic ``generation`` that bumps whenever an observation shifts an
  entry's overlay estimate materially, which is the re-planning signal
  downstream memos key on.

* :class:`CalibratedEstimator` — a drop-in
  :data:`~repro.core.predicates.SelectivityEstimator`: the static
  estimate, overlaid with the stored observation whenever one is fresh
  (same stats version) and sufficiently observed.  It exposes a
  ``stats_version`` token combining the statistics snapshot version
  with the store generation, so the batch lowering's plan-once operand
  ordering memo (:mod:`repro.ir.batch`) re-plans exactly when either
  the statistics or the calibration shift.

Calibration can never change query *results*: estimates only steer
physical decisions (push vs. strip, operand order, plan reuse), and the
residual model application keeps semantics exact regardless.  The
property suite asserts this, and ``python -m repro calibration-bench``
demonstrates the estimator's absolute error shrinking across repeated
workload passes with byte-identical result rows.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, replace

from repro import obs
from repro.core.predicates import Predicate
from repro.ir import fingerprint as ir_fingerprint
from repro.sql.stats import TableStats, estimate_selectivity

#: Default EWMA weight of the newest observation.  0.5 converges fast
#: (error halves per observation on a stable workload) while still
#: damping one-off aberrations (a query racing a data reload).
DEFAULT_ALPHA = 0.5
#: Default ceiling on tracked (table, fingerprint) entries.
DEFAULT_CAPACITY = 4096
#: Observations an entry needs before its overlay is trusted.
DEFAULT_MIN_OBSERVATIONS = 1
#: Overlay shift below which the store generation is *not* bumped:
#: re-planning operand order over a sub-0.1% estimate wiggle would churn
#: the plan memo for orderings that cannot have changed meaningfully.
GENERATION_EPSILON = 1e-3


@dataclass(frozen=True)
class CalibrationEntry:
    """Observed selectivity of one ``(table, predicate fingerprint)``.

    ``ewma`` is the exponentially weighted observed fraction — the
    overlay estimate; ``stats_version`` names the statistics snapshot
    the latest observation was made under (overlays are only applied
    against the same snapshot); ``estimated``/``actual`` keep the most
    recent pair for reporting.
    """

    table: str
    fingerprint: str
    ewma: float
    observations: int
    stats_version: int
    estimated: float
    actual: float

    @property
    def abs_error(self) -> float:
        """Absolute error of the estimate acted on at the last observation."""
        return abs(self.estimated - self.actual)


class CalibrationStoreStats:
    """Thread-safe lifetime counters of one store (mirrored as obs counters)."""

    __slots__ = (
        "_lock",
        "observations",
        "inserts",
        "resets",
        "evictions",
        "lookups",
        "hits",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.observations = 0
        self.inserts = 0
        self.resets = 0
        self.evictions = 0
        #: ``lookup`` calls, and how many returned a usable entry.
        self.lookups = 0
        self.hits = 0

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return {
                "observations": self.observations,
                "inserts": self.inserts,
                "resets": self.resets,
                "evictions": self.evictions,
                "lookups": self.lookups,
                "hits": self.hits,
            }


class CalibrationStore:
    """Bounded, thread-safe per-(table, fingerprint) observation store.

    One store is shared across every executor over the same data (the
    serving layer passes one instance to all workers, next to the stats
    cache).  All operations take the store lock; observation and lookup
    are O(1) dict traffic plus one (memoized) predicate fingerprint.
    """

    def __init__(
        self,
        alpha: float = DEFAULT_ALPHA,
        capacity: int = DEFAULT_CAPACITY,
        min_observations: int = DEFAULT_MIN_OBSERVATIONS,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if min_observations < 1:
            raise ValueError(
                f"min_observations must be >= 1, got {min_observations}"
            )
        self._alpha = alpha
        self._capacity = capacity
        self._min_observations = min_observations
        self._entries: OrderedDict[tuple[str, str], CalibrationEntry] = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self._generation = 1
        self.stats = CalibrationStoreStats()

    @property
    def generation(self) -> int:
        """Monotonic counter bumped when an overlay estimate shifts.

        Downstream memos (the batch lowering's plan-once operand
        ordering, via :attr:`CalibratedEstimator.stats_version`) fold
        this into their keys: a bump re-plans, an unchanged generation
        reuses the memoized decision.
        """
        with self._lock:
            return self._generation

    @property
    def min_observations(self) -> int:
        return self._min_observations

    def observe(
        self,
        table: str,
        predicate: Predicate,
        estimated: float,
        actual: float,
        stats_version: int,
    ) -> CalibrationEntry:
        """Fold one measured selectivity into the store.

        ``estimated`` is the estimate the optimizer acted on (for
        reporting), ``actual`` the measured fraction, ``stats_version``
        the statistics snapshot the execution ran under.  An observation
        under a *different* snapshot than the entry's restarts the EWMA:
        the sample behind the old observations was rebuilt, so averaging
        across snapshots would blend incomparable populations.
        """
        actual = min(1.0, max(0.0, float(actual)))
        key = (table, ir_fingerprint(predicate))
        with self._lock:
            previous = self._entries.get(key)
            if previous is None or previous.stats_version != stats_version:
                entry = CalibrationEntry(
                    table=table,
                    fingerprint=key[1],
                    ewma=actual,
                    observations=1,
                    stats_version=stats_version,
                    estimated=float(estimated),
                    actual=actual,
                )
                if previous is None:
                    self.stats.inserts += 1
                else:
                    self.stats.resets += 1
            else:
                ewma = (
                    self._alpha * actual
                    + (1.0 - self._alpha) * previous.ewma
                )
                entry = replace(
                    previous,
                    ewma=ewma,
                    observations=previous.observations + 1,
                    estimated=float(estimated),
                    actual=actual,
                )
            self.stats.observations += 1
            shifted = (
                previous is None
                or previous.observations < self._min_observations
                or abs(entry.ewma - previous.ewma) > GENERATION_EPSILON
            )
            if shifted:
                self._generation += 1
            self._entries[key] = entry
            self._entries.move_to_end(key)
            evicted = 0
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
                evicted += 1
        if obs.enabled():
            obs.add_counter("calibration.observation")
            if evicted:
                obs.add_counter("calibration.evict", evicted)
        return entry

    def lookup(
        self,
        table: str,
        predicate: Predicate,
        stats_version: int | None = None,
    ) -> CalibrationEntry | None:
        """The usable entry for ``predicate``, or ``None``.

        An entry is usable when it has at least ``min_observations``
        observations and — if ``stats_version`` is given — was observed
        under that statistics snapshot (staleness guard: overlays from a
        previous snapshot are not applied against a rebuilt one).
        Lookups refresh LRU recency.
        """
        key = (table, ir_fingerprint(predicate))
        with self._lock:
            self.stats.lookups += 1
            entry = self._entries.get(key)
            if entry is None:
                return None
            if entry.observations < self._min_observations:
                return None
            if (
                stats_version is not None
                and entry.stats_version != stats_version
            ):
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry

    def entries(self) -> list[CalibrationEntry]:
        """Snapshot of every entry (LRU order, oldest first)."""
        with self._lock:
            return list(self._entries.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._generation += 1


class CalibratedEstimator:
    """Static selectivity estimates overlaid with stored observations.

    Callable like any :data:`~repro.core.predicates.SelectivityEstimator`
    (``estimator(predicate) -> float``); the overlay applies only when a
    fresh (same stats version), sufficiently observed entry exists, and
    with no observations at all the calibrated estimate *is* the static
    estimate.  Estimates are clamped to ``[0, 1]``.

    ``stats_version`` is the memo token for the batch lowering's
    plan-once operand ordering: ``(statistics snapshot version, store
    generation at construction)``.  Two estimators over the same
    snapshot and generation share memoized orderings; a calibration
    shift bumps the generation and re-plans.  The token is captured at
    construction so one evaluation sees one consistent plan key.
    """

    __slots__ = ("_stats", "_store", "stats_version")

    def __init__(
        self, stats: TableStats, store: CalibrationStore | None = None
    ) -> None:
        self._stats = stats
        self._store = store
        generation = store.generation if store is not None else 0
        self.stats_version = (stats.version, generation)

    @property
    def table_stats(self) -> TableStats:
        return self._stats

    @property
    def store(self) -> CalibrationStore | None:
        return self._store

    def static(self, predicate: Predicate) -> float:
        """The underlying uncalibrated estimate."""
        return estimate_selectivity(self._stats, predicate)

    def __call__(self, predicate: Predicate) -> float:
        static = estimate_selectivity(self._stats, predicate)
        if self._store is None:
            return static
        entry = self._store.lookup(
            self._stats.table, predicate, stats_version=self._stats.version
        )
        if entry is None:
            if obs.enabled():
                obs.add_counter("calibration.overlay.miss")
            return static
        if obs.enabled():
            obs.add_counter("calibration.overlay.hit")
        return min(1.0, max(0.0, entry.ewma))
