"""Compile predicate ASTs to SQLite WHERE-clause text.

Upper envelopes are AND/OR expressions of simple selection predicates; this
module renders them in exactly the shape SQLite's planner can exploit for
index seeks and multi-index OR plans.  Literals are rendered inline (with
strict escaping) rather than as bind parameters so that ``EXPLAIN QUERY
PLAN`` output corresponds one-to-one with the executed statement.
"""

from __future__ import annotations

from repro.core.predicates import (
    And,
    Comparison,
    FalsePredicate,
    InSet,
    Interval,
    Not,
    Op,
    Or,
    Predicate,
    TruePredicate,
    Value,
)
from repro.exceptions import PredicateError
from repro.sql.schema import check_identifier


def quote_identifier(name: str) -> str:
    """Bracket-quote a validated identifier.

    Square brackets (the SQL Server style, which SQLite accepts) are used
    deliberately instead of standard double quotes: SQLite's legacy
    double-quoted-string fallback silently turns a misspelled
    ``"column"`` into a string *literal*, so a typo would return an empty
    result instead of an error.  Bracketed identifiers fail loudly.
    """
    return f"[{check_identifier(name)}]"


def render_literal(value: Value) -> str:
    """Render a predicate constant as a SQL literal."""
    if isinstance(value, bool):
        raise PredicateError("boolean literals are not supported; use 0/1")
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    raise PredicateError(f"cannot render literal {value!r}")


def compile_predicate(pred: Predicate) -> str:
    """Render a predicate tree as a SQL boolean expression."""
    if isinstance(pred, TruePredicate):
        return "1=1"
    if isinstance(pred, FalsePredicate):
        return "1=0"
    if isinstance(pred, Comparison):
        column = quote_identifier(pred.column)
        return f"{column} {pred.op.value} {render_literal(pred.value)}"
    if isinstance(pred, InSet):
        column = quote_identifier(pred.column)
        values = ", ".join(render_literal(v) for v in pred.values)
        return f"{column} IN ({values})"
    if isinstance(pred, Interval):
        return _compile_interval(pred)
    if isinstance(pred, Not):
        if isinstance(pred.operand, InSet):
            inner = pred.operand
            column = quote_identifier(inner.column)
            values = ", ".join(render_literal(v) for v in inner.values)
            return f"{column} NOT IN ({values})"
        return f"NOT ({compile_predicate(pred.operand)})"
    if isinstance(pred, And):
        return " AND ".join(
            _parenthesize(operand) for operand in pred.operands
        )
    if isinstance(pred, Or):
        return " OR ".join(
            _parenthesize(operand) for operand in pred.operands
        )
    raise PredicateError(f"cannot compile predicate node {pred!r}")


def _parenthesize(pred: Predicate) -> str:
    text = compile_predicate(pred)
    if isinstance(pred, (And, Or)):
        return f"({text})"
    return text


def _compile_interval(interval: Interval) -> str:
    column = quote_identifier(interval.column)
    if (
        interval.low is not None
        and interval.high is not None
        and interval.low_closed
        and interval.high_closed
    ):
        low = render_literal(interval.low)
        high = render_literal(interval.high)
        return f"{column} BETWEEN {low} AND {high}"
    parts = []
    if interval.low is not None:
        op = Op.GE if interval.low_closed else Op.GT
        parts.append(f"{column} {op.value} {render_literal(interval.low)}")
    if interval.high is not None:
        op = Op.LE if interval.high_closed else Op.LT
        parts.append(f"{column} {op.value} {render_literal(interval.high)}")
    return " AND ".join(parts)


def select_statement(
    table: str,
    predicate: Predicate,
    columns: str = "*",
) -> str:
    """``SELECT <columns> FROM <table> WHERE <predicate>``.

    A TRUE predicate omits the WHERE clause, matching the paper's
    ``SELECT * FROM T`` baseline query exactly.
    """
    base = f'SELECT {columns} FROM {quote_identifier(table)}'
    if isinstance(predicate, TruePredicate):
        return base
    return f"{base} WHERE {compile_predicate(predicate)}"


def count_statement(table: str, predicate: Predicate) -> str:
    """``SELECT COUNT(*) ...`` used for selectivity measurement."""
    return select_statement(table, predicate, columns="COUNT(*)")
