"""Compile predicate IR to SQLite WHERE-clause text (the SQL lowering).

Upper envelopes are AND/OR expressions of simple selection predicates; this
module renders them in exactly the shape SQLite's planner can exploit for
index seeks and multi-index OR plans.  Literals are rendered inline (with
strict escaping) rather than as bind parameters so that ``EXPLAIN QUERY
PLAN`` output corresponds one-to-one with the executed statement.

The compiler is a :class:`~repro.ir.visitor.PredicateVisitor` — the same
dispatch mechanism the batch lowering uses, with SQL text as the target.

NULL semantics.  ``Predicate.evaluate`` is the semantic source of truth,
and it is two-valued: a ``None`` value is simply a value that equals
nothing (``!=`` and ``NOT IN`` hold, ``=`` and ``IN`` do not).  SQL's
three-valued logic instead makes every comparison against NULL unknown,
silently *excluding* NULL rows from negated atoms — which would make a
pushed-down envelope drop rows the model still predicts on, an
unsoundness, not a style difference.  The lowering therefore maintains
*truth parity* (the SQL expression is TRUE exactly when ``evaluate``
returns True) on every node:

* ``col != v``   lowers to ``(col != v OR col IS NULL)``,
* ``NOT IN``     lowers to ``(col NOT IN (...) OR col IS NULL)``,
* generic ``NOT`` lowers to ``(inner) IS NOT TRUE`` — unlike ``NOT``,
  ``IS NOT TRUE`` maps unknown to true, matching the negation of a
  two-valued inner predicate.

Ordered comparisons (``<``, intervals) are exempt: ``evaluate`` raises on
a ``None`` ordered against a bound, so there is no defined behavior to
match and the bare SQL form (which excludes NULLs) is kept.
"""

from __future__ import annotations

from repro.core.predicates import (
    And,
    Comparison,
    FalsePredicate,
    InSet,
    Interval,
    Not,
    Op,
    Or,
    Predicate,
    TruePredicate,
    Value,
)
from repro.exceptions import PredicateError
from repro.ir.visitor import PredicateVisitor
from repro.sql.schema import check_identifier


def quote_identifier(name: str) -> str:
    """Bracket-quote a validated identifier.

    Square brackets (the SQL Server style, which SQLite accepts) are used
    deliberately instead of standard double quotes: SQLite's legacy
    double-quoted-string fallback silently turns a misspelled
    ``"column"`` into a string *literal*, so a typo would return an empty
    result instead of an error.  Bracketed identifiers fail loudly.
    """
    return f"[{check_identifier(name)}]"


def render_literal(value: Value) -> str:
    """Render a predicate constant as a SQL literal."""
    if isinstance(value, bool):
        raise PredicateError("boolean literals are not supported; use 0/1")
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    raise PredicateError(f"cannot render literal {value!r}")


class SQLLowering(PredicateVisitor):
    """Lower an IR predicate to a SQLite boolean expression.

    Stateless; one shared instance serves every :func:`compile_predicate`
    call.  Each method returns an expression string whose truth value
    matches ``Predicate.evaluate`` row by row (see the module docstring
    for the NULL-parity contract).
    """

    __slots__ = ()

    def visit_true(self, pred: TruePredicate) -> str:
        return "1=1"

    def visit_false(self, pred: FalsePredicate) -> str:
        return "1=0"

    def visit_comparison(self, pred: Comparison) -> str:
        column = quote_identifier(pred.column)
        literal = render_literal(pred.value)
        if pred.op is Op.NE:
            # evaluate() treats None as unequal to every constant; SQL's
            # NULL != v is unknown and would drop the row.  The rendered
            # form self-parenthesizes because it is an OR expression.
            return f"({column} != {literal} OR {column} IS NULL)"
        return f"{column} {pred.op.value} {literal}"

    def visit_in_set(self, pred: InSet) -> str:
        column = quote_identifier(pred.column)
        values = ", ".join(render_literal(v) for v in pred.values)
        return f"{column} IN ({values})"

    def visit_interval(self, pred: Interval) -> str:
        column = quote_identifier(pred.column)
        if (
            pred.low is not None
            and pred.high is not None
            and pred.low_closed
            and pred.high_closed
        ):
            low = render_literal(pred.low)
            high = render_literal(pred.high)
            return f"{column} BETWEEN {low} AND {high}"
        parts = []
        if pred.low is not None:
            op = Op.GE if pred.low_closed else Op.GT
            parts.append(f"{column} {op.value} {render_literal(pred.low)}")
        if pred.high is not None:
            op = Op.LE if pred.high_closed else Op.LT
            parts.append(f"{column} {op.value} {render_literal(pred.high)}")
        return " AND ".join(parts)

    def visit_not(self, pred: Not) -> str:
        if isinstance(pred.operand, InSet):
            inner = pred.operand
            column = quote_identifier(inner.column)
            values = ", ".join(render_literal(v) for v in inner.values)
            # None is a member of no set, so evaluate() holds on NULL
            # rows; bare NOT IN would exclude them.
            return f"({column} NOT IN ({values}) OR {column} IS NULL)"
        # IS NOT TRUE maps unknown to true: the negation of a two-valued
        # inner predicate, where NOT (...) would map unknown to unknown
        # and silently exclude the row.
        return f"({self.visit(pred.operand)}) IS NOT TRUE"

    def visit_and(self, pred: And) -> str:
        return " AND ".join(self._parenthesize(o) for o in pred.operands)

    def visit_or(self, pred: Or) -> str:
        return " OR ".join(self._parenthesize(o) for o in pred.operands)

    def _parenthesize(self, pred: Predicate) -> str:
        text = self.visit(pred)
        if isinstance(pred, (And, Or)):
            return f"({text})"
        return text


_LOWERING = SQLLowering()


def compile_predicate(pred: Predicate) -> str:
    """Render a predicate tree as a SQL boolean expression."""
    return _LOWERING.visit(pred)


def select_statement(
    table: str,
    predicate: Predicate,
    columns: str = "*",
) -> str:
    """``SELECT <columns> FROM <table> WHERE <predicate>``.

    A TRUE predicate omits the WHERE clause, matching the paper's
    ``SELECT * FROM T`` baseline query exactly.
    """
    base = f'SELECT {columns} FROM {quote_identifier(table)}'
    if isinstance(predicate, TruePredicate):
        return base
    return f"{base} WHERE {compile_predicate(predicate)}"


def count_statement(table: str, predicate: Predicate) -> str:
    """``SELECT COUNT(*) ...`` used for selectivity measurement."""
    return select_statement(table, predicate, columns="COUNT(*)")
