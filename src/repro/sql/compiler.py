"""Compile predicate IR to SQLite WHERE-clause text (the SQL lowering).

Upper envelopes are AND/OR expressions of simple selection predicates; this
module renders them in exactly the shape SQLite's planner can exploit for
index seeks and multi-index OR plans.  Literals are rendered inline (with
strict escaping) rather than as bind parameters so that ``EXPLAIN QUERY
PLAN`` output corresponds one-to-one with the executed statement.

The compiler is a :class:`~repro.ir.visitor.PredicateVisitor` — the same
dispatch mechanism the batch lowering uses, with SQL text as the target.

NULL semantics.  ``Predicate.evaluate`` is the semantic source of truth,
and it is two-valued: a ``None`` value is simply a value that equals
nothing (``!=`` and ``NOT IN`` hold, ``=`` and ``IN`` do not).  SQL's
three-valued logic instead makes every comparison against NULL unknown,
silently *excluding* NULL rows from negated atoms — which would make a
pushed-down envelope drop rows the model still predicts on, an
unsoundness, not a style difference.  The lowering therefore maintains
*truth parity* (the SQL expression is TRUE exactly when ``evaluate``
returns True) on every node:

* ``col != v``   lowers to ``(col != v OR col IS NULL)``,
* ``NOT IN``     lowers to ``(col NOT IN (...) OR col IS NULL)``,
* generic ``NOT`` lowers to ``(inner) IS NOT TRUE`` — unlike ``NOT``,
  ``IS NOT TRUE`` maps unknown to true, matching the negation of a
  two-valued inner predicate.

Ordered comparisons (``<``, intervals) are exempt: ``evaluate`` raises on
a ``None`` ordered against a bound, so there is no defined behavior to
match and the bare SQL form (which excludes NULLs) is kept.
"""

from __future__ import annotations

from repro.core.predicates import (
    And,
    Comparison,
    FalsePredicate,
    InSet,
    Interval,
    Not,
    Op,
    Or,
    Predicate,
    TruePredicate,
    Value,
    conjunction,
    disjunction,
)
from repro.exceptions import PredicateError
from repro.ir.visitor import PredicateVisitor
from repro.sql.schema import check_identifier


def quote_identifier(name: str) -> str:
    """Bracket-quote a validated identifier.

    Square brackets (the SQL Server style, which SQLite accepts) are used
    deliberately instead of standard double quotes: SQLite's legacy
    double-quoted-string fallback silently turns a misspelled
    ``"column"`` into a string *literal*, so a typo would return an empty
    result instead of an error.  Bracketed identifiers fail loudly.
    """
    return f"[{check_identifier(name)}]"


def render_literal(value: Value) -> str:
    """Render a predicate constant as a SQL literal."""
    if isinstance(value, bool):
        raise PredicateError("boolean literals are not supported; use 0/1")
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    raise PredicateError(f"cannot render literal {value!r}")


class SQLLowering(PredicateVisitor):
    """Lower an IR predicate to a SQLite boolean expression.

    Stateless; one shared instance serves every :func:`compile_predicate`
    call.  Each method returns an expression string whose truth value
    matches ``Predicate.evaluate`` row by row (see the module docstring
    for the NULL-parity contract).
    """

    __slots__ = ()

    def visit_true(self, pred: TruePredicate) -> str:
        return "1=1"

    def visit_false(self, pred: FalsePredicate) -> str:
        return "1=0"

    def visit_comparison(self, pred: Comparison) -> str:
        column = quote_identifier(pred.column)
        literal = render_literal(pred.value)
        if pred.op is Op.NE:
            # evaluate() treats None as unequal to every constant; SQL's
            # NULL != v is unknown and would drop the row.  The rendered
            # form self-parenthesizes because it is an OR expression.
            return f"({column} != {literal} OR {column} IS NULL)"
        return f"{column} {pred.op.value} {literal}"

    def visit_in_set(self, pred: InSet) -> str:
        column = quote_identifier(pred.column)
        values = ", ".join(render_literal(v) for v in pred.values)
        return f"{column} IN ({values})"

    def visit_interval(self, pred: Interval) -> str:
        column = quote_identifier(pred.column)
        if (
            pred.low is not None
            and pred.high is not None
            and pred.low_closed
            and pred.high_closed
        ):
            low = render_literal(pred.low)
            high = render_literal(pred.high)
            return f"{column} BETWEEN {low} AND {high}"
        parts = []
        if pred.low is not None:
            op = Op.GE if pred.low_closed else Op.GT
            parts.append(f"{column} {op.value} {render_literal(pred.low)}")
        if pred.high is not None:
            op = Op.LE if pred.high_closed else Op.LT
            parts.append(f"{column} {op.value} {render_literal(pred.high)}")
        return " AND ".join(parts)

    def visit_not(self, pred: Not) -> str:
        if isinstance(pred.operand, InSet):
            inner = pred.operand
            column = quote_identifier(inner.column)
            values = ", ".join(render_literal(v) for v in inner.values)
            # None is a member of no set, so evaluate() holds on NULL
            # rows; bare NOT IN would exclude them.
            return f"({column} NOT IN ({values}) OR {column} IS NULL)"
        # IS NOT TRUE maps unknown to true: the negation of a two-valued
        # inner predicate, where NOT (...) would map unknown to unknown
        # and silently exclude the row.
        return f"({self.visit(pred.operand)}) IS NOT TRUE"

    def visit_and(self, pred: And) -> str:
        return " AND ".join(self._parenthesize(o) for o in pred.operands)

    def visit_or(self, pred: Or) -> str:
        return " OR ".join(self._parenthesize(o) for o in pred.operands)

    def _parenthesize(self, pred: Predicate) -> str:
        text = self.visit(pred)
        if isinstance(pred, (And, Or)):
            return f"({text})"
        return text


_LOWERING = SQLLowering()


def compile_predicate(pred: Predicate) -> str:
    """Render a predicate tree as a SQL boolean expression."""
    return _LOWERING.visit(pred)


def select_statement(
    table: str,
    predicate: Predicate,
    columns: str = "*",
) -> str:
    """``SELECT <columns> FROM <table> WHERE <predicate>``.

    A TRUE predicate omits the WHERE clause, matching the paper's
    ``SELECT * FROM T`` baseline query exactly.
    """
    base = f'SELECT {columns} FROM {quote_identifier(table)}'
    if isinstance(predicate, TruePredicate):
        return base
    return f"{base} WHERE {compile_predicate(predicate)}"


def count_statement(table: str, predicate: Predicate) -> str:
    """``SELECT COUNT(*) ...`` used for selectivity measurement."""
    return select_statement(table, predicate, columns="COUNT(*)")


# ---------------------------------------------------------------------------
# UNION-of-index-range lowering for wide disjunctions
# ---------------------------------------------------------------------------

#: Ceiling on UNION branches.  Each branch is a separate sub-plan for
#: SQLite to optimize and a separate cursor at runtime; past a few dozen
#: branches the planning overhead swamps any seek savings, and the flat
#: OR (even scanned) wins.
DEFAULT_MAX_UNION_BRANCHES = 16


def union_eligible(
    predicate: Predicate,
    max_branches: int = DEFAULT_MAX_UNION_BRANCHES,
) -> bool:
    """Whether ``predicate`` is an OR the union lowering can split.

    Eligible shapes are top-level ORs of at most ``max_branches``
    disjuncts, each an atom or a conjunction (the indexable unit) —
    nested top-level ORs would need recursive flattening and constant
    disjuncts mean the simplifier has not run.
    """
    if not isinstance(predicate, Or):
        return False
    if len(predicate.operands) > max_branches:
        return False
    return all(
        not isinstance(op, (Or, TruePredicate, FalsePredicate))
        for op in predicate.operands
    )


def union_select_statement(
    table: str,
    predicate: Or,
    columns: str = "*",
) -> str:
    """Lower an OR-of-conjunctions to disjoint ``UNION ALL`` branches.

    SQLite's multi-index OR optimization is all-or-nothing and cost-gated:
    a wide disjunction of moderately selective conjunctions falls back to
    one full scan that re-evaluates the entire OR expression per row.
    Splitting each disjunct into its own SELECT lets the planner pick an
    index per branch independently.

    ``UNION ALL`` (not ``UNION``) keeps bag semantics — plain UNION would
    collapse duplicate *table rows*.  Branches are made disjoint instead:
    branch ``i`` appends ``AND (d_1 OR ... OR d_{i-1}) IS NOT TRUE``, so
    every row is emitted by exactly the branch of its first true
    disjunct.  The disjointness term goes through :class:`Not`'s normal
    lowering (``IS NOT TRUE``), which maps SQL's unknown to true — NULL
    rows stay exactly where two-valued ``evaluate`` puts them, preserving
    the NULL-parity contract of the flat form.
    """
    if not isinstance(predicate, Or):
        raise PredicateError(
            "union_select_statement requires a top-level OR"
        )
    operands = predicate.operands
    branches = []
    for i, disjunct in enumerate(operands):
        if i == 0:
            where: Predicate = disjunct
        else:
            where = conjunction(
                [disjunct, Not(disjunction(list(operands[:i])))]
            )
        branches.append(select_statement(table, where, columns))
    return " UNION ALL ".join(branches)
