"""SQLite-backed relational store.

This is the paper's "Microsoft SQL Server" substitute (see DESIGN.md): a
real SQL engine with a cost-based planner that turns selective AND/OR
predicates into index seeks (``SEARCH ... USING INDEX``) and multi-index OR
plans, and whose chosen plan we can introspect via ``EXPLAIN QUERY PLAN``.
"""

from __future__ import annotations

import itertools
import os
import sqlite3
import time
from collections.abc import Iterable, Iterator, Mapping, Sequence

from repro.core.predicates import Predicate, Value
from repro.exceptions import DatabaseError, SchemaError
from repro.sql.compiler import (
    count_statement,
    quote_identifier,
    select_statement,
)
from repro.sql.schema import TableSchema, check_identifier

Row = dict[str, Value]

#: Insert batch size; keeps memory flat while loading million-row tables.
_BATCH = 5_000

#: Names successive in-memory databases uniquely within one process.
_MEMORY_SEQUENCE = itertools.count(1)


def _memory_uri() -> str:
    """A fresh shared-cache URI for one private in-memory database.

    Plain ``:memory:`` databases are invisible to every other connection,
    which makes them impossible to serve from a connection pool.  Naming
    the database (``file:...?mode=memory&cache=shared``) keeps it fully
    in-memory and private to this process while letting
    :meth:`Database.for_thread` open sibling connections onto the same
    data.  The pid + counter name keeps independent :class:`Database`
    instances isolated from each other.
    """
    return (
        f"file:repro-mem-{os.getpid()}-{next(_MEMORY_SEQUENCE)}"
        "?mode=memory&cache=shared"
    )


class Database:
    """A thin, explicit wrapper around one SQLite connection.

    Use as a context manager or call :meth:`close` explicitly.  All helpers
    raise :class:`~repro.exceptions.DatabaseError` with the offending SQL on
    failure.

    One :class:`Database` wraps one connection and is **not** safe to share
    across threads (sqlite3 enforces thread affinity).  For concurrent
    serving, :meth:`for_thread` opens a sibling connection onto the same
    data — in-memory databases are created through a named shared-cache URI
    precisely so siblings can attach.  The sibling shares this instance's
    schema registry by reference, so tables and indexes created through any
    handle are visible to all of them.  An in-memory database lives as long
    as its *primary* handle: close the primary last.
    """

    def __init__(
        self,
        path: str = ":memory:",
        *,
        uri: bool = False,
        read_only: bool = False,
        check_same_thread: bool = True,
    ) -> None:
        if path == ":memory:":
            path = _memory_uri()
            uri = True
        self._path = path
        self._uri = uri
        self.read_only = read_only
        self._connection = sqlite3.connect(
            path, uri=uri, check_same_thread=check_same_thread
        )
        self._connection.row_factory = sqlite3.Row
        # Analytics workload: bigger cache, no per-statement fsync cost.
        self._connection.execute("PRAGMA cache_size = -64000")
        self._connection.execute("PRAGMA synchronous = OFF")
        if read_only:
            # Serving connections are read-only by contract; the pragma
            # turns an accidental write into a hard sqlite error.
            self._connection.execute("PRAGMA query_only = ON")
        self._tables: dict[str, TableSchema] = {}
        self._indexes: dict[str, tuple[str, tuple[str, ...]]] = {}

    @property
    def path(self) -> str:
        """The connection target (a URI for in-memory databases)."""
        return self._path

    def for_thread(self, read_only: bool = True) -> "Database":
        """A sibling :class:`Database` for use by another thread.

        Opens a new connection onto the same underlying database (shared
        in-memory cache or the same file) and shares this instance's
        table/index registries by reference.  The default is a read-only
        serving connection (``PRAGMA query_only = ON``); pass
        ``read_only=False`` for a writable sibling.

        The sibling is created with ``check_same_thread=False`` so a pool
        coordinator may *close* it from another thread; queries must still
        come from one thread at a time.
        """
        sibling = Database(
            self._path,
            uri=self._uri,
            read_only=read_only,
            check_same_thread=False,
        )
        sibling._tables = self._tables
        sibling._indexes = self._indexes
        return sibling

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        self._connection.close()

    # -- DDL and loading ----------------------------------------------------

    def create_table(self, schema: TableSchema) -> None:
        if schema.name in self._tables:
            raise DatabaseError(f"table {schema.name!r} already exists")
        self.execute(schema.create_statement())
        self._tables[schema.name] = schema

    def schema(self, table: str) -> TableSchema:
        try:
            return self._tables[table]
        except KeyError:
            raise DatabaseError(f"no table named {table!r}") from None

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def insert_rows(
        self, table: str, rows: Iterable[Mapping[str, Value]]
    ) -> int:
        """Bulk-insert rows in batches; returns the number inserted."""
        schema = self.schema(table)
        columns = schema.column_names
        placeholders = ", ".join("?" for _ in columns)
        column_list = ", ".join(quote_identifier(c) for c in columns)
        statement = (
            f'INSERT INTO {quote_identifier(table)} ({column_list}) '
            f"VALUES ({placeholders})"
        )
        inserted = 0
        batch: list[tuple[Value, ...]] = []
        for row in rows:
            try:
                batch.append(tuple(row[c] for c in columns))
            except KeyError as exc:
                raise DatabaseError(
                    f"row is missing column {exc.args[0]!r} required by "
                    f"table {table!r}"
                ) from exc
            if len(batch) >= _BATCH:
                self._connection.executemany(statement, batch)
                inserted += len(batch)
                batch = []
        if batch:
            self._connection.executemany(statement, batch)
            inserted += len(batch)
        self._connection.commit()
        return inserted

    def create_index(
        self, table: str, columns: Sequence[str], name: str | None = None
    ) -> str:
        """Create a (possibly composite) index; returns its name."""
        schema = self.schema(table)
        for column in columns:
            try:
                schema.column(column)
            except SchemaError as exc:
                raise DatabaseError(str(exc)) from exc
        if name is None:
            name = f"idx_{table}_" + "_".join(columns)
        check_identifier(name)
        if name in self._indexes:
            raise DatabaseError(f"index {name!r} already exists")
        column_list = ", ".join(quote_identifier(c) for c in columns)
        self.execute(
            f'CREATE INDEX {quote_identifier(name)} ON '
            f"{quote_identifier(table)} ({column_list})"
        )
        self._indexes[name] = (table, tuple(columns))
        return name

    def drop_index(self, name: str) -> None:
        if name not in self._indexes:
            raise DatabaseError(f"no index named {name!r}")
        self.execute(f"DROP INDEX {quote_identifier(name)}")
        del self._indexes[name]

    def drop_all_indexes(self, table: str | None = None) -> None:
        for name, (index_table, _) in list(self._indexes.items()):
            if table is None or index_table == table:
                self.drop_index(name)

    def index_names(self, table: str | None = None) -> list[str]:
        return sorted(
            name
            for name, (index_table, _) in self._indexes.items()
            if table is None or index_table == table
        )

    def analyze(self) -> None:
        """Refresh SQLite's planner statistics (``ANALYZE``)."""
        self.execute("ANALYZE")

    # -- querying -------------------------------------------------------------

    def execute(self, sql: str, parameters: Sequence[Value] = ()) -> sqlite3.Cursor:
        try:
            return self._connection.execute(sql, parameters)
        except sqlite3.Error as exc:
            raise DatabaseError(f"{exc} (while executing: {sql})") from exc

    def query_rows(self, sql: str) -> list[Row]:
        cursor = self.execute(sql)
        return [dict(row) for row in cursor.fetchall()]

    def iter_rows(self, sql: str) -> Iterator[Row]:
        cursor = self.execute(sql)
        for row in cursor:
            yield dict(row)

    def select(self, table: str, predicate: Predicate) -> list[Row]:
        return self.query_rows(select_statement(table, predicate))

    def count(self, table: str, predicate: Predicate) -> int:
        cursor = self.execute(count_statement(table, predicate))
        return int(cursor.fetchone()[0])

    def row_count(self, table: str) -> int:
        cursor = self.execute(
            f"SELECT COUNT(*) FROM {quote_identifier(table)}"
        )
        return int(cursor.fetchone()[0])

    def selectivity(self, table: str, predicate: Predicate) -> float:
        """Measured (not estimated) selectivity of a predicate."""
        total = self.row_count(table)
        if total == 0:
            raise DatabaseError(f"table {table!r} is empty")
        return self.count(table, predicate) / total

    def timed_fetch(self, sql: str) -> tuple[int, float]:
        """Execute and fully fetch ``sql``; returns (row count, seconds).

        Fetching every row mirrors the paper's methodology: the client
        consumes the full result of ``SELECT *`` / the envelope query.
        """
        started = time.perf_counter()
        cursor = self.execute(sql)
        count = 0
        while True:
            chunk = cursor.fetchmany(_BATCH)
            if not chunk:
                break
            count += len(chunk)
        return count, time.perf_counter() - started

    def explain(self, sql: str) -> list[tuple[int, int, int, str]]:
        """Raw ``EXPLAIN QUERY PLAN`` rows for a statement."""
        cursor = self.execute(f"EXPLAIN QUERY PLAN {sql}")
        return [
            (int(r[0]), int(r[1]), int(r[2]), str(r[3]))
            for r in cursor.fetchall()
        ]

    def sample_rows(self, table: str, limit: int, seed: int = 0) -> list[Row]:
        """Deterministic pseudo-random sample used for statistics building.

        Rows are ranked by a two-stage multiplicative hash of the rowid
        (Knuth's 2654435761 then the ANSI-C LCG multiplier, each reduced
        by a different prime — the second stage makes the seed reshuffle
        the ranking instead of merely shifting hash values) and the
        ``limit`` best-ranked rows are returned.  The hash scatters
        selections uniformly over the whole rowid range, so the sample is
        identical regardless of insertion batching and never aliases with
        the period of a repeated-doubling table the way stride sampling
        does, nor truncates to a table prefix.
        """
        total = self.row_count(table)
        if total <= limit:
            return self.query_rows(
                f"SELECT * FROM {quote_identifier(table)}"
            )
        rank = (
            f"((rowid * 2654435761 + {seed}) % 2147483647) "
            f"* 1103515245 % 4294967291"
        )
        return self.query_rows(
            f"SELECT * FROM {quote_identifier(table)} "
            f"ORDER BY {rank}, rowid LIMIT {limit}"
        )


def load_table(
    db: Database,
    table: str,
    rows: Sequence[Mapping[str, Value]],
) -> TableSchema:
    """Create a table from sample rows and load them; returns the schema."""
    schema = TableSchema.from_rows(table, rows)
    db.create_table(schema)
    db.insert_rows(table, rows)
    return schema
